//! Property suite for the fixed-width (v2) store layout: for random
//! graphs, `load(save_fixed(g)) == g` term-for-term, fixed-layout loads
//! are **bit-identical** to varint loads — same dense arrays, same
//! dictionary, same canonical N-Triples export bytes — at every shard
//! count × thread count, and every typed corruption (mid-record
//! truncation, bad width byte, misaligned/unpadded payload, CRC flip)
//! fails with a typed [`StoreError`], never a panic.
//!
//! The borrowed-reader *lifetime* contract (a view cannot outlive its
//! buffer) is enforced at compile time by the `compile_fail` doctest on
//! [`rdf_store::BorrowedStoreReader`].

use proptest::prelude::*;
use rdf_model::{LabelRef, NodeId, RdfGraph, Term, Vocab};
use rdf_par::Threads;
use rdf_store::{
    container::{HEADER_LEN, SECTION_OVERHEAD},
    graph_to_bytes, graph_to_bytes_layout, save_sharded_layout,
    BorrowedStoreReader, Layout, ShardedReader, StoreBuf, StoreError,
    StoreReader,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Awkward characters exercising literal and IRI escaping.
const TRICKY: &[&str] = &[
    "", " ", "\"", "\\", "\n", "café", "😀", "a b", "x\\\"y", "<angle>",
];

/// Unique-per-call scratch dir (proptest shrinkers re-enter cases).
fn tmp(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rdf-v2-rt-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn term_of(g: &RdfGraph, vocab: &Vocab, n: NodeId) -> Term {
    match vocab.resolve(g.graph().label(n)) {
        LabelRef::Uri(u) => Term::uri(u),
        LabelRef::Literal(l) => Term::literal(l),
        LabelRef::Blank => Term::blank(
            g.blank_name(n)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("b{}", n.0)),
        ),
    }
}

fn term_triples(g: &RdfGraph, vocab: &Vocab) -> Vec<(Term, Term, Term)> {
    let mut out: Vec<(Term, Term, Term)> = g
        .graph()
        .triples()
        .iter()
        .map(|t| {
            (
                term_of(g, vocab, t.s),
                term_of(g, vocab, t.p),
                term_of(g, vocab, t.o),
            )
        })
        .collect();
    out.sort();
    out
}

/// A random RDF graph mixing URI/blank subjects and URI/literal/blank
/// objects (same shape as the single-file and sharded suites).
fn arb_rdf_graph() -> impl Strategy<Value = (Vocab, RdfGraph)> {
    (1usize..28, any::<u64>()).prop_map(|(m, seed)| {
        let mut vocab = Vocab::new();
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..m {
            let s_uri = format!("http://e.org/s{}", next() % 7);
            let s_blank = format!("bn{}", next() % 5);
            let p = format!("http://e.org/p{}", next() % 4);
            let tricky = TRICKY[(next() % TRICKY.len() as u64) as usize];
            let lit = format!("v{} {tricky}", next() % 9);
            let o_blank = format!("bn{}", next() % 5);
            let o_uri = format!("http://e.org/o-{}", next() % 8);
            match next() % 5 {
                0 => b.uuu(&s_uri, &p, &o_uri),
                1 => b.uul(&s_uri, &p, &lit),
                2 => b.uub(&s_uri, &p, &o_blank),
                3 => b.bul(&s_blank, &p, &lit),
                _ => b.bub(&s_blank, &p, &o_blank),
            }
        }
        let g = b.finish();
        (vocab, g)
    })
}

/// Assert two loaded (vocab, graph) pairs are bit-identical: dense
/// arrays, CSR adjacency, blank names and dictionary.
fn assert_loads_identical(
    (va, ga): &(Vocab, RdfGraph),
    (vb, gb): &(Vocab, RdfGraph),
) -> Result<(), String> {
    prop_assert_eq!(ga.graph().labels_raw(), gb.graph().labels_raw());
    prop_assert_eq!(ga.graph().kinds_raw(), gb.graph().kinds_raw());
    prop_assert_eq!(ga.graph().triples(), gb.graph().triples());
    for n in ga.graph().nodes() {
        prop_assert_eq!(ga.graph().out(n), gb.graph().out(n));
        prop_assert_eq!(ga.blank_name(n), gb.blank_name(n));
    }
    prop_assert_eq!(va.len(), vb.len());
    for i in 0..va.len() {
        let id = rdf_model::LabelId(i as u32);
        prop_assert_eq!(va.kind(id), vb.kind(id));
        prop_assert_eq!(va.text(id), vb.text(id));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `load(save_fixed(g))` reconstructs `g` term-for-term, the load
    /// is bit-identical to the varint load, and the canonical export
    /// bytes agree — single-file, plus every shard × thread combination
    /// of the fixed-layout sharded store.
    #[test]
    fn fixed_load_is_identity_and_matches_varint(
        (vocab, g) in arb_rdf_graph()
    ) {
        let varint = StoreReader::from_bytes(
            graph_to_bytes(&vocab, &g).unwrap(),
        )
        .read_graph()
        .unwrap();
        let fixed_bytes =
            graph_to_bytes_layout(&vocab, &g, Layout::Fixed).unwrap();
        let fixed = StoreReader::from_bytes(fixed_bytes.clone())
            .read_graph()
            .unwrap();

        // Term-level identity with the original graph.
        prop_assert_eq!(
            term_triples(&fixed.1, &fixed.0),
            term_triples(&g, &vocab)
        );
        // Bit-identity and canonical-export byte-identity with the
        // varint load.
        assert_loads_identical(&fixed, &varint)?;
        let export_varint = rdf_io::write_graph(&varint.1, &varint.0);
        prop_assert_eq!(
            rdf_io::write_graph(&fixed.1, &fixed.0),
            export_varint.clone()
        );

        // The borrowed (zero-copy) view agrees with the owned load for
        // both layouts.
        for bytes in [graph_to_bytes(&vocab, &g).unwrap(), fixed_bytes] {
            let reader =
                BorrowedStoreReader::from_buf(StoreBuf::from_bytes(&bytes));
            let (bv, view) = reader.read_view().unwrap();
            prop_assert_eq!(
                view.labels(),
                varint.1.graph().labels_raw()
            );
            prop_assert_eq!(
                view.to_graph().triples(),
                varint.1.graph().triples()
            );
            prop_assert_eq!(bv.len(), varint.0.len());
        }

        // Fixed-layout sharded stores stitch bit-identically at every
        // shard count × thread count.
        let dir = tmp("prop");
        for shards in SHARD_COUNTS {
            let manifest = dir.join(format!("g{shards}.rdfm"));
            save_sharded_layout(&manifest, &vocab, &g, shards, Layout::Fixed)
                .unwrap();
            for t in THREAD_COUNTS {
                let sharded = ShardedReader::open(&manifest)
                    .unwrap()
                    .read_graph(Threads::Fixed(t))
                    .unwrap();
                assert_loads_identical(&sharded, &varint)?;
                prop_assert_eq!(
                    rdf_io::write_graph(&sharded.1, &sharded.0),
                    export_varint.clone()
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Fixed-layout writes are deterministic, and the two layouts are
    /// distinguished by the header version flag alone.
    #[test]
    fn fixed_save_is_deterministic((vocab, g) in arb_rdf_graph()) {
        let a = graph_to_bytes_layout(&vocab, &g, Layout::Fixed).unwrap();
        let b = graph_to_bytes_layout(&vocab, &g, Layout::Fixed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(u16::from_le_bytes([a[4], a[5]]), 2);
        let v = graph_to_bytes(&vocab, &g).unwrap();
        prop_assert_eq!(u16::from_le_bytes([v[4], v[5]]), 1);
    }

    /// Every prefix-truncation of a fixed-layout store — including cuts
    /// landing mid-record inside the fixed columns — fails with a typed
    /// error, never a panic.
    #[test]
    fn fixed_truncations_fail_loudly((vocab, g) in arb_rdf_graph()) {
        let bytes =
            graph_to_bytes_layout(&vocab, &g, Layout::Fixed).unwrap();
        for cut in (0..bytes.len()).step_by(7) {
            let r = StoreReader::from_bytes(bytes[..cut].to_vec())
                .read_graph();
            prop_assert!(r.is_err(), "cut at {} must fail", cut);
        }
    }
}

/// Walk the section frames of a container, returning the payload offset
/// and length of the section with `tag`.
fn section_payload(bytes: &[u8], tag: &[u8; 4]) -> (usize, usize) {
    let mut pos = HEADER_LEN;
    while pos + SECTION_OVERHEAD <= bytes.len() {
        let found: [u8; 4] = bytes[pos..pos + 4].try_into().unwrap();
        let len = u64::from_le_bytes(
            bytes[pos + 4..pos + 12].try_into().unwrap(),
        ) as usize;
        if &found == tag {
            return (pos + SECTION_OVERHEAD, len);
        }
        pos += SECTION_OVERHEAD + len;
    }
    panic!("section {:?} not found", std::str::from_utf8(tag));
}

fn sample_fixed_store() -> (Vocab, RdfGraph, Vec<u8>) {
    let mut vocab = Vocab::new();
    let g = {
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        b.uub("ss", "address", "b1");
        b.bul("b1", "zip", "EH8 9AB");
        b.bul("b1", "city", "Edinburgh");
        b.uul("ss", "name", "Sławek");
        b.uuu("ss", "employer", "ed-uni");
        b.finish()
    };
    let bytes = graph_to_bytes_layout(&vocab, &g, Layout::Fixed).unwrap();
    (vocab, g, bytes)
}

/// Recompute a section's stored CRC after tampering with its payload so
/// the corruption reaches the body decoder instead of the checksum.
fn fix_crc(bytes: &mut [u8], tag: &[u8; 4]) {
    let (off, len) = section_payload(bytes, tag);
    let crc = rdf_store::checksum::crc32(&bytes[off..off + len]);
    bytes[off - 4..off].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn fixed_bad_width_byte_is_typed() {
    let (_, _, mut bytes) = sample_fixed_store();
    // The width byte sits after the 8-byte count in the TRPL preamble.
    let (off, _) = section_payload(&bytes, b"TRPL");
    bytes[off + 8] = 3;
    fix_crc(&mut bytes, b"TRPL");
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("invalid fixed width"), "got: {msg}")
        }
        other => panic!("expected Corrupt(invalid width), got {other:?}"),
    }
}

#[test]
fn fixed_crc_flip_is_typed() {
    let (_, _, mut bytes) = sample_fixed_store();
    let (off, _) = section_payload(&bytes, b"TRPL");
    // Stored checksum sits in the 4 bytes before the payload.
    bytes[off - 4] ^= 0xff;
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::ChecksumMismatch { section, .. }) => {
            assert_eq!(&section, b"TRPL")
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn fixed_nonzero_padding_is_typed() {
    let (_, _, mut bytes) = sample_fixed_store();
    // The sample graph's node count is not a multiple of 8 at width 1,
    // so the NODE body tail is zero padding up to the 8-byte boundary.
    // Poisoning it must be detected.
    let (off, len) = section_payload(&bytes, b"NODE");
    bytes[off + len - 1] = 0xAA;
    fix_crc(&mut bytes, b"NODE");
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("padding"), "got: {msg}")
        }
        other => panic!("expected Corrupt(padding), got {other:?}"),
    }
}

#[test]
fn fixed_misaligned_payload_is_typed() {
    // Rebuild the container with one extra byte appended to the TRPL
    // payload: the length is now not a multiple of 8, so the fixed
    // decoder must reject the body as trailing garbage (after the CRC —
    // recomputed by the writer — passes).
    let (_, _, bytes) = sample_fixed_store();
    let c = rdf_store::Container::parse(&bytes).unwrap();
    let header = *c.header();
    let mut w = rdf_store::ContainerWriter::new();
    for (tag, payload) in c.sections() {
        let mut p = payload.to_vec();
        if tag == b"TRPL" {
            p.push(0);
        }
        w.section(*tag, p);
    }
    let mut out = Vec::new();
    w.finish_versioned(&mut out, header.version, header.kind, header.counts)
        .unwrap();
    match StoreReader::from_bytes(out).read_graph() {
        Err(StoreError::Corrupt(_) | StoreError::Truncated { .. }) => {}
        other => panic!("expected typed misalignment error, got {other:?}"),
    }
}

#[test]
fn fixed_count_mismatch_is_typed() {
    let (_, _, mut bytes) = sample_fixed_store();
    // Lower the header triple count: the TRPL preamble count no longer
    // matches what the header claims.
    let triples =
        u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    bytes[24..32].copy_from_slice(&(triples - 1).to_le_bytes());
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("header says"), "got: {msg}")
        }
        other => panic!("expected Corrupt(count mismatch), got {other:?}"),
    }
}
