//! Property suite for the sharded store: for random graphs and shard
//! counts 1/2/3/8, `load(save_sharded(g, N)) == g` term-for-term, the
//! stitched dense arrays are **byte-identical** to the single-file
//! load for every shard × thread combination, and every manifest-path
//! corruption (truncation, missing shard, shard CRC mismatch, count
//! disagreement, duplicate entries) fails with a typed [`StoreError`]
//! — never a panic — mirroring the PR 2 single-file corruption tests.

use proptest::prelude::*;
use rdf_model::{LabelRef, NodeId, RdfGraph, Term, Vocab};
use rdf_par::Threads;
use rdf_store::{
    checksum::crc32,
    container::HEADER_LEN,
    graph_to_bytes, open_any, save_sharded,
    varint::{read_varint, write_varint},
    AnyReader, Container, ContainerWriter, ShardedReader, StoreError,
    StoreReader, KIND_MANIFEST, TAG_SHRD,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Awkward characters exercising literal and IRI escaping.
const TRICKY: &[&str] = &[
    "", " ", "\"", "\\", "\n", "café", "😀", "a b", "x\\\"y", "<angle>",
];

/// Unique-per-call scratch dir (proptest shrinkers re-enter cases).
fn tmp(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rdf-sharded-rt-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn term_of(g: &RdfGraph, vocab: &Vocab, n: NodeId) -> Term {
    match vocab.resolve(g.graph().label(n)) {
        LabelRef::Uri(u) => Term::uri(u),
        LabelRef::Literal(l) => Term::literal(l),
        LabelRef::Blank => Term::blank(
            g.blank_name(n)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("b{}", n.0)),
        ),
    }
}

fn term_triples(g: &RdfGraph, vocab: &Vocab) -> Vec<(Term, Term, Term)> {
    let mut out: Vec<(Term, Term, Term)> = g
        .graph()
        .triples()
        .iter()
        .map(|t| {
            (
                term_of(g, vocab, t.s),
                term_of(g, vocab, t.p),
                term_of(g, vocab, t.o),
            )
        })
        .collect();
    out.sort();
    out
}

/// A random RDF graph mixing URI/blank subjects and URI/literal/blank
/// objects (same shape as the single-file suite).
fn arb_rdf_graph() -> impl Strategy<Value = (Vocab, RdfGraph)> {
    (1usize..28, any::<u64>()).prop_map(|(m, seed)| {
        let mut vocab = Vocab::new();
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..m {
            let s_uri = format!("http://e.org/s{}", next() % 7);
            let s_blank = format!("bn{}", next() % 5);
            let p = format!("http://e.org/p{}", next() % 4);
            let tricky = TRICKY[(next() % TRICKY.len() as u64) as usize];
            let lit = format!("v{} {tricky}", next() % 9);
            let o_blank = format!("bn{}", next() % 5);
            let o_uri = format!("http://e.org/o-{}", next() % 8);
            match next() % 5 {
                0 => b.uuu(&s_uri, &p, &o_uri),
                1 => b.uul(&s_uri, &p, &lit),
                2 => b.uub(&s_uri, &p, &o_blank),
                3 => b.bul(&s_blank, &p, &lit),
                _ => b.bub(&s_blank, &p, &o_blank),
            }
        }
        let g = b.finish();
        (vocab, g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `load(save_sharded(g, N))` reconstructs `g` term-for-term, and
    /// the stitched graph is *byte-identical* — same labels, kinds,
    /// triples, CSR adjacency and dictionary — to the single-file load
    /// of the same graph, for every shard count × thread count.
    #[test]
    fn sharded_load_is_identity_and_matches_single_file(
        (vocab, g) in arb_rdf_graph()
    ) {
        let (sv, sg) = StoreReader::from_bytes(
            graph_to_bytes(&vocab, &g).unwrap(),
        )
        .read_graph()
        .unwrap();
        let dir = tmp("prop");
        for shards in SHARD_COUNTS {
            let manifest = dir.join(format!("g{shards}.rdfm"));
            save_sharded(&manifest, &vocab, &g, shards).unwrap();
            for t in THREAD_COUNTS {
                let (v2, g2) = ShardedReader::open(&manifest)
                    .unwrap()
                    .read_graph(Threads::Fixed(t))
                    .unwrap();
                // Term-level identity with the original graph.
                prop_assert_eq!(
                    term_triples(&g2, &v2),
                    term_triples(&g, &vocab)
                );
                // Byte-level identity with the single-file load.
                prop_assert_eq!(
                    g2.graph().labels_raw(),
                    sg.graph().labels_raw()
                );
                prop_assert_eq!(
                    g2.graph().kinds_raw(),
                    sg.graph().kinds_raw()
                );
                prop_assert_eq!(g2.graph().triples(), sg.graph().triples());
                for n in sg.graph().nodes() {
                    prop_assert_eq!(g2.graph().out(n), sg.graph().out(n));
                    prop_assert_eq!(g2.blank_name(n), sg.blank_name(n));
                }
                prop_assert_eq!(v2.len(), sv.len());
                for i in 0..sv.len() {
                    let id = rdf_model::LabelId(i as u32);
                    prop_assert_eq!(v2.kind(id), sv.kind(id));
                    prop_assert_eq!(v2.text(id), sv.text(id));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sharded writes are deterministic: the same graph sharded twice
    /// produces identical manifest and shard bytes.
    #[test]
    fn sharded_save_is_deterministic((vocab, g) in arb_rdf_graph()) {
        let dir_a = tmp("det-a");
        let dir_b = tmp("det-b");
        let pa = save_sharded(dir_a.join("g.rdfm"), &vocab, &g, 3).unwrap();
        let pb = save_sharded(dir_b.join("g.rdfm"), &vocab, &g, 3).unwrap();
        for (a, b) in pa.iter().zip(&pb) {
            prop_assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    /// Every prefix-truncation of a manifest fails with a typed error.
    #[test]
    fn manifest_truncations_fail_loudly((vocab, g) in arb_rdf_graph()) {
        let dir = tmp("trunc");
        let manifest = dir.join("g.rdfm");
        save_sharded(&manifest, &vocab, &g, 2).unwrap();
        let bytes = std::fs::read(&manifest).unwrap();
        for cut in (0..bytes.len()).step_by(9) {
            let r = ShardedReader::from_bytes(&dir, bytes[..cut].to_vec());
            prop_assert!(
                r.read_graph(Threads::Fixed(2)).is_err(),
                "cut at {} must fail",
                cut
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A hand-built sharded store exercising each typed corruption error.
fn sample_sharded(tag: &str) -> (PathBuf, PathBuf, Vec<PathBuf>) {
    let mut vocab = Vocab::new();
    let g = {
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        b.uub("ss", "address", "b1");
        b.bul("b1", "zip", "EH8 9AB");
        b.bul("b1", "city", "Edinburgh");
        b.uul("ss", "name", "Sławek\nStaworko@pl");
        b.uuu("ss", "employer", "ed-uni");
        b.uul("ed-uni", "city", "Edinburgh");
        b.finish()
    };
    let dir = tmp(tag);
    let manifest = dir.join("v.rdfm");
    let paths = save_sharded(&manifest, &vocab, &g, 3).unwrap();
    (dir, manifest, paths)
}

fn load(manifest: &PathBuf) -> Result<(Vocab, RdfGraph), StoreError> {
    ShardedReader::open(manifest)?.read_graph(Threads::Fixed(2))
}

/// Decode a manifest's SHRD directory, apply `edit` to the entry list
/// (as `(name, triples, crc)` tuples) and seed, and write the rebuilt
/// manifest back — the knob the corruption tests turn.
fn rewrite_manifest(
    manifest: &PathBuf,
    edit: impl FnOnce(&mut u64, &mut Vec<(String, u64, u64)>, &mut [u64; 3]),
) {
    let bytes = std::fs::read(manifest).unwrap();
    let c = Container::parse(&bytes).unwrap();
    let mut counts = c.header().counts;
    let shrd = c.section(TAG_SHRD).unwrap();
    let mut pos = 0usize;
    let mut seed = read_varint(shrd, &mut pos).unwrap();
    let n = read_varint(shrd, &mut pos).unwrap();
    let mut entries = Vec::new();
    for _ in 0..n {
        let len = read_varint(shrd, &mut pos).unwrap() as usize;
        let name =
            String::from_utf8(shrd[pos..pos + len].to_vec()).unwrap();
        pos += len;
        let triples = read_varint(shrd, &mut pos).unwrap();
        let crc = read_varint(shrd, &mut pos).unwrap();
        entries.push((name, triples, crc));
    }
    edit(&mut seed, &mut entries, &mut counts);

    let mut body = Vec::new();
    write_varint(&mut body, seed);
    write_varint(&mut body, entries.len() as u64);
    for (name, triples, crc) in &entries {
        write_varint(&mut body, name.len() as u64);
        body.extend_from_slice(name.as_bytes());
        write_varint(&mut body, *triples);
        write_varint(&mut body, *crc);
    }
    let mut out = Vec::new();
    let mut w = ContainerWriter::new();
    w.section(TAG_SHRD, body);
    for (tag, payload) in c.sections().iter().skip(1) {
        w.section(*tag, payload.to_vec());
    }
    w.finish(&mut out, KIND_MANIFEST, counts).unwrap();
    std::fs::write(manifest, out).unwrap();
}

#[test]
fn empty_graph_shards_round_trip() {
    let dir = tmp("empty");
    let vocab = Vocab::new();
    let g = rdf_model::RdfGraphBuilder::new(&mut Vocab::new()).finish();
    let manifest = dir.join("e.rdfm");
    save_sharded(&manifest, &vocab, &g, 4).unwrap();
    let (v2, g2) = ShardedReader::open(&manifest)
        .unwrap()
        .read_graph(Threads::Fixed(2))
        .unwrap();
    assert_eq!(g2.node_count(), 0);
    assert_eq!(g2.triple_count(), 0);
    assert_eq!(v2.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_manifest_is_typed() {
    let (dir, manifest, _) = sample_sharded("tr");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..HEADER_LEN + 7]).unwrap();
    assert!(matches!(
        load(&manifest),
        Err(StoreError::Truncated { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_shard_file_is_typed() {
    let (dir, manifest, paths) = sample_sharded("missing");
    std::fs::remove_file(&paths[2]).unwrap();
    match load(&manifest) {
        Err(StoreError::MissingShard { path }) => {
            assert!(path.contains("v-shard-1.rdfb"), "got path {path}")
        }
        other => panic!("expected MissingShard, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_crc_mismatch_is_typed() {
    let (dir, manifest, paths) = sample_sharded("crc");
    // Flip the last byte of shard 0 (always inside its TRPL section).
    // Both the manifest's whole-file CRC and the shard's own section
    // checksum break; the manifest CRC is checked first and names the
    // shard.
    let mut bytes = std::fs::read(&paths[1]).unwrap();
    let at = bytes.len() - 1;
    bytes[at] ^= 0x20;
    std::fs::write(&paths[1], &bytes).unwrap();
    match load(&manifest) {
        Err(StoreError::ShardChecksumMismatch { shard, stored, computed }) => {
            assert_eq!(shard, "v-shard-0.rdfb");
            assert_eq!(computed, crc32(&bytes));
            assert_ne!(stored, computed);
        }
        other => panic!("expected ShardChecksumMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swapped_shard_files_are_typed() {
    let (dir, manifest, paths) = sample_sharded("swap");
    // Swap the files behind shard 0 and shard 1: each file is intact in
    // isolation, but the manifest CRCs no longer line up.
    let a = std::fs::read(&paths[1]).unwrap();
    let b = std::fs::read(&paths[2]).unwrap();
    std::fs::write(&paths[1], &b).unwrap();
    std::fs::write(&paths[2], &a).unwrap();
    assert!(matches!(
        load(&manifest),
        Err(StoreError::ShardChecksumMismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_count_disagreement_is_typed() {
    // Header claims more shards than the directory lists.
    let (dir, manifest, _) = sample_sharded("count-header");
    rewrite_manifest(&manifest, |_, _, counts| counts[0] += 1);
    match load(&manifest) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("header records"), "got: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Directory triple totals disagree with the header total.
    let (dir, manifest, _) = sample_sharded("count-totals");
    rewrite_manifest(&manifest, |_, entries, _| entries[0].1 += 1);
    match load(&manifest) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("totals"), "got: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Manifest self-consistent but disagreeing with the shard file's
    // own embedded count. The failure is discovered *inside* the shard
    // parse, so it arrives wrapped with the failing file's name.
    let (dir, manifest, _) = sample_sharded("count-shard");
    rewrite_manifest(&manifest, |_, entries, counts| {
        entries[0].1 += 1;
        counts[2] += 1;
    });
    match load(&manifest) {
        Err(StoreError::InShard { shard, source }) => {
            assert!(shard.contains("shard-0"), "got shard: {shard}");
            match *source {
                StoreError::Corrupt(ref msg) => {
                    assert!(msg.contains("disagrees"), "got: {msg}")
                }
                ref other => panic!("expected Corrupt inside, got {other:?}"),
            }
        }
        other => panic!("expected InShard(Corrupt), got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_shard_entries_are_typed() {
    let (dir, manifest, _) = sample_sharded("dup");
    rewrite_manifest(&manifest, |_, entries, counts| {
        // Keep every count check consistent so the duplicate-name check
        // itself must fire.
        let old = entries[1].1;
        entries[1] = entries[0].clone();
        counts[2] = counts[2] - old + entries[1].1;
    });
    match load(&manifest) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("duplicate shard entry"), "got: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn path_escaping_shard_names_are_typed() {
    // Shard names are untrusted manifest content; anything that is not
    // a plain file name must be rejected before any file is opened —
    // a crafted manifest must not direct reads outside the store
    // directory (or at devices).
    for evil in ["../escape.rdfb", "/dev/stdin", "a/b.rdfb", "..", ""] {
        let (dir, manifest, _) = sample_sharded("evil-name");
        rewrite_manifest(&manifest, |_, entries, _| {
            entries[0].0 = evil.to_owned();
        });
        match load(&manifest) {
            Err(StoreError::Corrupt(msg)) => assert!(
                msg.contains("plain file name"),
                "name {evil:?} got: {msg}"
            ),
            other => panic!(
                "expected Corrupt for name {evil:?}, got {other:?}"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn zero_shard_manifest_is_typed() {
    let (dir, manifest, _) = sample_sharded("zero");
    rewrite_manifest(&manifest, |_, entries, counts| {
        entries.clear();
        counts[0] = 0;
        counts[2] = 0;
    });
    match load(&manifest) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("zero shards"), "got: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graph_store_passed_as_manifest_is_typed() {
    let (dir, manifest, _) = sample_sharded("kind");
    // Point the sharded reader at a single-file graph store.
    let mut vocab = Vocab::new();
    let g = {
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        b.uul("x", "p", "v");
        b.finish()
    };
    let single = dir.join("g.rdfb");
    rdf_store::save_graph(&single, &vocab, &g).unwrap();
    match ShardedReader::open(&single).unwrap().read_graph(Threads::Fixed(1)) {
        Err(StoreError::WrongContentKind { found, expected }) => {
            assert_eq!(found, rdf_store::KIND_GRAPH);
            assert_eq!(expected, KIND_MANIFEST);
        }
        other => panic!("expected WrongContentKind, got {other:?}"),
    }
    // And open_any still resolves the real manifest as sharded.
    assert!(matches!(
        open_any(&manifest).unwrap(),
        AnyReader::Sharded(_)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_triples_across_shards_are_typed() {
    let (dir, manifest, paths) = sample_sharded("overlap");
    // Pick a shard that actually holds triples, clone its TRPL run
    // into the *next* shard slot (re-indexed so the per-shard checks
    // pass), and fix the manifest accordingly. The stitched graph then
    // dedups the repeated triples, and the final total-count check
    // must catch the overlap.
    let (src, src_bytes, triples_src) = (0..3)
        .map(|k| {
            let bytes = std::fs::read(&paths[1 + k]).unwrap();
            let t = Container::parse(&bytes).unwrap().header().counts[2];
            (k, bytes, t)
        })
        .find(|&(_, _, t)| t > 0)
        .expect("sample graph has triples somewhere");
    let dst = (src + 1) % 3;
    let c = Container::parse(&src_bytes).unwrap();
    let mut out = Vec::new();
    let mut w = ContainerWriter::new();
    w.section(*b"TRPL", c.section(*b"TRPL").unwrap().to_vec());
    w.finish(&mut out, rdf_store::KIND_SHARD, [dst as u64, 0, triples_src])
        .unwrap();
    std::fs::write(&paths[1 + dst], &out).unwrap();
    let new_crc = crc32(&out);
    rewrite_manifest(&manifest, |_, entries, counts| {
        let old = entries[dst].1;
        entries[dst].1 = triples_src;
        entries[dst].2 = u64::from(new_crc);
        counts[2] = counts[2] - old + triples_src;
    });
    match load(&manifest) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(
                msg.contains("duplicate or overlapping"),
                "got: {msg}"
            )
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
