//! Property suite for the `.rdfb` store: `load(save(g)) == g`
//! term-for-term for random graphs (blank nodes, escaped / lang-tagged /
//! datatyped literals), byte-identical reconstruction of freshly parsed
//! graphs, and typed — never panicking — failures on corrupt containers.

use proptest::prelude::*;
use rdf_io::{parse_graph, write_graph};
use rdf_model::{LabelRef, NodeId, RdfGraph, Term, Vocab};
use rdf_store::{graph_to_bytes, StoreError, StoreReader};

/// Awkward characters exercising literal and IRI escaping.
const TRICKY: &[&str] = &[
    "", " ", "\"", "\\", "\n", "\r", "\t", "café", "😀", "a b", "x\\\"y",
    "line1\nline2", "<angle>", "fin.",
];

fn term_of(g: &RdfGraph, vocab: &Vocab, n: NodeId) -> Term {
    match vocab.resolve(g.graph().label(n)) {
        LabelRef::Uri(u) => Term::uri(u),
        LabelRef::Literal(l) => Term::literal(l),
        LabelRef::Blank => Term::blank(
            g.blank_name(n)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("b{}", n.0)),
        ),
    }
}

fn term_triples(g: &RdfGraph, vocab: &Vocab) -> Vec<(Term, Term, Term)> {
    let mut out: Vec<(Term, Term, Term)> = g
        .graph()
        .triples()
        .iter()
        .map(|t| {
            (
                term_of(g, vocab, t.s),
                term_of(g, vocab, t.p),
                term_of(g, vocab, t.o),
            )
        })
        .collect();
    out.sort();
    out
}

/// A random RDF graph mixing URI/blank subjects and URI/literal/blank
/// objects, literals drawn from the tricky pool with language tags and
/// datatypes folded in.
fn arb_rdf_graph() -> impl Strategy<Value = (Vocab, RdfGraph)> {
    (1usize..24, any::<u64>()).prop_map(|(m, seed)| {
        let mut vocab = Vocab::new();
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..m {
            let s_uri = format!("http://e.org/s{}", next() % 6);
            let s_blank = format!("bn{}", next() % 5);
            let p = format!("http://e.org/p{}", next() % 4);
            let tricky = TRICKY[(next() % TRICKY.len() as u64) as usize];
            let lit = match next() % 4 {
                0 => tricky.to_string(),
                1 => format!("{tricky}@en"),
                2 => format!(
                    "{}^^http://www.w3.org/2001/XMLSchema#string",
                    next() % 9
                ),
                _ => format!("value {} {tricky}", next() % 7),
            };
            let o_blank = format!("bn{}", next() % 5);
            let o_uri = format!("http://e.org/o-{}", next() % 8);
            match next() % 5 {
                0 => b.uuu(&s_uri, &p, &o_uri),
                1 => b.uul(&s_uri, &p, &lit),
                2 => b.uub(&s_uri, &p, &o_blank),
                3 => b.bul(&s_blank, &p, &lit),
                _ => b.bub(&s_blank, &p, &o_blank),
            }
        }
        let g = b.finish();
        (vocab, g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `load(save(g)) == g` term-for-term, blank names included.
    #[test]
    fn save_load_is_identity((vocab, g) in arb_rdf_graph()) {
        let bytes = graph_to_bytes(&vocab, &g).unwrap();
        let (v2, g2) = StoreReader::from_bytes(bytes).read_graph().unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.triple_count(), g.triple_count());
        prop_assert_eq!(term_triples(&g2, &v2), term_triples(&g, &vocab));
        for n in g.graph().nodes() {
            prop_assert_eq!(g2.blank_name(n), g.blank_name(n));
        }
    }

    /// `load(save(parse(text)))` reconstructs `parse(text)` *byte-
    /// identically*: same node ids, same label ids, same CSR adjacency —
    /// not just term equality — because a fresh parse interns labels
    /// densely in first-appearance order, which is exactly the store's
    /// dictionary order.
    #[test]
    fn store_of_fresh_parse_is_byte_identical((vocab, g) in arb_rdf_graph()) {
        let text = write_graph(&g, &vocab);
        let mut fresh = Vocab::new();
        let parsed = parse_graph(&text, &mut fresh).unwrap();
        let bytes = graph_to_bytes(&fresh, &parsed).unwrap();
        let (v2, loaded) = StoreReader::from_bytes(bytes).read_graph().unwrap();
        prop_assert_eq!(
            loaded.graph().labels_raw(),
            parsed.graph().labels_raw()
        );
        prop_assert_eq!(loaded.graph().kinds_raw(), parsed.graph().kinds_raw());
        prop_assert_eq!(loaded.graph().triples(), parsed.graph().triples());
        for n in parsed.graph().nodes() {
            prop_assert_eq!(loaded.graph().out(n), parsed.graph().out(n));
        }
        prop_assert_eq!(v2.len(), fresh.len());
        for i in 0..fresh.len() {
            let id = rdf_model::LabelId(i as u32);
            prop_assert_eq!(v2.kind(id), fresh.kind(id));
            prop_assert_eq!(v2.text(id), fresh.text(id));
        }
        // And the canonical serialisation agrees byte-for-byte.
        prop_assert_eq!(write_graph(&loaded, &v2), text);
    }

    /// Saving is deterministic: identical graphs produce identical bytes.
    #[test]
    fn save_is_deterministic((vocab, g) in arb_rdf_graph()) {
        let a = graph_to_bytes(&vocab, &g).unwrap();
        let b = graph_to_bytes(&vocab, &g).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Every prefix-truncation of a valid container fails with a typed
    /// error — no panic, no silent partial graph.
    #[test]
    fn truncations_fail_loudly((vocab, g) in arb_rdf_graph()) {
        let bytes = graph_to_bytes(&vocab, &g).unwrap();
        // Sampling every 7th cut keeps the case fast while still
        // touching header, frame and payload territory.
        for cut in (0..bytes.len()).step_by(7) {
            let r = StoreReader::from_bytes(bytes[..cut].to_vec());
            prop_assert!(r.read_graph().is_err(), "cut at {} must fail", cut);
        }
    }

    /// Any single flipped payload bit is caught (by a checksum mismatch
    /// or a later structural check) — sampled across the file.
    #[test]
    fn bit_flips_are_detected((vocab, g) in arb_rdf_graph()) {
        let bytes = graph_to_bytes(&vocab, &g).unwrap();
        for i in (0..bytes.len()).step_by(11) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            // Must not panic; almost always errors. A flip inside an
            // unused header byte region cannot occur (all 32 bytes are
            // meaningful), but a flip may cancel out only by breaking a
            // count that a structural check catches — either way, no
            // silent success with different content.
            let r = StoreReader::from_bytes(corrupt).read_graph();
            if let Ok((v2, g2)) = r {
                // The only acceptable "success" is content identity
                // (impossible for a real flip, but assert it anyway).
                prop_assert_eq!(
                    term_triples(&g2, &v2),
                    term_triples(&g, &vocab)
                );
            }
        }
    }
}

/// A hand-built container exercising each typed corruption error.
fn sample_store() -> (Vocab, RdfGraph, Vec<u8>) {
    let mut vocab = Vocab::new();
    let g = {
        let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
        b.uub("ss", "address", "b1");
        b.bul("b1", "zip", "EH8 9AB");
        b.bul("b1", "city", "Edinburgh");
        b.uul("ss", "name", "Sławek\nStaworko@pl");
        b.finish()
    };
    let bytes = graph_to_bytes(&vocab, &g).unwrap();
    (vocab, g, bytes)
}

#[test]
fn bad_magic_is_typed() {
    let (_, _, mut bytes) = sample_store();
    bytes[..4].copy_from_slice(b"NOPE");
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_typed() {
    let (_, _, mut bytes) = sample_store();
    bytes[4] = 3;
    bytes[5] = 0;
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::UnsupportedVersion { found: 3, supported }) => {
            assert_eq!(supported, rdf_store::MAX_FORMAT_VERSION)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn version_flag_is_the_layout_authority() {
    // Stamping the fixed-layout version onto varint bytes must fail with
    // a typed fixed-parse error, never silently decode as varint: readers
    // resolve layout from the header flag alone.
    let (_, _, mut bytes) = sample_store();
    bytes[4] = rdf_store::FORMAT_VERSION_FIXED as u8;
    bytes[5] = 0;
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(
            StoreError::Truncated { .. } | StoreError::Corrupt(_),
        ) => {}
        other => panic!("expected typed fixed-parse error, got {other:?}"),
    }
}

#[test]
fn flipped_checksum_byte_is_typed() {
    let (_, _, mut bytes) = sample_store();
    // First section's stored checksum sits at header + tag + len.
    let crc_at = rdf_store::container::HEADER_LEN + 4 + 8;
    bytes[crc_at] ^= 0xff;
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::ChecksumMismatch { section, .. }) => {
            assert_eq!(&section, b"DICT")
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn flipped_payload_byte_is_typed() {
    let (_, _, mut bytes) = sample_store();
    let payload_at = rdf_store::container::HEADER_LEN
        + rdf_store::container::SECTION_OVERHEAD
        + 3;
    bytes[payload_at] ^= 0x55;
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncated_header_is_typed() {
    let (_, _, bytes) = sample_store();
    match StoreReader::from_bytes(bytes[..10].to_vec()).read_graph() {
        Err(StoreError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn archive_kind_rejected_by_graph_loader() {
    let (_, _, mut bytes) = sample_store();
    // Patch the content-kind byte to ARCHIVE and fix nothing else; the
    // kind check fires before any section is interpreted.
    bytes[6] = rdf_store::KIND_ARCHIVE;
    match StoreReader::from_bytes(bytes).read_graph() {
        Err(StoreError::WrongContentKind { found, expected }) => {
            assert_eq!(found, rdf_store::KIND_ARCHIVE);
            assert_eq!(expected, rdf_store::KIND_GRAPH);
        }
        other => panic!("expected WrongContentKind, got {other:?}"),
    }
}

#[test]
fn empty_graph_round_trips() {
    let vocab = Vocab::new();
    let g = rdf_model::RdfGraphBuilder::new(&mut Vocab::new()).finish();
    let bytes = graph_to_bytes(&vocab, &g).unwrap();
    let (v2, g2) = StoreReader::from_bytes(bytes).read_graph().unwrap();
    assert_eq!(g2.node_count(), 0);
    assert_eq!(g2.triple_count(), 0);
    assert_eq!(v2.len(), 1);
}

#[test]
fn info_reports_header_and_sections() {
    let (_, g, bytes) = sample_store();
    let info = StoreReader::from_bytes(bytes.clone()).info().unwrap();
    assert_eq!(info.header.kind, rdf_store::KIND_GRAPH);
    assert_eq!(info.header.counts[1], g.node_count() as u64);
    assert_eq!(info.header.counts[2], g.triple_count() as u64);
    assert_eq!(info.file_bytes, bytes.len());
    let tags: Vec<&str> =
        info.sections.iter().map(|(t, _)| t.as_str()).collect();
    assert_eq!(tags, ["DICT", "NODE", "TRPL", "BNAM"]);
}
