//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every section payload of a `.rdfb` container is checksummed so that
//! bit rot or a partial write is detected at load time instead of
//! surfacing as a silently wrong graph. CRC-32 is implemented locally
//! because the offline dependency set carries no `crc` crate.

/// Reflected polynomial of CRC-32/ISO-HDLC (zlib, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
