//! The generic `.rdfb` container: header + checksummed sections.
//!
//! A container is a 32-byte fixed header (magic `RDFB`, version,
//! content kind, section count, three kind-dependent u64 counts)
//! followed by sections framed as
//! `tag[4] · payload_len(u64) · crc32(u32) · payload`. The normative
//! byte-level specification — including the per-kind count meanings
//! and every validation rule — lives in `docs/FORMAT.md` (§1–§2) at
//! the repository root.
//!
//! Readers verify every checksum before any payload is interpreted, so a
//! flipped bit or a truncated download fails with a typed error instead
//! of materialising a wrong graph.
//!
//! The header version field doubles as the **layout flag**: version 1
//! containers carry varint section bodies, version 2 containers carry
//! the fixed-width bodies of the zero-copy load path ([`Layout`],
//! `docs/FORMAT.md` §7). Layout is always resolved from the header,
//! never from a file extension.

use crate::checksum::crc32;
use crate::error::StoreError;
use std::borrow::Cow;

/// The four magic bytes opening every container.
pub const MAGIC: [u8; 4] = *b"RDFB";

/// Format version of the varint layout (layout v1) — the default
/// writer output, byte-identical to every earlier release.
pub const FORMAT_VERSION: u16 = 1;

/// Format version of the fixed-width layout (layout v2): `NODE`/`TRPL`
/// bodies are padded little-endian fixed-width arrays and every
/// section payload is zero-padded to a multiple of 8 bytes, so readers
/// can serve typed slices straight from the file image
/// (`docs/FORMAT.md` §7).
pub const FORMAT_VERSION_FIXED: u16 = 2;

/// Highest container version this build reads. The version field *is*
/// the layout flag: 1 = varint bodies, 2 = fixed-width bodies; readers
/// resolve layout from it, never from a file extension.
pub const MAX_FORMAT_VERSION: u16 = 2;

/// Section body layout of a container, as selected by the header
/// version field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Layout v1: varint/delta-coded section bodies (smallest files).
    #[default]
    Varint,
    /// Layout v2: padded fixed-width little-endian section bodies
    /// (zero-copy or widen-only loads).
    Fixed,
}

impl Layout {
    /// The container version a writer stamps for this layout.
    pub fn version(self) -> u16 {
        match self {
            Layout::Varint => FORMAT_VERSION,
            Layout::Fixed => FORMAT_VERSION_FIXED,
        }
    }

    /// Resolve the layout a header version selects, or `None` for a
    /// version this build does not know.
    pub fn from_version(version: u16) -> Option<Layout> {
        match version {
            FORMAT_VERSION => Some(Layout::Varint),
            FORMAT_VERSION_FIXED => Some(Layout::Fixed),
            _ => None,
        }
    }

    /// Parse the CLI spelling (`"varint"` / `"fixed"`).
    pub fn from_cli(name: &str) -> Option<Layout> {
        match name {
            "varint" => Some(Layout::Varint),
            "fixed" => Some(Layout::Fixed),
            _ => None,
        }
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Layout::Varint => "varint",
            Layout::Fixed => "fixed",
        })
    }
}

/// Content kind: a single dictionary-encoded triple graph.
pub const KIND_GRAPH: u8 = 1;

/// Content kind: a multi-version archive.
pub const KIND_ARCHIVE: u8 = 2;

/// Content kind: a sharded-store manifest (global dictionary + shard
/// directory; the triples live in [`KIND_SHARD`] files).
pub const KIND_MANIFEST: u8 = 3;

/// Content kind: one shard of a sharded graph store (a subject-hash
/// partition of the triple set; meaningless without its manifest).
pub const KIND_SHARD: u8 = 4;

/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 32;

/// Per-section overhead in bytes (tag + length + checksum).
pub const SECTION_OVERHEAD: usize = 16;

/// Parsed fixed header of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version.
    pub version: u16,
    /// Content kind ([`KIND_GRAPH`] or [`KIND_ARCHIVE`]).
    pub kind: u8,
    /// Number of sections that follow.
    pub sections: u8,
    /// Kind-dependent summary counts (see module docs).
    pub counts: [u64; 3],
}

impl Header {
    /// The section body layout the version field selects. Infallible
    /// for parsed headers: [`Container::parse_header`] already
    /// rejected unknown versions.
    pub fn layout(&self) -> Layout {
        Layout::from_version(self.version).unwrap_or_default()
    }
}

/// Accumulates tagged sections, then writes the whole container.
///
/// Payloads are [`Cow`]s so hot writers (the sharded import loop) can
/// hand the same scratch buffer to successive sections without a fresh
/// allocation per section.
#[derive(Debug, Default)]
pub struct ContainerWriter<'a> {
    sections: Vec<([u8; 4], Cow<'a, [u8]>)>,
}

impl<'a> ContainerWriter<'a> {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section; order is preserved in the file. Accepts an
    /// owned `Vec<u8>` or a borrowed `&[u8]` (scratch reuse).
    pub fn section(
        &mut self,
        tag: [u8; 4],
        payload: impl Into<Cow<'a, [u8]>>,
    ) -> &mut Self {
        self.sections.push((tag, payload.into()));
        self
    }

    /// Serialise header and sections into `out` with the default
    /// (layout v1) version stamp.
    pub fn finish(
        self,
        out: &mut impl std::io::Write,
        kind: u8,
        counts: [u64; 3],
    ) -> Result<(), StoreError> {
        self.finish_versioned(out, FORMAT_VERSION, kind, counts)
    }

    /// Serialise header and sections into `out`, stamping an explicit
    /// container version (the layout flag — see [`Layout::version`]).
    pub fn finish_versioned(
        self,
        out: &mut impl std::io::Write,
        version: u16,
        kind: u8,
        counts: [u64; 3],
    ) -> Result<(), StoreError> {
        let n = u8::try_from(self.sections.len()).map_err(|_| {
            StoreError::Corrupt("more than 255 sections".into())
        })?;
        out.write_all(&MAGIC)?;
        out.write_all(&version.to_le_bytes())?;
        out.write_all(&[kind, n])?;
        for c in counts {
            out.write_all(&c.to_le_bytes())?;
        }
        for (tag, payload) in &self.sections {
            out.write_all(tag)?;
            out.write_all(&(payload.len() as u64).to_le_bytes())?;
            out.write_all(&crc32(payload).to_le_bytes())?;
            out.write_all(payload)?;
        }
        Ok(())
    }
}

/// A parsed container over an in-memory byte buffer; every section's
/// checksum has been verified by the time parsing returns.
#[derive(Debug)]
pub struct Container<'a> {
    header: Header,
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Container<'a> {
    /// Parse and fully validate a container (header fields, section
    /// framing, and every payload checksum).
    pub fn parse(bytes: &'a [u8]) -> Result<Self, StoreError> {
        Self::parse_inner(bytes, true)
    }

    /// [`Container::parse`] minus the per-section checksum comparison:
    /// framing, lengths and header fields are still fully validated,
    /// but payload CRCs are *assumed* correct.
    ///
    /// Strictly for buffers whose checksums were already verified this
    /// run (the streaming refinement engine re-reads each shard file
    /// every round; [`crate::ShardedReader::open_streaming`] validates
    /// every shard once up front, so the per-round re-parse must not
    /// pay the checksum pass again). Never call this on bytes that have
    /// not been through a checksummed parse first.
    pub fn parse_trusted(bytes: &'a [u8]) -> Result<Self, StoreError> {
        Self::parse_inner(bytes, false)
    }

    fn parse_inner(
        bytes: &'a [u8],
        verify_crc: bool,
    ) -> Result<Self, StoreError> {
        let header = Self::parse_header(bytes)?;
        let mut pos = HEADER_LEN;
        let mut sections = Vec::with_capacity(header.sections as usize);
        for _ in 0..header.sections {
            let frame =
                bytes.get(pos..pos + SECTION_OVERHEAD).ok_or(
                    StoreError::Truncated {
                        what: "section header",
                    },
                )?;
            let tag: [u8; 4] = frame[0..4].try_into().unwrap();
            let len = u64::from_le_bytes(frame[4..12].try_into().unwrap());
            let stored = u32::from_le_bytes(frame[12..16].try_into().unwrap());
            let len = usize::try_from(len).map_err(|_| {
                StoreError::Corrupt("section length exceeds usize".into())
            })?;
            pos += SECTION_OVERHEAD;
            // The length field is not itself checksummed; a flipped bit
            // can make it huge, so the slice arithmetic must not overflow.
            let end = pos.checked_add(len).ok_or(StoreError::Truncated {
                what: "section payload",
            })?;
            let payload =
                bytes.get(pos..end).ok_or(StoreError::Truncated {
                    what: "section payload",
                })?;
            pos = end;
            if verify_crc {
                let computed = crc32(payload);
                if computed != stored {
                    return Err(StoreError::ChecksumMismatch {
                        section: tag,
                        stored,
                        computed,
                    });
                }
            }
            sections.push((tag, payload));
        }
        if pos != bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after final section",
                bytes.len() - pos
            )));
        }
        Ok(Container { header, sections })
    }

    /// Parse only the fixed header (no section walking) — enough for a
    /// cheap `info` on a large file.
    pub fn parse_header(bytes: &[u8]) -> Result<Header, StoreError> {
        // Check the magic before the length, so a short non-container
        // file reports "not an RDFB container" rather than "truncated".
        if let Some(prefix) = bytes.get(..4) {
            let found: [u8; 4] = prefix.try_into().unwrap();
            if found != MAGIC {
                return Err(StoreError::BadMagic { found });
            }
        }
        let head = bytes.get(..HEADER_LEN).ok_or(StoreError::Truncated {
            what: "header",
        })?;
        let version = u16::from_le_bytes(head[4..6].try_into().unwrap());
        if version == 0 || version > MAX_FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: MAX_FORMAT_VERSION,
            });
        }
        let kind = head[6];
        let sections = head[7];
        let mut counts = [0u64; 3];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = u64::from_le_bytes(
                head[8 + 8 * i..16 + 8 * i].try_into().unwrap(),
            );
        }
        Ok(Header {
            version,
            kind,
            sections,
            counts,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// All sections in file order.
    pub fn sections(&self) -> &[([u8; 4], &'a [u8])] {
        &self.sections
    }

    /// Payload of the first section with `tag`, or a typed error.
    pub fn section(&self, tag: [u8; 4]) -> Result<&'a [u8], StoreError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|&(_, p)| p)
            .ok_or(StoreError::MissingSection { section: tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new();
        w.section(*b"AAAA", vec![1, 2, 3]);
        w.section(*b"BBBB", vec![]);
        let mut out = Vec::new();
        w.finish(&mut out, KIND_GRAPH, [10, 20, 30]).unwrap();
        out
    }

    #[test]
    fn write_parse_round_trip() {
        let bytes = sample();
        let c = Container::parse(&bytes).unwrap();
        assert_eq!(c.header().version, FORMAT_VERSION);
        assert_eq!(c.header().kind, KIND_GRAPH);
        assert_eq!(c.header().counts, [10, 20, 30]);
        assert_eq!(c.section(*b"AAAA").unwrap(), &[1, 2, 3]);
        assert_eq!(c.section(*b"BBBB").unwrap(), &[] as &[u8]);
        assert!(matches!(
            c.section(*b"ZZZZ"),
            Err(StoreError::MissingSection { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample();
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::UnsupportedVersion {
                found: 0xffff,
                ..
            })
        ));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut bytes = sample();
        // AAAA's payload occupies the 3 bytes right after its frame.
        let a_payload = HEADER_LEN + SECTION_OVERHEAD;
        bytes[a_payload] ^= 0x40;
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::ChecksumMismatch { section, .. }) if section == *b"AAAA"
        ));
    }

    #[test]
    fn every_truncation_point_errors() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = Container::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::Corrupt(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn versioned_finish_round_trips_layout() {
        let mut w = ContainerWriter::new();
        let scratch = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        w.section(*b"AAAA", scratch.as_slice()); // borrowed payload
        let mut out = Vec::new();
        w.finish_versioned(&mut out, FORMAT_VERSION_FIXED, KIND_GRAPH, [8, 0, 0])
            .unwrap();
        let c = Container::parse(&out).unwrap();
        assert_eq!(c.header().version, FORMAT_VERSION_FIXED);
        assert_eq!(c.header().layout(), Layout::Fixed);
        assert_eq!(c.section(*b"AAAA").unwrap(), scratch.as_slice());
        // Default finish still stamps v1/varint.
        let v1 = sample();
        assert_eq!(
            Container::parse_header(&v1).unwrap().layout(),
            Layout::Varint
        );
    }

    #[test]
    fn layout_maps_versions_and_cli_names() {
        assert_eq!(Layout::Varint.version(), FORMAT_VERSION);
        assert_eq!(Layout::Fixed.version(), FORMAT_VERSION_FIXED);
        assert_eq!(Layout::from_version(1), Some(Layout::Varint));
        assert_eq!(Layout::from_version(2), Some(Layout::Fixed));
        assert_eq!(Layout::from_version(3), None);
        assert_eq!(Layout::from_cli("varint"), Some(Layout::Varint));
        assert_eq!(Layout::from_cli("fixed"), Some(Layout::Fixed));
        assert_eq!(Layout::from_cli("FIXED"), None);
        assert_eq!(Layout::Varint.to_string(), "varint");
        assert_eq!(Layout::Fixed.to_string(), "fixed");
    }

    #[test]
    fn version_zero_rejected() {
        let mut bytes = sample();
        bytes[4] = 0;
        bytes[5] = 0;
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }
}
