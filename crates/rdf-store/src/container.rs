//! The generic `.rdfb` container: header + checksummed sections.
//!
//! A container is a 32-byte fixed header (magic `RDFB`, version,
//! content kind, section count, three kind-dependent u64 counts)
//! followed by sections framed as
//! `tag[4] · payload_len(u64) · crc32(u32) · payload`. The normative
//! byte-level specification — including the per-kind count meanings
//! and every validation rule — lives in `docs/FORMAT.md` (§1–§2) at
//! the repository root.
//!
//! Readers verify every checksum before any payload is interpreted, so a
//! flipped bit or a truncated download fails with a typed error instead
//! of materialising a wrong graph.

use crate::checksum::crc32;
use crate::error::StoreError;

/// The four magic bytes opening every container.
pub const MAGIC: [u8; 4] = *b"RDFB";

/// Current (highest writable/readable) format version.
pub const FORMAT_VERSION: u16 = 1;

/// Content kind: a single dictionary-encoded triple graph.
pub const KIND_GRAPH: u8 = 1;

/// Content kind: a multi-version archive.
pub const KIND_ARCHIVE: u8 = 2;

/// Content kind: a sharded-store manifest (global dictionary + shard
/// directory; the triples live in [`KIND_SHARD`] files).
pub const KIND_MANIFEST: u8 = 3;

/// Content kind: one shard of a sharded graph store (a subject-hash
/// partition of the triple set; meaningless without its manifest).
pub const KIND_SHARD: u8 = 4;

/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 32;

/// Per-section overhead in bytes (tag + length + checksum).
pub const SECTION_OVERHEAD: usize = 16;

/// Parsed fixed header of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version.
    pub version: u16,
    /// Content kind ([`KIND_GRAPH`] or [`KIND_ARCHIVE`]).
    pub kind: u8,
    /// Number of sections that follow.
    pub sections: u8,
    /// Kind-dependent summary counts (see module docs).
    pub counts: [u64; 3],
}

/// Accumulates tagged sections, then writes the whole container.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl ContainerWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section; order is preserved in the file.
    pub fn section(&mut self, tag: [u8; 4], payload: Vec<u8>) -> &mut Self {
        self.sections.push((tag, payload));
        self
    }

    /// Serialise header and sections into `out`.
    pub fn finish(
        self,
        out: &mut impl std::io::Write,
        kind: u8,
        counts: [u64; 3],
    ) -> Result<(), StoreError> {
        let n = u8::try_from(self.sections.len()).map_err(|_| {
            StoreError::Corrupt("more than 255 sections".into())
        })?;
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&[kind, n])?;
        for c in counts {
            out.write_all(&c.to_le_bytes())?;
        }
        for (tag, payload) in &self.sections {
            out.write_all(tag)?;
            out.write_all(&(payload.len() as u64).to_le_bytes())?;
            out.write_all(&crc32(payload).to_le_bytes())?;
            out.write_all(payload)?;
        }
        Ok(())
    }
}

/// A parsed container over an in-memory byte buffer; every section's
/// checksum has been verified by the time parsing returns.
#[derive(Debug)]
pub struct Container<'a> {
    header: Header,
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Container<'a> {
    /// Parse and fully validate a container (header fields, section
    /// framing, and every payload checksum).
    pub fn parse(bytes: &'a [u8]) -> Result<Self, StoreError> {
        let header = Self::parse_header(bytes)?;
        let mut pos = HEADER_LEN;
        let mut sections = Vec::with_capacity(header.sections as usize);
        for _ in 0..header.sections {
            let frame =
                bytes.get(pos..pos + SECTION_OVERHEAD).ok_or(
                    StoreError::Truncated {
                        what: "section header",
                    },
                )?;
            let tag: [u8; 4] = frame[0..4].try_into().unwrap();
            let len = u64::from_le_bytes(frame[4..12].try_into().unwrap());
            let stored = u32::from_le_bytes(frame[12..16].try_into().unwrap());
            let len = usize::try_from(len).map_err(|_| {
                StoreError::Corrupt("section length exceeds usize".into())
            })?;
            pos += SECTION_OVERHEAD;
            // The length field is not itself checksummed; a flipped bit
            // can make it huge, so the slice arithmetic must not overflow.
            let end = pos.checked_add(len).ok_or(StoreError::Truncated {
                what: "section payload",
            })?;
            let payload =
                bytes.get(pos..end).ok_or(StoreError::Truncated {
                    what: "section payload",
                })?;
            pos = end;
            let computed = crc32(payload);
            if computed != stored {
                return Err(StoreError::ChecksumMismatch {
                    section: tag,
                    stored,
                    computed,
                });
            }
            sections.push((tag, payload));
        }
        if pos != bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after final section",
                bytes.len() - pos
            )));
        }
        Ok(Container { header, sections })
    }

    /// Parse only the fixed header (no section walking) — enough for a
    /// cheap `info` on a large file.
    pub fn parse_header(bytes: &[u8]) -> Result<Header, StoreError> {
        // Check the magic before the length, so a short non-container
        // file reports "not an RDFB container" rather than "truncated".
        if let Some(prefix) = bytes.get(..4) {
            let found: [u8; 4] = prefix.try_into().unwrap();
            if found != MAGIC {
                return Err(StoreError::BadMagic { found });
            }
        }
        let head = bytes.get(..HEADER_LEN).ok_or(StoreError::Truncated {
            what: "header",
        })?;
        let version = u16::from_le_bytes(head[4..6].try_into().unwrap());
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = head[6];
        let sections = head[7];
        let mut counts = [0u64; 3];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = u64::from_le_bytes(
                head[8 + 8 * i..16 + 8 * i].try_into().unwrap(),
            );
        }
        Ok(Header {
            version,
            kind,
            sections,
            counts,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// All sections in file order.
    pub fn sections(&self) -> &[([u8; 4], &'a [u8])] {
        &self.sections
    }

    /// Payload of the first section with `tag`, or a typed error.
    pub fn section(&self, tag: [u8; 4]) -> Result<&'a [u8], StoreError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|&(_, p)| p)
            .ok_or(StoreError::MissingSection { section: tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new();
        w.section(*b"AAAA", vec![1, 2, 3]);
        w.section(*b"BBBB", vec![]);
        let mut out = Vec::new();
        w.finish(&mut out, KIND_GRAPH, [10, 20, 30]).unwrap();
        out
    }

    #[test]
    fn write_parse_round_trip() {
        let bytes = sample();
        let c = Container::parse(&bytes).unwrap();
        assert_eq!(c.header().version, FORMAT_VERSION);
        assert_eq!(c.header().kind, KIND_GRAPH);
        assert_eq!(c.header().counts, [10, 20, 30]);
        assert_eq!(c.section(*b"AAAA").unwrap(), &[1, 2, 3]);
        assert_eq!(c.section(*b"BBBB").unwrap(), &[] as &[u8]);
        assert!(matches!(
            c.section(*b"ZZZZ"),
            Err(StoreError::MissingSection { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample();
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::UnsupportedVersion {
                found: 0xffff,
                ..
            })
        ));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut bytes = sample();
        // AAAA's payload occupies the 3 bytes right after its frame.
        let a_payload = HEADER_LEN + SECTION_OVERHEAD;
        bytes[a_payload] ^= 0x40;
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::ChecksumMismatch { section, .. }) if section == *b"AAAA"
        ));
    }

    #[test]
    fn every_truncation_point_errors() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = Container::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::Corrupt(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            Container::parse(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }
}
