//! Sharded graph stores: one manifest (`.rdfm`) + N subject-hash
//! partitioned shard files (`.rdfb`).
//!
//! The I/O-efficient bisimulation literature (Luo et al., Hellings et
//! al.) scales past RAM by partitioning the store itself. This module
//! splits one graph across N shard files so import, load and (later)
//! refinement parallelise over the `rdf-par` gang:
//!
//! * the **manifest** is an `RDFB` container of kind [`KIND_MANIFEST`]
//!   carrying the *global* sections once — `SHRD` (hash seed + shard
//!   directory), then the exact `DICT` / `NODE` / `BNAM` bodies the
//!   single-file writer produces. Node and label ids are therefore
//!   global and stable across shards: no cross-shard remap exists to
//!   get wrong;
//! * each **shard** is an `RDFB` container of kind [`KIND_SHARD`]
//!   holding one `TRPL` section — the sorted run of triples whose
//!   subject hashes to it (see [`shard_of`] for the exact mix);
//! * loading reads shards concurrently ([`rdf_par::scoped_try_map`])
//!   and stitches the runs with [`TripleGraph::from_sorted_runs`],
//!   yielding a graph **bit-identical to the single-file load** for
//!   every shard count and thread count.
//!
//! The manifest records each shard's file name, triple count and a CRC
//! over the *whole shard file*, so a missing, swapped or damaged shard
//! fails with a typed [`StoreError`] before any triple is believed.
//! The byte-level layout of manifests, shard files and the `shard_of`
//! hash is specified normatively in `docs/FORMAT.md` §5.

use crate::checksum::crc32;
use crate::container::{
    Container, ContainerWriter, Layout, KIND_MANIFEST, KIND_SHARD,
};
use crate::error::StoreError;
use crate::fixed::{check_pad8, decode_trpl_fixed_cols, pad8};
use crate::graph_store::{
    decode_bnam, decode_dict_checked, decode_node, decode_trpl,
    encode_global_sections, encode_trpl_into, section_span, StoreReader,
    TAG_BNAM, TAG_DICT, TAG_NODE, TAG_TRPL,
};
use crate::varint::{read_varint, read_varint_u32, write_varint};
use rdf_model::{
    LabelId, LabelKind, NodeId, RdfGraph, ShardColumns,
    ShardColumnsSource, Triple, TripleGraph, Vocab,
};
use rdf_obs::Recorder;
use rdf_par::{chunk_ranges, scoped_try_map, Threads};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Tag of the manifest's shard-directory section.
pub const TAG_SHRD: [u8; 4] = *b"SHRD";

/// Default subject-hash seed written into new manifests ("RDFBSHRD").
pub const DEFAULT_SHARD_SEED: u64 = 0x5244_4642_5348_5244;

/// The shard a subject node id belongs to:
/// `splitmix64_mix(seed ^ subject · 0x9E3779B97F4A7C15) % shards`
/// (the multiply spreads dense node ids before the splitmix64
/// finalizer). Pure and stable — the same `(seed, subject, shards)`
/// triplet maps identically on every build, which is what makes
/// manifests portable.
pub fn shard_of(seed: u64, subject: NodeId, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    let mut z =
        seed ^ u64::from(subject.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// One entry of the manifest's shard directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard file name, resolved relative to the manifest's directory.
    pub name: String,
    /// Triples stored in the shard.
    pub triples: u64,
    /// CRC-32 of the complete shard file.
    pub crc: u32,
}

/// A parsed, validated manifest (shard directory + global counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Subject-hash seed used to partition triples.
    pub seed: u64,
    /// Shard directory, in shard-index order.
    pub shards: Vec<ShardEntry>,
    /// Total node count of the stored graph.
    pub nodes: u64,
    /// Total triple count across all shards.
    pub triples: u64,
}

/// Writes a graph as a manifest plus N shard files.
#[derive(Debug, Clone, Copy)]
pub struct ShardedWriter {
    shards: usize,
    seed: u64,
    layout: Layout,
}

impl ShardedWriter {
    /// A writer splitting into `shards` files with the default seed and
    /// the default (varint) section layout.
    pub fn new(shards: usize) -> Self {
        ShardedWriter {
            shards,
            seed: DEFAULT_SHARD_SEED,
            layout: Layout::Varint,
        }
    }

    /// Override the subject-hash seed (recorded in the manifest).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose the section layout for the manifest and every shard file
    /// (readers resolve layout per file from each header, so the
    /// writer's uniform choice is a convention, not a format rule).
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Write `<manifest>` plus `<stem>-shard-<k>.rdfb` next to it and
    /// return every path written (manifest first). Shard files land on
    /// disk before the manifest, so an interrupted write never leaves a
    /// manifest pointing at absent shards.
    pub fn write(
        &self,
        manifest: impl AsRef<Path>,
        vocab: &Vocab,
        graph: &RdfGraph,
    ) -> Result<Vec<PathBuf>, StoreError> {
        let manifest = manifest.as_ref();
        if self.shards == 0 {
            return Err(StoreError::Corrupt(
                "shard count must be at least 1".into(),
            ));
        }
        let stem = manifest
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store".to_owned());
        let dir = manifest.parent().unwrap_or(Path::new(""));

        let g = graph.graph();
        let mut buckets: Vec<Vec<Triple>> = vec![Vec::new(); self.shards];
        for &t in g.triples() {
            // Triples arrive sorted; pushing preserves order per bucket,
            // so every shard's run is sorted by construction.
            buckets[shard_of(self.seed, t.s, self.shards)].push(t);
        }

        let mut entries = Vec::with_capacity(self.shards);
        let mut paths = Vec::with_capacity(self.shards + 1);
        // One scratch buffer for every shard's TRPL body and one for
        // the framed file image: the per-shard loop allocates nothing
        // proportional to the shard count.
        let mut scratch = Vec::new();
        let mut bytes = Vec::new();
        for (k, bucket) in buckets.iter().enumerate() {
            let name = format!("{stem}-shard-{k}.rdfb");
            encode_trpl_into(&mut scratch, bucket, self.layout);
            bytes.clear();
            let mut w = ContainerWriter::new();
            w.section(TAG_TRPL, scratch.as_slice());
            w.finish_versioned(
                &mut bytes,
                self.layout.version(),
                KIND_SHARD,
                [k as u64, 0, bucket.len() as u64],
            )?;
            let crc = crc32(&bytes);
            let path = dir.join(&name);
            std::fs::write(&path, &bytes)?;
            paths.push(path);
            entries.push(ShardEntry {
                name,
                triples: bucket.len() as u64,
                crc,
            });
        }

        let global = encode_global_sections(vocab, graph, self.layout)?;
        let mut shrd = Vec::new();
        write_varint(&mut shrd, self.seed);
        write_varint(&mut shrd, entries.len() as u64);
        for e in &entries {
            write_varint(&mut shrd, e.name.len() as u64);
            shrd.extend_from_slice(e.name.as_bytes());
            write_varint(&mut shrd, e.triples);
            write_varint(&mut shrd, u64::from(e.crc));
        }
        if self.layout == Layout::Fixed {
            pad8(&mut shrd);
        }

        let mut bytes = Vec::new();
        let mut w = ContainerWriter::new();
        w.section(TAG_SHRD, shrd)
            .section(TAG_DICT, global.dict)
            .section(TAG_NODE, global.node)
            .section(TAG_BNAM, global.bnam);
        w.finish_versioned(
            &mut bytes,
            self.layout.version(),
            KIND_MANIFEST,
            [
                self.shards as u64,
                g.node_count() as u64,
                g.triple_count() as u64,
            ],
        )?;
        std::fs::write(manifest, &bytes)?;
        paths.insert(0, manifest.to_path_buf());
        Ok(paths)
    }
}

/// Save a graph as `<path>` (manifest) + `shards` shard files in the
/// default varint layout.
pub fn save_sharded(
    path: impl AsRef<Path>,
    vocab: &Vocab,
    graph: &RdfGraph,
    shards: usize,
) -> Result<Vec<PathBuf>, StoreError> {
    ShardedWriter::new(shards).write(path, vocab, graph)
}

/// Save a graph as `<path>` (manifest) + `shards` shard files in an
/// explicit section layout.
pub fn save_sharded_layout(
    path: impl AsRef<Path>,
    vocab: &Vocab,
    graph: &RdfGraph,
    shards: usize,
    layout: Layout,
) -> Result<Vec<PathBuf>, StoreError> {
    ShardedWriter::new(shards)
        .with_layout(layout)
        .write(path, vocab, graph)
}

/// Summary of a sharded store, as shown by `rdf info`: the manifest
/// plus per-shard file sizes. Present only after full validation —
/// every shard file passed its manifest CRC and its own section
/// checksums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedInfo {
    /// Manifest container format version.
    pub version: u16,
    /// The parsed shard directory.
    pub manifest: Manifest,
    /// Size of the manifest file in bytes.
    pub manifest_bytes: usize,
    /// Size of each shard file in bytes, in shard-index order.
    pub shard_bytes: Vec<u64>,
}

impl ShardedInfo {
    /// Total on-disk footprint (manifest + all shards).
    pub fn total_bytes(&self) -> u64 {
        self.manifest_bytes as u64 + self.shard_bytes.iter().sum::<u64>()
    }
}

/// Reads a sharded store: the manifest image plus the directory shard
/// paths resolve against.
///
/// ```
/// use rdf_model::{RdfGraphBuilder, Vocab};
/// use rdf_par::Threads;
/// use rdf_store::{save_sharded, ShardedReader};
///
/// let dir = std::env::temp_dir().join(format!(
///     "rdfb-doc-sharded-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let mut vocab = Vocab::new();
/// let g = {
///     let mut b = RdfGraphBuilder::new(&mut vocab);
///     b.uub("ss", "address", "b1");
///     b.bul("b1", "zip", "EH8");
///     b.finish()
/// };
/// let manifest = dir.join("g.rdfm");
/// save_sharded(&manifest, &vocab, &g, 3).unwrap();
///
/// let reader = ShardedReader::open(&manifest).unwrap();
/// assert_eq!(reader.manifest().unwrap().shards.len(), 3);
/// // The stitched load is bit-identical to a single-file load, at
/// // every thread count.
/// let (_, g2) = reader.read_graph(Threads::Fixed(2)).unwrap();
/// assert_eq!(g2.graph().triples(), g.graph().triples());
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct ShardedReader {
    dir: PathBuf,
    bytes: Vec<u8>,
}

impl ShardedReader {
    /// Read a manifest file fully into memory; shard paths resolve
    /// relative to its parent directory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        Ok(ShardedReader {
            dir: path.parent().unwrap_or(Path::new("")).to_path_buf(),
            bytes: std::fs::read(path)?,
        })
    }

    /// Wrap an already-loaded manifest image; shard paths resolve
    /// relative to `dir`.
    pub fn from_bytes(dir: impl Into<PathBuf>, bytes: Vec<u8>) -> Self {
        ShardedReader {
            dir: dir.into(),
            bytes,
        }
    }

    /// Parse and fully validate the manifest (container checksums, the
    /// shard directory's internal consistency, and agreement with the
    /// header counts). Does not touch the shard files.
    pub fn manifest(&self) -> Result<Manifest, StoreError> {
        let c = Container::parse(&self.bytes)?;
        parse_manifest(&c)
    }

    /// Validate the manifest *and* every shard file (manifest-recorded
    /// whole-file CRCs plus each shard's own section checksums), and
    /// summarise the store.
    pub fn info(&self) -> Result<ShardedInfo, StoreError> {
        let c = Container::parse(&self.bytes)?;
        let version = c.header().version;
        let manifest = parse_manifest(&c)?;
        let mut shard_bytes = Vec::with_capacity(manifest.shards.len());
        for (k, entry) in manifest.shards.iter().enumerate() {
            let bytes = self.read_shard_bytes(entry)?;
            parse_shard(&bytes, k, entry)?;
            shard_bytes.push(bytes.len() as u64);
        }
        Ok(ShardedInfo {
            version,
            manifest,
            manifest_bytes: self.bytes.len(),
            shard_bytes,
        })
    }

    /// Decode the full graph: global dictionary and node table from the
    /// manifest, shard `TRPL` runs loaded concurrently on up to
    /// `threads` scoped workers, stitched with
    /// [`TripleGraph::from_sorted_runs`].
    ///
    /// The result is bit-identical to [`StoreReader::read_graph`] on
    /// the equivalent single-file store, for every shard count and
    /// every thread count; `threads` is purely a wall-clock knob. On
    /// failure the error is the lowest-indexed failing shard's,
    /// regardless of scheduling.
    pub fn read_graph(
        &self,
        threads: Threads,
    ) -> Result<(Vocab, RdfGraph), StoreError> {
        self.read_graph_with_info(threads).map(|(_, v, g)| (v, g))
    }

    /// [`ShardedReader::read_graph`] that also returns the
    /// [`ShardedInfo`] summary gathered during the same pass — every
    /// shard file is read, CRC-checked and decoded exactly once
    /// (callers wanting both, like `rdf info --bisim`, must not pay a
    /// second full read).
    pub fn read_graph_with_info(
        &self,
        threads: Threads,
    ) -> Result<(ShardedInfo, Vocab, RdfGraph), StoreError> {
        self.read_graph_with_info_traced(threads, &Recorder::disabled())
    }

    /// [`ShardedReader::read_graph_with_info`] with instrumentation:
    /// emits a `store.open` span for the manifest parse, `store.section`
    /// spans for the global sections, and one `shard.load` span per
    /// shard file (index, worker, file bytes, CRC-check time). The
    /// decoded graph is byte-identical to the untraced load and span
    /// *counts* depend only on the shard count, never on `threads`.
    pub fn read_graph_with_info_traced(
        &self,
        threads: Threads,
        rec: &Recorder,
    ) -> Result<(ShardedInfo, Vocab, RdfGraph), StoreError> {
        let mut open = rec.span("store.open");
        open.field("bytes", self.bytes.len());
        let c = Container::parse(&self.bytes)?;
        let layout = c.header().layout();
        open.field("layout", layout.to_string());
        drop(open);
        let version = c.header().version;
        let manifest = parse_manifest(&c)?;

        let dict_body = c.section(TAG_DICT)?;
        let vocab = {
            let _sp = section_span(rec, "DICT", dict_body.len(), layout);
            decode_dict_checked(dict_body, None, layout)?
        };
        let node_body = c.section(TAG_NODE)?;
        let (labels, kinds) = {
            let _sp = section_span(rec, "NODE", node_body.len(), layout);
            decode_node(node_body, &vocab, Some(manifest.nodes), layout)?
        };
        let node_count = labels.len();

        // One task per worker, each draining a contiguous range of the
        // shard directory in order; flattening the per-task results in
        // task order recovers exact shard order, independent of thread
        // count.
        let workers = threads.resolve().min(manifest.shards.len()).max(1);
        let ranges = chunk_ranges(manifest.shards.len(), workers);
        let entries = &manifest.shards;
        let per_task: Vec<Vec<(u64, Vec<Triple>)>> =
            scoped_try_map(ranges, |ti, range| {
                range
                    .map(|k| -> Result<_, StoreError> {
                        load_shard_traced(
                            &self.dir,
                            k,
                            &entries[k],
                            rec,
                            Some(ti),
                        )
                    })
                    .collect()
            })?;
        let (shard_bytes, runs): (Vec<u64>, Vec<Vec<Triple>>) =
            per_task.into_iter().flatten().unzip();

        let graph = TripleGraph::from_sorted_runs(labels, kinds, runs)
            .map_err(|e| StoreError::Corrupt(e.to_string()))?;
        if graph.triple_count() as u64 != manifest.triples {
            return Err(StoreError::Corrupt(format!(
                "stitched {} distinct triples but manifest records {} \
                 (duplicate or overlapping shards)",
                graph.triple_count(),
                manifest.triples
            )));
        }
        let bnam_body = c.section(TAG_BNAM)?;
        let blank_names = {
            let _sp = section_span(rec, "BNAM", bnam_body.len(), layout);
            decode_bnam(bnam_body, node_count, layout)?
        };
        let info = ShardedInfo {
            version,
            manifest,
            manifest_bytes: self.bytes.len(),
            shard_bytes,
        };
        Ok((info, vocab, RdfGraph::from_raw_parts(graph, blank_names)))
    }

    fn read_shard_bytes(
        &self,
        entry: &ShardEntry,
    ) -> Result<Vec<u8>, StoreError> {
        read_shard_file(&self.dir, entry)
    }

    /// Open the store for **streaming refinement**: decode only the
    /// global sections (dictionary and node table) and keep the shard
    /// directory, so [`StreamingStore::load_shard`] can serve one
    /// shard's columns at a time. The triples are *never* stitched
    /// into a resident [`TripleGraph`] — this is the external-memory
    /// entry point of the Luo et al. / Hellings et al. construction.
    ///
    /// Every shard file is read and fully checksum-verified **here,
    /// once** (manifest whole-file CRC plus the shard's own section
    /// checksums); subsequent [`StreamingStore::load_shard`] calls
    /// re-read the bytes but skip the checksum passes, so a 20-round
    /// fixpoint pays for 20 reads and **one** validation — not 20.
    /// Corruption therefore surfaces before any refinement work starts.
    pub fn open_streaming(&self) -> Result<StreamingStore, StoreError> {
        self.open_streaming_traced(Arc::new(Recorder::disabled()))
            .map(|(store, _)| store)
    }

    /// [`ShardedReader::open_streaming`] with instrumentation, also
    /// returning the [`ShardedInfo`] summary gathered by the one-time
    /// validation pass (callers rendering `rdf info` output must not
    /// pay a second full read). The recorder is retained by the store,
    /// so later `shard.load` spans land in the same trace; the
    /// validation pass itself emits one `shard.crc` span per shard
    /// (fields: `shard`, `bytes`) — exactly once per run, regardless
    /// of how many refinement rounds follow.
    pub fn open_streaming_traced(
        &self,
        rec: Arc<Recorder>,
    ) -> Result<(StreamingStore, ShardedInfo), StoreError> {
        let c = Container::parse(&self.bytes)?;
        let version = c.header().version;
        let layout = c.header().layout();
        let manifest = parse_manifest(&c)?;
        let vocab =
            decode_dict_checked(c.section(TAG_DICT)?, None, layout)?;
        let (labels, kinds) = decode_node(
            c.section(TAG_NODE)?,
            &vocab,
            Some(manifest.nodes),
            layout,
        )?;
        // The one-time validation pass: whole-file CRC against the
        // manifest, then the shard's own framing, kind, index and
        // section checksums. load_shard trusts these from here on.
        let mut shard_bytes = Vec::with_capacity(manifest.shards.len());
        for (k, entry) in manifest.shards.iter().enumerate() {
            let mut sp = rec.span("shard.crc");
            sp.field("shard", k);
            let bytes = read_shard_file(&self.dir, entry)?;
            sp.field("bytes", bytes.len());
            check_shard_crc(&bytes, entry)?;
            shard_trpl_body(&bytes, k, entry)
                .map_err(|e| wrap_in_shard(entry, e))?;
            shard_bytes.push(bytes.len() as u64);
        }
        let info = ShardedInfo {
            version,
            manifest: manifest.clone(),
            manifest_bytes: self.bytes.len(),
            shard_bytes,
        };
        Ok((
            StreamingStore {
                dir: self.dir.clone(),
                manifest,
                vocab,
                labels,
                kinds,
                recorder: rec,
            },
            info,
        ))
    }
}

/// Read, CRC-check and decode one shard file, emitting a `shard.load`
/// span (shard index, optional worker, file bytes, CRC-check time).
/// With a disabled recorder this is exactly the untraced load.
fn load_shard_traced(
    dir: &Path,
    k: usize,
    entry: &ShardEntry,
    rec: &Recorder,
    worker: Option<usize>,
) -> Result<(u64, Vec<Triple>), StoreError> {
    let mut sp = rec.span("shard.load");
    sp.field("shard", k);
    if let Some(w) = worker {
        sp.field("worker", w);
    }
    let bytes = read_shard_file(dir, entry)?;
    sp.field("bytes", bytes.len());
    let crc_start = sp.enabled().then(Instant::now);
    check_shard_crc(&bytes, entry)?;
    if let Some(start) = crc_start {
        sp.field("crc_us", start.elapsed().as_micros() as u64);
    }
    let run = decode_shard(&bytes, k, entry)?;
    Ok((bytes.len() as u64, run))
}

/// Read one shard file, mapping absence to the typed
/// [`StoreError::MissingShard`].
fn read_shard_file(
    dir: &Path,
    entry: &ShardEntry,
) -> Result<Vec<u8>, StoreError> {
    let path = dir.join(&entry.name);
    match std::fs::read(&path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Err(StoreError::MissingShard {
                path: path.display().to_string(),
            })
        }
        Err(e) => Err(e.into()),
    }
}

/// A sharded store opened for shard-at-a-time streaming: the global
/// sections (dictionary, per-node labels and kinds) are resident, the
/// triples stay on disk and are served one shard at a time through the
/// [`ShardColumnsSource`] implementation.
///
/// Checksums are verified **once**, by the
/// [`ShardedReader::open_streaming`] validation pass — each
/// [`StreamingStore::load_shard`] call re-reads its shard file but
/// skips the whole-file CRC and section-checksum passes (framing,
/// lengths, kind, index and triple counts are still checked, so a file
/// swapped mid-run still fails with a typed [`StoreError`]). Like any
/// mmap'd reader, external modification of a store *during* a run is
/// outside the supported contract.
///
/// Built by [`ShardedReader::open_streaming`]:
///
/// ```
/// use rdf_model::{RdfGraphBuilder, ShardColumnsSource, Vocab};
/// use rdf_store::{save_sharded, ShardedReader};
///
/// let dir = std::env::temp_dir().join(format!(
///     "rdfb-doc-streaming-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let mut vocab = Vocab::new();
/// let g = {
///     let mut b = RdfGraphBuilder::new(&mut vocab);
///     b.uub("ss", "address", "b1");
///     b.bul("b1", "zip", "EH8");
///     b.finish()
/// };
/// let manifest = dir.join("g.rdfm");
/// save_sharded(&manifest, &vocab, &g, 2).unwrap();
///
/// let store = ShardedReader::open(&manifest)
///     .unwrap()
///     .open_streaming()
///     .unwrap();
/// assert_eq!(store.node_count(), g.node_count());
/// let edges: usize = (0..store.shard_count())
///     .map(|k| store.load_shard(k).unwrap().len())
///     .sum();
/// assert_eq!(edges, g.triple_count());
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct StreamingStore {
    dir: PathBuf,
    manifest: Manifest,
    vocab: Vocab,
    labels: Vec<LabelId>,
    kinds: Vec<LabelKind>,
    recorder: Arc<Recorder>,
}

impl StreamingStore {
    /// Attach an instrumentation recorder: every subsequent
    /// [`StreamingStore::load_shard`] emits a `shard.load` span (shard
    /// index, file bytes — no `crc_us`: checksums were verified once at
    /// open). Prefer [`ShardedReader::open_streaming_traced`], which
    /// also captures the one-time `shard.crc` validation spans.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// The parsed shard directory.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The store's dictionary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Per-node label ids (index = node id), decoded from the global
    /// `NODE` section — the input to the initial labelling partition.
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// Per-node label kinds (index = node id).
    pub fn kinds(&self) -> &[LabelKind] {
        &self.kinds
    }
}

impl ShardColumnsSource for StreamingStore {
    type Error = StoreError;

    fn node_count(&self) -> usize {
        self.labels.len()
    }

    fn shard_count(&self) -> usize {
        self.manifest.shards.len()
    }

    fn load_shard(&self, k: usize) -> Result<ShardColumns, StoreError> {
        let entry = &self.manifest.shards[k];
        let mut sp = self.recorder.span("shard.load");
        sp.field("shard", k);
        let bytes = read_shard_file(&self.dir, entry)?;
        sp.field("bytes", bytes.len());
        // No checksum pass here: open_streaming() validated this file
        // (whole-file CRC + section CRCs) exactly once, up front.
        decode_shard_columns(&bytes, k, entry)
            .map_err(|e| wrap_in_shard(entry, e))
    }
}

/// Decode one validated shard file straight into [`ShardColumns`]. The
/// fixed layout feeds its widened columns through
/// [`ShardColumns::from_sorted_iter`] — no intermediate `Vec<Triple>`
/// and no varint work on the streaming hot path.
fn decode_shard_columns(
    bytes: &[u8],
    index: usize,
    entry: &ShardEntry,
) -> Result<ShardColumns, StoreError> {
    // Trusted parse: the streaming open already checksummed this file;
    // the per-round re-parse validates framing and counts only.
    let (body, layout) = shard_trpl_body_with(bytes, index, entry, true)?;
    Ok(match layout {
        Layout::Varint => ShardColumns::from_sorted_triples(&decode_trpl(
            body,
            Some(entry.triples),
            layout,
        )?),
        Layout::Fixed => {
            let [s, p, o] =
                decode_trpl_fixed_cols(body, Some(entry.triples))?;
            ShardColumns::from_sorted_iter(
                s.iter().zip(&p).zip(&o).map(|((&s, &p), &o)| {
                    Triple::new(NodeId(s), NodeId(p), NodeId(o))
                }),
            )
        }
    })
}

/// Parse the `SHRD` directory out of a validated manifest container and
/// cross-check it against the header counts.
fn parse_manifest(c: &Container<'_>) -> Result<Manifest, StoreError> {
    let header = *c.header();
    if header.kind != KIND_MANIFEST {
        return Err(StoreError::WrongContentKind {
            found: header.kind,
            expected: KIND_MANIFEST,
        });
    }
    let shrd = c.section(TAG_SHRD)?;
    let mut pos = 0usize;
    let seed = read_varint(shrd, &mut pos)?;
    let count = read_varint(shrd, &mut pos)?;
    if count == 0 {
        return Err(StoreError::Corrupt(
            "manifest lists zero shards".into(),
        ));
    }
    if count != header.counts[0] {
        return Err(StoreError::Corrupt(format!(
            "shard directory lists {count} shards but header records {}",
            header.counts[0]
        )));
    }
    // >= 3 bytes per entry; never trust the count for allocation.
    let cap = (count as usize).min((shrd.len() - pos) / 3 + 1);
    let mut shards: Vec<ShardEntry> = Vec::with_capacity(cap);
    let mut total: u64 = 0;
    for _ in 0..count {
        let name = crate::dict::read_string(shrd, &mut pos, "shard name")?;
        let triples = read_varint(shrd, &mut pos)?;
        let crc = read_varint_u32(shrd, &mut pos)?;
        // Manifests are untrusted input: a shard name must be a plain
        // file name, never a path — otherwise a crafted manifest could
        // direct reads outside the store directory (or at devices).
        if name.is_empty()
            || name == "."
            || name == ".."
            || name.contains('/')
            || name.contains('\\')
        {
            return Err(StoreError::Corrupt(format!(
                "shard name {name:?} is not a plain file name"
            )));
        }
        if shards.iter().any(|e| e.name == name) {
            return Err(StoreError::Corrupt(format!(
                "duplicate shard entry {name:?} in manifest"
            )));
        }
        total = total.checked_add(triples).ok_or_else(|| {
            StoreError::Corrupt("shard triple counts overflow u64".into())
        })?;
        shards.push(ShardEntry { name, triples, crc });
    }
    match header.layout() {
        // Layout v2 pads every payload to 8; the tail must be zeros.
        Layout::Fixed => check_pad8(shrd, pos, "SHRD section")?,
        Layout::Varint => {
            if pos != shrd.len() {
                return Err(StoreError::Corrupt(format!(
                    "{} trailing bytes after shard directory",
                    shrd.len() - pos
                )));
            }
        }
    }
    if total != header.counts[2] {
        return Err(StoreError::Corrupt(format!(
            "shard directory totals {total} triples but header records {}",
            header.counts[2]
        )));
    }
    Ok(Manifest {
        seed,
        shards,
        nodes: header.counts[1],
        triples: header.counts[2],
    })
}

/// Validate one shard file against its manifest entry and decode its
/// triple run.
fn parse_shard(
    bytes: &[u8],
    index: usize,
    entry: &ShardEntry,
) -> Result<Vec<Triple>, StoreError> {
    check_shard_crc(bytes, entry)?;
    decode_shard(bytes, index, entry)
}

/// Check a shard file's bytes against the whole-file CRC recorded in
/// its manifest entry. Split from [`decode_shard`] so traced loads can
/// time the checksum pass separately from the decode.
fn check_shard_crc(
    bytes: &[u8],
    entry: &ShardEntry,
) -> Result<(), StoreError> {
    let computed = crc32(bytes);
    if computed != entry.crc {
        return Err(StoreError::ShardChecksumMismatch {
            shard: entry.name.clone(),
            stored: entry.crc,
            computed,
        });
    }
    Ok(())
}

/// Parse a CRC-validated shard container and decode its triple run.
/// Any error from inside the container is wrapped in
/// [`StoreError::InShard`] so it names the failing file — a bare
/// section [`StoreError::ChecksumMismatch`] from one of N shards would
/// otherwise leave the operator guessing which file is damaged.
fn decode_shard(
    bytes: &[u8],
    index: usize,
    entry: &ShardEntry,
) -> Result<Vec<Triple>, StoreError> {
    decode_shard_inner(bytes, index, entry)
        .map_err(|e| wrap_in_shard(entry, e))
}

/// Name the failing shard file in an error bubbling out of its
/// container — unless the error already does.
fn wrap_in_shard(entry: &ShardEntry, e: StoreError) -> StoreError {
    match e {
        // These already name the shard file; don't double-wrap.
        e @ (StoreError::InShard { .. }
        | StoreError::ShardChecksumMismatch { .. }
        | StoreError::MissingShard { .. }) => e,
        e => StoreError::InShard {
            shard: entry.name.clone(),
            source: Box::new(e),
        },
    }
}

fn decode_shard_inner(
    bytes: &[u8],
    index: usize,
    entry: &ShardEntry,
) -> Result<Vec<Triple>, StoreError> {
    let (body, layout) = shard_trpl_body(bytes, index, entry)?;
    decode_trpl(body, Some(entry.triples), layout)
}

/// Validate a shard container's framing, kind and index, and return
/// its `TRPL` body plus the layout *this shard file* declares (each
/// shard self-describes; a store may in principle mix layouts).
fn shard_trpl_body<'a>(
    bytes: &'a [u8],
    index: usize,
    entry: &ShardEntry,
) -> Result<(&'a [u8], Layout), StoreError> {
    shard_trpl_body_with(bytes, index, entry, false)
}

/// [`shard_trpl_body`] with a `trusted` switch: a trusted parse skips
/// the section-checksum comparison (for buffers validated earlier in
/// the same run — the streaming engine's per-round re-reads).
fn shard_trpl_body_with<'a>(
    bytes: &'a [u8],
    index: usize,
    entry: &ShardEntry,
    trusted: bool,
) -> Result<(&'a [u8], Layout), StoreError> {
    let c = if trusted {
        Container::parse_trusted(bytes)?
    } else {
        Container::parse(bytes)?
    };
    let header = *c.header();
    if header.kind != KIND_SHARD {
        return Err(StoreError::WrongContentKind {
            found: header.kind,
            expected: KIND_SHARD,
        });
    }
    if header.counts[0] != index as u64 {
        return Err(StoreError::Corrupt(format!(
            "shard {:?} records index {} but the manifest lists it at {index}",
            entry.name, header.counts[0]
        )));
    }
    Ok((c.section(TAG_TRPL)?, header.layout()))
}

/// Either kind of on-disk graph store, resolved by content kind — the
/// one entry point CLI-level code needs (`.rdfb` single files and
/// `.rdfm` manifests are both `RDFB` containers; the kind byte, never
/// the extension, decides).
#[derive(Debug)]
pub enum AnyReader {
    /// A single-file graph store (or archive — kind-checked on decode).
    Single(StoreReader),
    /// A sharded store manifest.
    Sharded(ShardedReader),
}

impl AnyReader {
    /// Decode the graph, whichever layout holds it. `threads` drives
    /// the parallel shard load and is ignored for single files.
    pub fn read_graph(
        &self,
        threads: Threads,
    ) -> Result<(Vocab, RdfGraph), StoreError> {
        match self {
            AnyReader::Single(r) => r.read_graph(),
            AnyReader::Sharded(r) => r.read_graph(threads),
        }
    }

    /// [`AnyReader::read_graph`] with instrumentation — dispatches to
    /// the layout's traced load, so the trace carries `store.open`,
    /// `store.section` and (for sharded stores) `shard.load` spans.
    pub fn read_graph_traced(
        &self,
        threads: Threads,
        rec: &Recorder,
    ) -> Result<(Vocab, RdfGraph), StoreError> {
        match self {
            AnyReader::Single(r) => r.read_graph_traced(rec),
            AnyReader::Sharded(r) => r
                .read_graph_with_info_traced(threads, rec)
                .map(|(_, v, g)| (v, g)),
        }
    }
}

/// Open a store path of either layout: the file's container header is
/// sniffed, and a [`KIND_MANIFEST`] kind yields a sharded reader (shard
/// paths resolving next to the manifest) while anything else yields a
/// single-file reader. A nonexistent path is a typed I/O error; a
/// non-container file is [`StoreError::BadMagic`].
pub fn open_any(path: impl AsRef<Path>) -> Result<AnyReader, StoreError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let header = Container::parse_header(&bytes)?;
    if header.kind == KIND_MANIFEST {
        let dir = path.parent().unwrap_or(Path::new("")).to_path_buf();
        Ok(AnyReader::Sharded(ShardedReader::from_bytes(dir, bytes)))
    } else {
        Ok(AnyReader::Single(StoreReader::from_bytes(bytes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::RdfGraphBuilder;

    fn sample() -> (Vocab, RdfGraph) {
        let mut vocab = Vocab::new();
        let g = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uub("ss", "address", "b1");
            b.bul("b1", "zip", "EH8 9AB");
            b.bul("b1", "city", "Edinburgh");
            b.uul("ss", "name", "Sławek");
            b.uuu("ss", "employer", "ed-uni");
            b.finish()
        };
        (vocab, g)
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rdf-sharded-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8, 255] {
            for s in 0u32..200 {
                let k = shard_of(DEFAULT_SHARD_SEED, NodeId(s), shards);
                assert!(k < shards);
                assert_eq!(
                    k,
                    shard_of(DEFAULT_SHARD_SEED, NodeId(s), shards)
                );
            }
        }
        // Different seeds really do move subjects around (not a
        // constant function).
        let spread: Vec<usize> = (0..64)
            .map(|s| shard_of(1, NodeId(s), 8))
            .collect();
        assert!(spread.iter().any(|&k| k != spread[0]));
    }

    #[test]
    fn write_produces_manifest_plus_named_shards() {
        let dir = tmp("layout");
        let (vocab, g) = sample();
        let manifest = dir.join("v1.rdfm");
        let paths = save_sharded(&manifest, &vocab, &g, 3).unwrap();
        assert_eq!(paths.len(), 4);
        assert_eq!(paths[0], manifest);
        for (k, p) in paths[1..].iter().enumerate() {
            assert_eq!(
                p.file_name().unwrap().to_str().unwrap(),
                format!("v1-shard-{k}.rdfb")
            );
            assert!(p.exists());
        }
        let m = ShardedReader::open(&manifest).unwrap().manifest().unwrap();
        assert_eq!(m.seed, DEFAULT_SHARD_SEED);
        assert_eq!(m.shards.len(), 3);
        assert_eq!(m.nodes, g.node_count() as u64);
        assert_eq!(m.triples, g.triple_count() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_shards_is_an_error() {
        let dir = tmp("zero");
        let (vocab, g) = sample();
        assert!(matches!(
            save_sharded(dir.join("z.rdfm"), &vocab, &g, 0),
            Err(StoreError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_any_resolves_each_layout_and_errors_on_absence() {
        let dir = tmp("openany");
        let (vocab, g) = sample();
        let single = dir.join("g.rdfb");
        crate::save_graph(&single, &vocab, &g).unwrap();
        let manifest = dir.join("g.rdfm");
        save_sharded(&manifest, &vocab, &g, 2).unwrap();

        let a = open_any(&single).unwrap();
        assert!(matches!(a, AnyReader::Single(_)));
        let (_, g1) = a.read_graph(Threads::Fixed(1)).unwrap();
        let b = open_any(&manifest).unwrap();
        assert!(matches!(b, AnyReader::Sharded(_)));
        let (_, g2) = b.read_graph(Threads::Fixed(2)).unwrap();
        assert_eq!(g1.graph().triples(), g2.graph().triples());

        match open_any(dir.join("absent.rdfm")) {
            Err(StoreError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::NotFound)
            }
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
        // Not a container at all.
        let nt = dir.join("x.nt");
        std::fs::write(&nt, "<u:s> <u:p> <u:o> .\n").unwrap();
        assert!(matches!(
            open_any(&nt),
            Err(StoreError::BadMagic { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_decode_errors_name_the_failing_file() {
        let (vocab, g) = sample();
        // A valid container of the wrong kind, with a matching
        // whole-file CRC: the failure happens *inside* the shard parse,
        // which must wrap it with the file name.
        let bytes = crate::graph_to_bytes(&vocab, &g).unwrap();
        let entry = ShardEntry {
            name: "v-shard-0.rdfb".into(),
            triples: g.triple_count() as u64,
            crc: crc32(&bytes),
        };
        match parse_shard(&bytes, 0, &entry) {
            Err(StoreError::InShard { shard, source }) => {
                assert_eq!(shard, "v-shard-0.rdfb");
                assert!(matches!(
                    *source,
                    StoreError::WrongContentKind { .. }
                ));
            }
            other => {
                panic!("expected InShard(WrongContentKind), got {other:?}")
            }
        }
        // A whole-file CRC mismatch already names the shard — it must
        // stay the dedicated variant, not get double-wrapped.
        let bad = ShardEntry {
            crc: entry.crc ^ 1,
            ..entry
        };
        assert!(matches!(
            parse_shard(&bytes, 0, &bad),
            Err(StoreError::ShardChecksumMismatch { .. })
        ));
    }

    #[test]
    fn traced_sharded_load_is_identical_and_counts_spans() {
        let dir = tmp("traced");
        let (vocab, g) = sample();
        let manifest = dir.join("t.rdfm");
        save_sharded(&manifest, &vocab, &g, 3).unwrap();
        let reader = ShardedReader::open(&manifest).unwrap();
        let (_, g1) = reader.read_graph(Threads::Fixed(2)).unwrap();

        let rec =
            Recorder::jsonl_writer(Box::new(std::io::sink()));
        let (_, _, g2) = reader
            .read_graph_with_info_traced(Threads::Fixed(2), &rec)
            .unwrap();
        assert_eq!(g1.graph().triples(), g2.graph().triples());
        let report = rec.finish().unwrap().unwrap();
        assert_eq!(report.span("shard.load").unwrap().count, 3);
        assert_eq!(report.span("store.open").unwrap().count, 1);
        assert_eq!(report.span("store.section").unwrap().count, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_validates_shard_crcs_once_per_run_not_per_round() {
        let dir = tmp("crc-once");
        let (vocab, g) = sample();
        let manifest = dir.join("c.rdfm");
        save_sharded(&manifest, &vocab, &g, 3).unwrap();
        let reader = ShardedReader::open(&manifest).unwrap();

        // Shared Vec<u8> sink so the raw JSONL lines can be inspected.
        #[derive(Clone, Default)]
        struct Buf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let rec = Arc::new(Recorder::jsonl_writer(Box::new(buf.clone())));
        let (store, info) =
            reader.open_streaming_traced(Arc::clone(&rec)).unwrap();
        assert_eq!(info.shard_bytes.len(), 3);
        // Simulate a 5-round fixpoint: every round re-reads every
        // shard. The checksum pass must NOT scale with rounds.
        let rounds = 5u64;
        for _ in 0..rounds {
            for k in 0..store.shard_count() {
                store.load_shard(k).unwrap();
            }
        }
        let report = rec.finish().unwrap().unwrap();
        assert_eq!(report.span("shard.crc").unwrap().count, 3);
        assert_eq!(report.span("shard.load").unwrap().count, rounds * 3);
        let text =
            String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        for line in text.lines().filter(|l| l.contains("shard.load")) {
            assert!(
                !line.contains("crc_us"),
                "per-round CRC pass resurfaced: {line}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_streaming_rejects_corrupt_shards_up_front() {
        let dir = tmp("crc-eager");
        let (vocab, g) = sample();
        let manifest = dir.join("e.rdfm");
        let paths = save_sharded(&manifest, &vocab, &g, 2).unwrap();
        // Flip one payload byte in the last shard file: the damage must
        // surface at open_streaming(), before any refinement round.
        let shard_path = paths.last().unwrap();
        let mut bytes = std::fs::read(shard_path).unwrap();
        let mid = bytes.len() - 5;
        bytes[mid] ^= 0xff;
        std::fs::write(shard_path, &bytes).unwrap();
        let err = ShardedReader::open(&manifest)
            .unwrap()
            .open_streaming()
            .unwrap_err();
        assert!(
            matches!(err, StoreError::ShardChecksumMismatch { .. }),
            "expected eager shard CRC failure, got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn info_reports_shard_sizes() {
        let dir = tmp("info");
        let (vocab, g) = sample();
        let manifest = dir.join("v.rdfm");
        save_sharded(&manifest, &vocab, &g, 2).unwrap();
        let info = ShardedReader::open(&manifest).unwrap().info().unwrap();
        assert_eq!(info.manifest.shards.len(), 2);
        assert_eq!(info.shard_bytes.len(), 2);
        assert!(info.total_bytes() > info.manifest_bytes as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
