//! Saving and loading a dictionary-encoded [`TripleGraph`] (`.rdfb`,
//! content kind [`KIND_GRAPH`]).
//!
//! A graph container holds four sections — `DICT` (label dictionary),
//! `NODE` (per-node dictionary ids), `TRPL` (sorted varint-delta
//! triples) and `BNAM` (document-local blank-node names); their exact
//! byte layouts are specified in `docs/FORMAT.md` §3.
//!
//! Labels are remapped to *dense* ids in ascending first-use order before
//! writing, so a store written from a freshly parsed graph has exactly
//! the parse's interning order, and `load(save(parse(text)))` rebuilds a
//! graph byte-identical to `parse(text)` — same node ids, same label ids,
//! same CSR layout — without hashing a single string per node or triple.
//!
//! The section bodies are format primitives shared with the *sharded*
//! layout ([`crate::sharded`]): a manifest carries the same `DICT` /
//! `NODE` / `BNAM` sections once, globally, while each shard file holds
//! a `TRPL` section encoding its subject-partition. The encode/decode
//! helpers below are therefore the single source of truth for both
//! layouts — byte-identical stitching falls out by construction.

use crate::container::{
    Container, ContainerWriter, Header, Layout, KIND_GRAPH, SECTION_OVERHEAD,
};
use crate::dict::{read_dict, read_string, write_dict};
use crate::error::StoreError;
use crate::borrowed::LoadMode;
use crate::fixed::{
    check_pad8, decode_node_fixed, decode_trpl_fixed, encode_node_fixed_into,
    encode_trpl_fixed_into, pad8, parse_fixed_body,
};
use crate::varint::{
    read_varint_u32, read_varint_usize, write_varint,
};
use rdf_model::{
    FxHashMap, LabelId, LabelKind, NodeId, RdfGraph, Triple, TripleGraph,
    Vocab,
};
use rdf_obs::{Recorder, SpanGuard};
use std::io::Write;
use std::path::Path;

pub(crate) const TAG_DICT: [u8; 4] = *b"DICT";
pub(crate) const TAG_NODE: [u8; 4] = *b"NODE";
pub(crate) const TAG_TRPL: [u8; 4] = *b"TRPL";
pub(crate) const TAG_BNAM: [u8; 4] = *b"BNAM";

/// The encoded graph-global section bodies (everything except triples):
/// dictionary, per-node labels, and blank-node names. One instance is
/// written per graph regardless of how many files the triples span.
pub(crate) struct GlobalSections {
    pub dict: Vec<u8>,
    pub node: Vec<u8>,
    pub bnam: Vec<u8>,
    /// Number of dictionary entries (including the implicit blank).
    pub dict_count: u64,
}

/// Encode the `DICT`, `NODE` and `BNAM` bodies for a graph, remapping
/// label ids onto a dense dictionary (0 stays the blank label, the rest
/// keep their relative first-interned order — a graph parsed into a
/// fresh vocab maps identically).
pub(crate) fn encode_global_sections(
    vocab: &Vocab,
    graph: &RdfGraph,
    layout: Layout,
) -> Result<GlobalSections, StoreError> {
    let g = graph.graph();

    let mut used: Vec<LabelId> = g.labels_raw().to_vec();
    used.sort_unstable();
    used.dedup();
    if used.first() != Some(&LabelId::BLANK) {
        used.insert(0, LabelId::BLANK);
    }
    let mut dense = vec![u32::MAX; vocab.len()];
    for (new, old) in used.iter().enumerate() {
        dense[old.index()] = new as u32;
    }

    let mut dict = Vec::new();
    write_dict(&mut dict, vocab, used[1..].iter().copied())?;

    let mut node = Vec::new();
    match layout {
        Layout::Varint => {
            write_varint(&mut node, g.node_count() as u64);
            for &label in g.labels_raw() {
                write_varint(&mut node, u64::from(dense[label.index()]));
            }
        }
        Layout::Fixed => {
            let remapped: Vec<LabelId> = g
                .labels_raw()
                .iter()
                .map(|l| LabelId(dense[l.index()]))
                .collect();
            encode_node_fixed_into(&mut node, &remapped);
        }
    }

    let mut names: Vec<(NodeId, &str)> = graph
        .blank_names()
        .iter()
        .map(|(&n, s)| (n, s.as_str()))
        .collect();
    names.sort_unstable_by_key(|&(n, _)| n);
    let mut bnam = Vec::new();
    write_varint(&mut bnam, names.len() as u64);
    let mut prev = 0u32;
    for (n, name) in names {
        write_varint(&mut bnam, u64::from(n.0 - prev));
        prev = n.0;
        write_varint(&mut bnam, name.len() as u64);
        bnam.extend_from_slice(name.as_bytes());
    }
    if layout == Layout::Fixed {
        // Layout v2's universal rule: every payload is padded to 8.
        pad8(&mut dict);
        pad8(&mut bnam);
    }

    Ok(GlobalSections {
        dict,
        node,
        bnam,
        dict_count: used.len() as u64,
    })
}

/// Encode a `TRPL` body into `out` (cleared first — hot writers hand
/// the same scratch buffer to every call instead of allocating a fresh
/// `Vec` per section). Varint layout: varint count, then varint-deltas
/// over the `(s, p, o)` sequence; fixed layout: three padded columns
/// ([`crate::fixed`]). The input must be sorted ascending (as graph
/// triple lists and their subject-partitioned slices always are).
pub(crate) fn encode_trpl_into(
    out: &mut Vec<u8>,
    triples: &[Triple],
    layout: Layout,
) {
    if layout == Layout::Fixed {
        encode_trpl_fixed_into(out, triples);
        return;
    }
    out.clear();
    write_varint(out, triples.len() as u64);
    let (mut prev_s, mut prev_p, mut prev_o) = (0u32, 0u32, 0u32);
    for t in triples {
        let ds = t.s.0 - prev_s;
        if ds > 0 {
            prev_p = 0;
            prev_o = 0;
        }
        let dp = t.p.0 - prev_p;
        if dp > 0 {
            prev_o = 0;
        }
        let dobj = t.o.0 - prev_o;
        write_varint(out, u64::from(ds));
        write_varint(out, u64::from(dp));
        write_varint(out, u64::from(dobj));
        (prev_s, prev_p, prev_o) = (t.s.0, t.p.0, t.o.0);
    }
}

/// Bounds-check store label ids against the decoded dictionary and
/// derive the per-node kind array. Shared by the varint and fixed
/// `NODE` decoders and the borrowed view path.
pub(crate) fn kinds_for_labels(
    labels: &[LabelId],
    vocab: &Vocab,
) -> Result<Vec<LabelKind>, StoreError> {
    let mut kinds = Vec::with_capacity(labels.len());
    for &label in labels {
        if label.index() >= vocab.len() {
            return Err(StoreError::Corrupt(format!(
                "node label id {} beyond dictionary of {}",
                label.0,
                vocab.len()
            )));
        }
        kinds.push(vocab.kind(label));
    }
    Ok(kinds)
}

/// Decode a `NODE` body into per-node labels + kinds against `vocab`,
/// dispatching on the container layout. With `expected`, the embedded
/// node count must match it exactly.
pub(crate) fn decode_node(
    node: &[u8],
    vocab: &Vocab,
    expected: Option<u64>,
    layout: Layout,
) -> Result<(Vec<LabelId>, Vec<LabelKind>), StoreError> {
    if layout == Layout::Fixed {
        let labels = decode_node_fixed(node, expected)?;
        let kinds = kinds_for_labels(&labels, vocab)?;
        return Ok((labels, kinds));
    }
    let mut pos = 0usize;
    let node_count = read_varint_usize(node, &mut pos)?;
    if let Some(exp) = expected {
        if node_count as u64 != exp {
            return Err(StoreError::Corrupt(format!(
                "node count {node_count} disagrees with header {exp}"
            )));
        }
    }
    // Counts are untrusted: reserve no more than the payload could
    // encode (>= 1 byte per node), however large the claim.
    let cap = node_count.min(node.len() - pos);
    let mut labels = Vec::with_capacity(cap);
    let mut node_kinds = Vec::with_capacity(cap);
    for _ in 0..node_count {
        let id = read_varint_u32(node, &mut pos)?;
        if id as usize >= vocab.len() {
            return Err(StoreError::Corrupt(format!(
                "node label id {id} beyond dictionary of {}",
                vocab.len()
            )));
        }
        let label = LabelId(id);
        labels.push(label);
        node_kinds.push(vocab.kind(label));
    }
    Ok((labels, node_kinds))
}

/// Decode a `TRPL` body into owned triples, dispatching on the
/// container layout (varint delta decode mirrors the writer exactly;
/// the fixed path widens columns with zero varint work). With
/// `expected`, the embedded triple count must match it exactly.
pub(crate) fn decode_trpl(
    trpl: &[u8],
    expected: Option<u64>,
    layout: Layout,
) -> Result<Vec<Triple>, StoreError> {
    if layout == Layout::Fixed {
        return decode_trpl_fixed(trpl, expected);
    }
    let mut pos = 0usize;
    let triple_count = read_varint_usize(trpl, &mut pos)?;
    if let Some(exp) = expected {
        if triple_count as u64 != exp {
            return Err(StoreError::Corrupt(format!(
                "triple count {triple_count} disagrees with header {exp}"
            )));
        }
    }
    // >= 3 bytes per triple, so cap the reservation the same way.
    let mut triples =
        Vec::with_capacity(triple_count.min((trpl.len() - pos) / 3 + 1));
    let (mut s, mut p, mut o) = (0u32, 0u32, 0u32);
    for _ in 0..triple_count {
        let ds = read_varint_u32(trpl, &mut pos)?;
        if ds > 0 {
            p = 0;
            o = 0;
        }
        let dp = read_varint_u32(trpl, &mut pos)?;
        if dp > 0 {
            o = 0;
        }
        let dobj = read_varint_u32(trpl, &mut pos)?;
        s = s.checked_add(ds).ok_or_else(overflow)?;
        p = p.checked_add(dp).ok_or_else(overflow)?;
        o = o.checked_add(dobj).ok_or_else(overflow)?;
        triples.push(Triple::new(NodeId(s), NodeId(p), NodeId(o)));
    }
    Ok(triples)
}

/// Decode a `BNAM` body into the blank-name map; node ids must stay
/// within `node_count`.
pub(crate) fn decode_bnam(
    bnam: &[u8],
    node_count: usize,
    layout: Layout,
) -> Result<FxHashMap<NodeId, String>, StoreError> {
    let mut pos = 0usize;
    let name_count = read_varint_usize(bnam, &mut pos)?;
    let mut blank_names = FxHashMap::default();
    let mut prev = 0u32;
    for i in 0..name_count {
        let delta = read_varint_u32(bnam, &mut pos)?;
        if i > 0 && delta == 0 {
            return Err(StoreError::Corrupt(
                "duplicate blank-name node id".into(),
            ));
        }
        prev = prev.checked_add(delta).ok_or_else(overflow)?;
        if prev as usize >= node_count {
            return Err(StoreError::Corrupt(format!(
                "blank name for node {prev} beyond node count {node_count}"
            )));
        }
        let name = read_string(bnam, &mut pos, "blank-node name")?;
        blank_names.insert(NodeId(prev), name);
    }
    if layout == Layout::Fixed {
        check_pad8(bnam, pos, "BNAM section")?;
    }
    Ok(blank_names)
}

/// Decode a `DICT` body into a fresh vocabulary. With `expected`, the
/// dictionary entry count must match it exactly. In the fixed layout
/// the body keeps its varint encoding but gains the universal pad-to-8
/// tail, which is verified here.
pub(crate) fn decode_dict_checked(
    dict: &[u8],
    expected: Option<u64>,
    layout: Layout,
) -> Result<Vocab, StoreError> {
    let mut pos = 0usize;
    let vocab = read_dict(dict, &mut pos)?;
    if layout == Layout::Fixed {
        check_pad8(dict, pos, "DICT section")?;
    }
    if let Some(exp) = expected {
        if vocab.len() as u64 != exp {
            return Err(StoreError::Corrupt(format!(
                "dictionary count {} disagrees with header {exp}",
                vocab.len()
            )));
        }
    }
    Ok(vocab)
}

/// Writes graph containers to any [`Write`] sink.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    out: W,
}

impl<W: Write> StoreWriter<W> {
    /// Wrap a sink.
    pub fn new(out: W) -> Self {
        StoreWriter { out }
    }

    /// Serialise one graph (with the vocabulary its labels live in) in
    /// the default varint layout and return the sink. Byte-identical to
    /// every earlier release.
    pub fn write_graph(
        self,
        vocab: &Vocab,
        graph: &RdfGraph,
    ) -> Result<W, StoreError> {
        self.write_graph_layout(vocab, graph, Layout::Varint)
    }

    /// Serialise one graph in an explicit section layout
    /// ([`Layout::Varint`] or [`Layout::Fixed`]).
    pub fn write_graph_layout(
        mut self,
        vocab: &Vocab,
        graph: &RdfGraph,
        layout: Layout,
    ) -> Result<W, StoreError> {
        let g = graph.graph();
        let global = encode_global_sections(vocab, graph, layout)?;
        let mut trpl = Vec::new();
        encode_trpl_into(&mut trpl, g.triples(), layout);

        let counts = [
            global.dict_count,
            g.node_count() as u64,
            g.triple_count() as u64,
        ];
        let mut w = ContainerWriter::new();
        w.section(TAG_DICT, global.dict)
            .section(TAG_NODE, global.node)
            .section(TAG_TRPL, trpl)
            .section(TAG_BNAM, global.bnam);
        w.finish_versioned(&mut self.out, layout.version(), KIND_GRAPH, counts)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads graph containers from an in-memory image of the file.
///
/// ```
/// use rdf_model::{RdfGraphBuilder, Vocab};
/// use rdf_store::{graph_to_bytes, StoreReader};
///
/// let mut vocab = Vocab::new();
/// let g = {
///     let mut b = RdfGraphBuilder::new(&mut vocab);
///     b.uub("ss", "address", "b1");
///     b.bul("b1", "zip", "EH8");
///     b.finish()
/// };
/// let bytes = graph_to_bytes(&vocab, &g).unwrap();
///
/// let reader = StoreReader::from_bytes(bytes);
/// let info = reader.info().unwrap();          // header + checksums
/// assert_eq!(info.header.counts[1], g.node_count() as u64);
/// let (vocab2, g2) = reader.read_graph().unwrap();
/// assert_eq!(g2.graph().triples(), g.graph().triples());
/// assert!(vocab2.find_uri("address").is_some());
/// ```
#[derive(Debug)]
pub struct StoreReader {
    bytes: Vec<u8>,
}

/// Summary of a container, as shown by `rdf info`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// Parsed fixed header.
    pub header: Header,
    /// Section body layout the header version selects.
    pub layout: Layout,
    /// The [`LoadMode`] a borrowed view of this container would use for
    /// its id columns: `decode` for varint stores, `borrow`/`widen` for
    /// fixed stores depending on the `TRPL` column width (meaningful
    /// for graph-bearing kinds only).
    pub mode: LoadMode,
    /// Byte width of the fixed `TRPL` columns (`None` for varint
    /// stores or non-graph kinds). Lets callers render `widen
    /// (width N)` instead of a bare `widen`.
    pub trpl_width: Option<u8>,
    /// Total file size in bytes.
    pub file_bytes: usize,
    /// `(tag, payload bytes)` per section, in file order. Present only
    /// after full validation — every listed section passed its checksum.
    pub sections: Vec<(String, usize)>,
}

impl StoreReader {
    /// Read a container file fully into memory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(StoreReader {
            bytes: std::fs::read(path)?,
        })
    }

    /// Wrap an already-loaded byte buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        StoreReader { bytes }
    }

    /// Validate the whole container (header, framing, checksums) and
    /// summarise it. Works for any content kind.
    pub fn info(&self) -> Result<StoreInfo, StoreError> {
        let c = Container::parse(&self.bytes)?;
        let layout = c.header().layout();
        let (mode, trpl_width) = match layout {
            Layout::Varint => (LoadMode::Decode, None),
            Layout::Fixed => {
                let width = c.section(TAG_TRPL).ok().and_then(|b| {
                    parse_fixed_body(b, 3, None, "fixed TRPL section")
                        .ok()
                        .map(|fb| fb.width)
                });
                let mode = match width {
                    Some(4) if cfg!(target_endian = "little") => {
                        LoadMode::Borrow
                    }
                    _ => LoadMode::Widen,
                };
                (mode, width)
            }
        };
        Ok(StoreInfo {
            header: *c.header(),
            layout,
            mode,
            trpl_width,
            file_bytes: self.bytes.len(),
            sections: c
                .sections()
                .iter()
                .map(|(tag, p)| {
                    (
                        String::from_utf8_lossy(tag).into_owned(),
                        p.len() + SECTION_OVERHEAD,
                    )
                })
                .collect(),
        })
    }

    /// Decode the graph and its dictionary.
    ///
    /// The returned [`Vocab`] contains exactly the store's dictionary
    /// (dense ids, blank label at 0); the graph's label ids index it
    /// directly. No string is hashed per node or triple — only the one
    /// pass that rebuilds the vocabulary's intern maps from the
    /// dictionary.
    pub fn read_graph(&self) -> Result<(Vocab, RdfGraph), StoreError> {
        self.read_graph_traced(&Recorder::disabled())
    }

    /// [`StoreReader::read_graph`] with instrumentation: emits one
    /// `store.open` span covering the container parse (framing plus
    /// every section CRC) and one `store.section` span per decoded
    /// section body. The decoded graph is byte-identical to the
    /// untraced load — tracing is a pure side channel.
    pub fn read_graph_traced(
        &self,
        rec: &Recorder,
    ) -> Result<(Vocab, RdfGraph), StoreError> {
        let mut open = rec.span("store.open");
        open.field("bytes", self.bytes.len());
        let c = Container::parse(&self.bytes)?;
        let layout = c.header().layout();
        open.field("layout", layout.to_string());
        drop(open);
        let header = *c.header();
        if header.kind != KIND_GRAPH {
            return Err(StoreError::WrongContentKind {
                found: header.kind,
                expected: KIND_GRAPH,
            });
        }

        let dict_body = c.section(TAG_DICT)?;
        let vocab = {
            let _sp = section_span(rec, "DICT", dict_body.len(), layout);
            decode_dict_checked(dict_body, Some(header.counts[0]), layout)?
        };
        let node_body = c.section(TAG_NODE)?;
        let (labels, node_kinds) = {
            let _sp = section_span(rec, "NODE", node_body.len(), layout);
            decode_node(node_body, &vocab, Some(header.counts[1]), layout)?
        };
        let node_count = labels.len();
        let trpl_body = c.section(TAG_TRPL)?;
        let triples = {
            let _sp = section_span(rec, "TRPL", trpl_body.len(), layout);
            decode_trpl(trpl_body, Some(header.counts[2]), layout)?
        };
        let triple_count = triples.len();
        let graph = TripleGraph::from_raw_parts(labels, node_kinds, triples)
            .map_err(|e| StoreError::Corrupt(e.to_string()))?;
        if graph.triple_count() != triple_count {
            return Err(StoreError::Corrupt(
                "duplicate triples in store".into(),
            ));
        }
        let bnam_body = c.section(TAG_BNAM)?;
        let blank_names = {
            let _sp = section_span(rec, "BNAM", bnam_body.len(), layout);
            decode_bnam(bnam_body, node_count, layout)?
        };
        Ok((vocab, RdfGraph::from_raw_parts(graph, blank_names)))
    }
}

/// A `store.section` span tagged with the section name, body size and
/// container layout. Shared by the single-file and manifest traced
/// loads.
pub(crate) fn section_span<'a>(
    rec: &'a Recorder,
    section: &'static str,
    bytes: usize,
    layout: Layout,
) -> SpanGuard<'a> {
    let mut sp = rec.span("store.section");
    sp.field("section", section);
    sp.field("bytes", bytes);
    sp.field("layout", layout.to_string());
    sp
}

pub(crate) fn overflow() -> StoreError {
    StoreError::Corrupt("id delta overflows u32".into())
}

/// Save a graph to a `.rdfb` file (varint layout).
pub fn save_graph(
    path: impl AsRef<Path>,
    vocab: &Vocab,
    graph: &RdfGraph,
) -> Result<(), StoreError> {
    save_graph_layout(path, vocab, graph, Layout::Varint)
}

/// Save a graph to a `.rdfb` file in an explicit section layout.
pub fn save_graph_layout(
    path: impl AsRef<Path>,
    vocab: &Vocab,
    graph: &RdfGraph,
    layout: Layout,
) -> Result<(), StoreError> {
    let file = std::fs::File::create(path)?;
    StoreWriter::new(std::io::BufWriter::new(file))
        .write_graph_layout(vocab, graph, layout)?;
    Ok(())
}

/// Load a graph from a `.rdfb` file.
pub fn load_graph(
    path: impl AsRef<Path>,
) -> Result<(Vocab, RdfGraph), StoreError> {
    StoreReader::open(path)?.read_graph()
}

/// Serialise a graph container into a byte vector (varint layout).
pub fn graph_to_bytes(
    vocab: &Vocab,
    graph: &RdfGraph,
) -> Result<Vec<u8>, StoreError> {
    StoreWriter::new(Vec::new()).write_graph(vocab, graph)
}

/// Serialise a graph container into a byte vector in an explicit
/// section layout.
pub fn graph_to_bytes_layout(
    vocab: &Vocab,
    graph: &RdfGraph,
    layout: Layout,
) -> Result<Vec<u8>, StoreError> {
    StoreWriter::new(Vec::new()).write_graph_layout(vocab, graph, layout)
}
