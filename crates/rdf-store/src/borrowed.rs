//! [`BorrowedStoreReader`]: serve a graph *view* out of a store buffer
//! without materialising owned triple vectors.
//!
//! This is the read side of the zero-copy load path: a [`StoreBuf`]
//! (mapped file or aligned owned buffer) is parsed in place, and the
//! `NODE`/`TRPL` columns of a fixed-layout (v2) store are handed out
//! as [`rdf_model::TripleGraphView`] columns that **borrow the file
//! bytes** whenever they are 4 bytes wide on a little-endian host —
//! narrower columns are widened into owned vectors, still with zero
//! varint work. Varint (v1) stores are served through the same API by
//! decoding into owned columns, so callers (`rdf info --bisim`) need
//! one code path for both layouts.
//!
//! The view borrows from the reader, which the borrow checker turns
//! into the safety property that matters: a view can never outlive the
//! buffer (mapping) backing it. See the compile-fail example on
//! [`BorrowedStoreReader`].

use crate::container::{Container, Layout, KIND_GRAPH};
use crate::error::StoreError;
use crate::fixed::{fixed_column, parse_fixed_body, widen_column};
use crate::graph_store::{
    decode_dict_checked, decode_node, decode_trpl, kinds_for_labels,
    section_span, TAG_DICT, TAG_NODE, TAG_TRPL,
};
use crate::mmap::StoreBuf;
use rdf_model::{
    label_ids_from_le_bytes, node_ids_from_le_bytes, LabelId, NodeId,
    TripleGraphView, Vocab,
};
use rdf_obs::Recorder;
use std::borrow::Cow;
use std::path::Path;

/// How a reader materialised a store's id columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Fixed layout, 4-byte columns served as slices of the buffer.
    Borrow,
    /// Fixed layout, 1/2-byte columns widened to owned `u32`s (no
    /// varint work).
    Widen,
    /// Varint layout, full delta decode into owned columns.
    Decode,
}

impl std::fmt::Display for LoadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LoadMode::Borrow => "borrow",
            LoadMode::Widen => "widen",
            LoadMode::Decode => "decode",
        })
    }
}

/// A graph store opened over a [`StoreBuf`] for borrowed (zero-copy)
/// views.
///
/// ```
/// use rdf_model::{RdfGraphBuilder, Vocab};
/// use rdf_store::{
///     graph_to_bytes_layout, BorrowedStoreReader, Layout, StoreBuf,
/// };
///
/// let mut vocab = Vocab::new();
/// let g = {
///     let mut b = RdfGraphBuilder::new(&mut vocab);
///     b.uub("ss", "address", "b1");
///     b.bul("b1", "zip", "EH8");
///     b.finish()
/// };
/// let bytes = graph_to_bytes_layout(&vocab, &g, Layout::Fixed).unwrap();
/// let reader = BorrowedStoreReader::from_buf(StoreBuf::from_bytes(&bytes));
/// let (vocab2, view) = reader.read_view().unwrap();
/// assert_eq!(view.triple_count(), g.triple_count());
/// assert_eq!(view.labels(), g.graph().labels_raw());
/// assert!(vocab2.find_uri("address").is_some());
/// ```
///
/// A view cannot outlive its reader (and thus its mapping) — this does
/// not compile:
///
/// ```compile_fail
/// use rdf_store::{BorrowedStoreReader, StoreBuf};
///
/// let reader = BorrowedStoreReader::from_buf(StoreBuf::from_bytes(&[]));
/// let view = reader.read_view();
/// drop(reader); // error: `reader` is still borrowed by `view`
/// let _ = view;
/// ```
#[derive(Debug)]
pub struct BorrowedStoreReader {
    buf: StoreBuf,
}

impl BorrowedStoreReader {
    /// Open a store file as a buffer (mapped when possible).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(BorrowedStoreReader {
            buf: StoreBuf::open(path)?,
        })
    }

    /// Wrap an existing buffer.
    pub fn from_buf(buf: StoreBuf) -> Self {
        BorrowedStoreReader { buf }
    }

    /// The underlying buffer.
    pub fn buf(&self) -> &StoreBuf {
        &self.buf
    }

    /// Decode the dictionary and serve the graph as a view whose
    /// columns borrow from the buffer when the layout allows it.
    pub fn read_view(
        &self,
    ) -> Result<(Vocab, TripleGraphView<'_>), StoreError> {
        self.read_view_traced(&Recorder::disabled())
    }

    /// [`BorrowedStoreReader::read_view`] with instrumentation: one
    /// `store.open` span (bytes, layout) plus one `store.section` span
    /// per section touched (`DICT`, `NODE`, `TRPL` — a view never
    /// decodes `BNAM`). The view is identical to the untraced one.
    pub fn read_view_traced(
        &self,
        rec: &Recorder,
    ) -> Result<(Vocab, TripleGraphView<'_>), StoreError> {
        let bytes = self.buf.as_slice();
        let mut open = rec.span("store.open");
        open.field("bytes", bytes.len());
        let c = Container::parse(bytes)?;
        let layout = c.header().layout();
        open.field("layout", layout.to_string());
        drop(open);
        let header = *c.header();
        if header.kind != KIND_GRAPH {
            return Err(StoreError::WrongContentKind {
                found: header.kind,
                expected: KIND_GRAPH,
            });
        }

        let dict_body = c.section(TAG_DICT)?;
        let vocab = {
            let _sp = section_span(rec, "DICT", dict_body.len(), layout);
            decode_dict_checked(dict_body, Some(header.counts[0]), layout)?
        };

        let node_body = c.section(TAG_NODE)?;
        let labels: Cow<'_, [LabelId]> = {
            let _sp = section_span(rec, "NODE", node_body.len(), layout);
            match layout {
                Layout::Varint => Cow::Owned(
                    decode_node(
                        node_body,
                        &vocab,
                        Some(header.counts[1]),
                        layout,
                    )?
                    .0,
                ),
                Layout::Fixed => {
                    let fb = parse_fixed_body(
                        node_body,
                        1,
                        Some(header.counts[1]),
                        "fixed NODE section",
                    )?;
                    let col = fixed_column(node_body, &fb, 0);
                    match label_ids_from_le_bytes(col) {
                        Some(ids) if fb.width == 4 => Cow::Borrowed(ids),
                        _ => {
                            rec.counter("store.widen").add(1);
                            Cow::Owned(
                                widen_column(col, fb.width)
                                    .into_iter()
                                    .map(LabelId)
                                    .collect(),
                            )
                        }
                    }
                }
            }
        };
        let kinds = kinds_for_labels(&labels, &vocab)?;

        let trpl_body = c.section(TAG_TRPL)?;
        let (s, p, o) = {
            let _sp = section_span(rec, "TRPL", trpl_body.len(), layout);
            match layout {
                Layout::Varint => {
                    let triples = decode_trpl(
                        trpl_body,
                        Some(header.counts[2]),
                        layout,
                    )?;
                    let s: Vec<NodeId> =
                        triples.iter().map(|t| t.s).collect();
                    let p: Vec<NodeId> =
                        triples.iter().map(|t| t.p).collect();
                    let o: Vec<NodeId> =
                        triples.iter().map(|t| t.o).collect();
                    (Cow::Owned(s), Cow::Owned(p), Cow::Owned(o))
                }
                Layout::Fixed => {
                    let fb = parse_fixed_body(
                        trpl_body,
                        3,
                        Some(header.counts[2]),
                        "fixed TRPL section",
                    )?;
                    let mut cols = (0..3).map(|i| {
                        let col = fixed_column(trpl_body, &fb, i);
                        match node_ids_from_le_bytes(col) {
                            Some(ids) if fb.width == 4 => {
                                Cow::Borrowed(ids)
                            }
                            _ => {
                                rec.counter("store.widen").add(1);
                                Cow::Owned(
                                    widen_column(col, fb.width)
                                        .into_iter()
                                        .map(NodeId)
                                        .collect::<Vec<_>>(),
                                )
                            }
                        }
                    });
                    let (s, p, o) = (
                        cols.next().unwrap(),
                        cols.next().unwrap(),
                        cols.next().unwrap(),
                    );
                    (s, p, o)
                }
            }
        };

        let view =
            TripleGraphView::from_sorted_columns(labels, kinds, s, p, o)
                .map_err(|e| StoreError::Corrupt(e.to_string()))?;
        Ok((vocab, view))
    }

    /// The [`LoadMode`] a `read_view` of this store used: `decode` for
    /// varint stores, `borrow`/`widen` for fixed stores depending on
    /// whether every triple column could be served from the buffer.
    pub fn load_mode(
        layout: Layout,
        view: &TripleGraphView<'_>,
    ) -> LoadMode {
        match layout {
            Layout::Varint => LoadMode::Decode,
            Layout::Fixed if view.columns_borrowed() => LoadMode::Borrow,
            Layout::Fixed => LoadMode::Widen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_store::graph_to_bytes_layout;
    use rdf_model::RdfGraphBuilder;

    fn sample() -> (Vocab, rdf_model::RdfGraph) {
        let mut vocab = Vocab::new();
        let g = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uub("ss", "address", "b1");
            b.bul("b1", "zip", "EH8 9AB");
            b.bul("b1", "city", "Edinburgh");
            b.uul("ss", "name", "Sławek");
            b.uuu("ss", "employer", "ed-uni");
            b.finish()
        };
        (vocab, g)
    }

    #[test]
    fn view_matches_owned_load_both_layouts() {
        let (vocab, g) = sample();
        for layout in [Layout::Varint, Layout::Fixed] {
            let bytes = graph_to_bytes_layout(&vocab, &g, layout).unwrap();
            let reader =
                BorrowedStoreReader::from_buf(StoreBuf::from_bytes(&bytes));
            let (v2, view) = reader.read_view().unwrap();
            assert_eq!(view.node_count(), g.node_count());
            assert_eq!(view.triple_count(), g.triple_count());
            assert_eq!(view.labels(), g.graph().labels_raw());
            assert_eq!(view.kinds(), g.graph().kinds_raw());
            let back = view.to_graph();
            assert_eq!(back.triples(), g.graph().triples());
            assert_eq!(v2.len(), {
                let (owned_v, _) =
                    crate::StoreReader::from_bytes(bytes.clone())
                        .read_graph()
                        .unwrap();
                owned_v.len()
            });
            // Small ids -> width 1/2 -> widen (never borrow) for fixed.
            let mode = BorrowedStoreReader::load_mode(layout, &view);
            match layout {
                Layout::Varint => assert_eq!(mode, LoadMode::Decode),
                Layout::Fixed => assert_eq!(mode, LoadMode::Widen),
            }
        }
    }

    #[test]
    fn wide_store_borrows_columns_zero_copy() {
        // > 65535 node ids forces width 4, the borrowable width. Build
        // a chain graph with ~70k nodes through the raw builder.
        let mut vocab = Vocab::new();
        let g = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            for i in 0..70_000u32 {
                b.uuu(
                    &format!("n{i}"),
                    "next",
                    &format!("n{}", (i + 1) % 70_000),
                );
            }
            b.finish()
        };
        let bytes =
            graph_to_bytes_layout(&vocab, &g, Layout::Fixed).unwrap();
        let reader =
            BorrowedStoreReader::from_buf(StoreBuf::from_bytes(&bytes));
        let (_, view) = reader.read_view().unwrap();
        assert!(
            view.columns_borrowed(),
            "width-4 LE columns must borrow from the buffer"
        );
        assert_eq!(
            BorrowedStoreReader::load_mode(Layout::Fixed, &view),
            LoadMode::Borrow
        );
        assert_eq!(view.to_graph().triples(), g.graph().triples());
        // Borrowed columns keep almost nothing resident: well under the
        // 12 bytes/triple the owned triple vector alone would cost.
        assert!(
            view.resident_bytes() < 6 * view.triple_count(),
            "resident {} for {} triples",
            view.resident_bytes(),
            view.triple_count()
        );
    }

    #[test]
    fn mode_strings() {
        assert_eq!(LoadMode::Borrow.to_string(), "borrow");
        assert_eq!(LoadMode::Widen.to_string(), "widen");
        assert_eq!(LoadMode::Decode.to_string(), "decode");
    }

    #[test]
    fn wrong_kind_rejected() {
        let (vocab, g) = sample();
        let dir = std::env::temp_dir().join(format!(
            "rdf-borrowed-kind-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("m.rdfm");
        crate::save_sharded(&manifest, &vocab, &g, 2).unwrap();
        let reader = BorrowedStoreReader::open(&manifest).unwrap();
        assert!(matches!(
            reader.read_view(),
            Err(StoreError::WrongContentKind { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
