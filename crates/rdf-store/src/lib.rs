//! Persistent dictionary-encoded graph store — the `.rdfb` container.
//!
//! The alignment pipeline's inputs are N-Triples dumps that, before this
//! crate, were re-tokenised on every run. Following the I/O-efficient
//! bisimulation literature (Luo et al., Hellings et al.), the enabling
//! step for big-graph work is a compact binary representation that loads
//! without re-parsing: a deduplicated label dictionary plus the CSR
//! triple arrays, varint-delta encoded, each section protected by a
//! CRC-32 so corruption fails loudly.
//!
//! * [`StoreWriter`] / [`save_graph`] — serialise a graph + vocabulary;
//! * [`StoreReader`] / [`load_graph`] — reconstruct them with **zero
//!   per-triple string hashing** (only the dictionary itself is
//!   re-interned, once per distinct label);
//! * [`import_ntriples`] — stream N-Triples from any `BufRead` into a
//!   store without materialising the document;
//! * [`sharded`] — the sharded layout: a `.rdfm` manifest (global
//!   dictionary + shard directory) plus N subject-hash-partitioned
//!   `.rdfb` shard files, loaded concurrently and stitched
//!   bit-identically to the single-file load ([`save_sharded`],
//!   [`ShardedReader`], [`open_any`]);
//! * [`container`] — the generic section framing, reused by
//!   `rdf-archive` for persistent archives.
//!
//! The byte-level layout of every container kind — header, section
//! framing, `DICT`/`NODE`/`TRPL`/`BNAM`/`SHRD` bodies, varint and CRC
//! rules, and the `shard_of` subject hash — is specified normatively
//! in **`docs/FORMAT.md`** at the repository root; module comments
//! here only summarise it.
//!
//! ```
//! use rdf_model::{RdfGraphBuilder, Vocab};
//! use rdf_store::{graph_to_bytes, StoreReader};
//!
//! let mut vocab = Vocab::new();
//! let g = {
//!     let mut b = RdfGraphBuilder::new(&mut vocab);
//!     b.uub("ss", "address", "b1");
//!     b.bul("b1", "zip", "EH8");
//!     b.finish()
//! };
//! let bytes = graph_to_bytes(&vocab, &g).unwrap();
//! let (vocab2, g2) = StoreReader::from_bytes(bytes).read_graph().unwrap();
//! assert_eq!(g2.triple_count(), g.triple_count());
//! assert_eq!(vocab2.find_uri("address").is_some(), true);
//! ```

#![deny(missing_docs)]

pub mod borrowed;
pub mod checksum;
pub mod container;
pub mod dict;
pub mod error;
pub mod fixed;
pub mod graph_store;
pub mod import;
pub mod mmap;
pub mod sharded;
pub mod varint;

pub use borrowed::{BorrowedStoreReader, LoadMode};
pub use container::{
    Container, ContainerWriter, Header, Layout, FORMAT_VERSION,
    FORMAT_VERSION_FIXED, KIND_ARCHIVE, KIND_GRAPH, KIND_MANIFEST,
    KIND_SHARD, MAGIC, MAX_FORMAT_VERSION,
};
pub use error::StoreError;
pub use graph_store::{
    graph_to_bytes, graph_to_bytes_layout, load_graph, save_graph,
    save_graph_layout, StoreInfo, StoreReader, StoreWriter,
};
pub use import::{import_ntriples, import_ntriples_layout, ImportError};
pub use mmap::StoreBuf;
pub use sharded::{
    open_any, save_sharded, save_sharded_layout, shard_of, AnyReader,
    Manifest, ShardEntry, ShardedInfo, ShardedReader, ShardedWriter,
    StreamingStore, DEFAULT_SHARD_SEED, TAG_SHRD,
};
