//! LEB128 variable-length integers, little-endian base-128.
//!
//! Every multi-byte quantity in the `.rdfb` container body is a varint;
//! deltas between sorted ids shrink to one byte almost everywhere, which
//! is where the dictionary-encoded store gets its compactness.

use crate::error::StoreError;

/// Append `value` to `out` as an LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(StoreError::Truncated {
            what: "varint",
        })?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(StoreError::Corrupt("varint overflows 64 bits".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Read a varint and narrow it to `u32`.
pub fn read_varint_u32(buf: &[u8], pos: &mut usize) -> Result<u32, StoreError> {
    let v = read_varint(buf, pos)?;
    u32::try_from(v)
        .map_err(|_| StoreError::Corrupt(format!("value {v} exceeds u32")))
}

/// Read a varint and narrow it to `usize`.
pub fn read_varint_usize(
    buf: &[u8],
    pos: &mut usize,
) -> Result<usize, StoreError> {
    let v = read_varint(buf, pos)?;
    usize::try_from(v)
        .map_err(|_| StoreError::Corrupt(format!("value {v} exceeds usize")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 20);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn overlong_encoding_is_an_error() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn u32_narrowing_rejects_wide_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::from(u32::MAX) + 1);
        let mut pos = 0;
        assert!(read_varint_u32(&buf, &mut pos).is_err());
    }
}
