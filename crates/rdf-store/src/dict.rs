//! Shared `DICT`-section encoding: the label dictionary used by both the
//! graph store and the archive container (one format, two content
//! kinds — a change here changes both, by construction).
//!
//! Layout: varint entry count (including the implicit blank label at
//! id 0), then per non-blank entry a kind tag (1 = URI, 2 = literal), a
//! varint byte length, and the UTF-8 text.

use crate::error::StoreError;
use crate::varint::{read_varint_usize, write_varint};
use rdf_model::{LabelId, LabelKind, Vocab};

/// Append a dictionary section body for the given label ids (the blank
/// label is implicit and must not be among `ids`).
pub fn write_dict(
    out: &mut Vec<u8>,
    vocab: &Vocab,
    ids: impl ExactSizeIterator<Item = LabelId>,
) -> Result<(), StoreError> {
    write_varint(out, ids.len() as u64 + 1);
    for label in ids {
        let kind = match vocab.kind(label) {
            LabelKind::Uri => 1u8,
            LabelKind::Literal => 2u8,
            LabelKind::Blank => {
                return Err(StoreError::Corrupt(
                    "non-zero blank label in dictionary".into(),
                ))
            }
        };
        let text = vocab.text(label);
        out.push(kind);
        write_varint(out, text.len() as u64);
        out.extend_from_slice(text.as_bytes());
    }
    Ok(())
}

/// Decode a dictionary section body into a fresh [`Vocab`] (dense ids,
/// blank at 0). Counts and lengths are untrusted: allocation is capped
/// by the bytes actually present, and all arithmetic is checked.
pub fn read_dict(buf: &[u8], pos: &mut usize) -> Result<Vocab, StoreError> {
    let label_count = read_varint_usize(buf, pos)?;
    if label_count == 0 {
        return Err(StoreError::Corrupt(
            "dictionary must at least hold the blank label".into(),
        ));
    }
    // Each entry occupies >= 2 payload bytes; never reserve more than
    // the payload could possibly hold, however large the count claims.
    let cap = label_count.min(1 + (buf.len() - *pos) / 2);
    let mut kinds = Vec::with_capacity(cap);
    let mut texts = Vec::with_capacity(cap);
    kinds.push(LabelKind::Blank);
    texts.push(String::new());
    for _ in 1..label_count {
        let kind = match buf.get(*pos) {
            Some(1) => LabelKind::Uri,
            Some(2) => LabelKind::Literal,
            Some(k) => {
                return Err(StoreError::Corrupt(format!(
                    "invalid label kind tag {k}"
                )))
            }
            None => {
                return Err(StoreError::Truncated {
                    what: "dictionary entry",
                })
            }
        };
        *pos += 1;
        texts.push(read_string(buf, pos, "dictionary text")?);
        kinds.push(kind);
    }
    Vocab::from_raw_parts(kinds, texts)
        .map_err(|e| StoreError::Corrupt(e.into()))
}

/// Read a varint length-prefixed UTF-8 string with checked bounds.
pub fn read_string(
    buf: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<String, StoreError> {
    let len = read_varint_usize(buf, pos)?;
    let end = pos
        .checked_add(len)
        .ok_or(StoreError::Truncated { what })?;
    let bytes = buf.get(*pos..end).ok_or(StoreError::Truncated { what })?;
    *pos = end;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| StoreError::Corrupt(format!("{what} is not UTF-8")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut vocab = Vocab::new();
        let u = vocab.uri("http://e.org/x");
        let l = vocab.literal("a literal");
        let mut buf = Vec::new();
        write_dict(&mut buf, &vocab, [u, l].into_iter()).unwrap();
        let mut pos = 0;
        let v2 = read_dict(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(v2.len(), 3);
        assert_eq!(v2.find_uri("http://e.org/x"), Some(LabelId(1)));
        assert_eq!(v2.find_literal("a literal"), Some(LabelId(2)));
    }

    #[test]
    fn huge_claimed_count_does_not_allocate() {
        // A 6-byte body claiming 2^60 entries must fail with a typed
        // error, not abort on allocation.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 60);
        buf.push(1);
        let mut pos = 0;
        assert!(matches!(
            read_dict(&buf, &mut pos),
            Err(StoreError::Truncated { .. }) | Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn huge_claimed_string_length_is_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert!(matches!(
            read_string(&buf, &mut pos, "test"),
            Err(StoreError::Truncated { .. })
        ));
    }
}
