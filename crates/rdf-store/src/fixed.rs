//! Fixed-width section bodies (container layout v2).
//!
//! Layout v2 trades a few bytes of padding for *decodability by
//! pointer cast*: `NODE` and `TRPL` bodies are little-endian
//! fixed-width id arrays behind a 16-byte preamble, and **every**
//! section payload (including the still-varint `DICT`/`BNAM`/`SHRD`)
//! is zero-padded to a multiple of 8 bytes. Because the container
//! header is 32 bytes and each section frame 16, every payload then
//! starts 8-aligned within the file image — so a 4-byte-wide column in
//! a mapped or 8-aligned buffer can be served as `&[u32]` without a
//! copy. The normative spec is `docs/FORMAT.md` §7.
//!
//! Body shapes:
//!
//! * fixed `NODE`: `count(u64 LE) · width(u8) · 7 zero bytes`, then one
//!   label-id column (`count × width` bytes, zero-padded to 8);
//! * fixed `TRPL`: same preamble, then **three** columns — subject,
//!   predicate, object — each `count × width` bytes and each
//!   individually zero-padded to 8 (so every column starts 8-aligned).
//!
//! `width` is 1, 2 or 4, chosen by the writer as the *minimal* width
//! holding the largest id in the section ([`width_for`]) — a canonical
//! choice, so equal graphs produce equal bytes. Readers accept any of
//! the three widths. Pad bytes must be zero ([`check_pad8`]); anything
//! else is a typed corruption error.

use crate::error::StoreError;
use rdf_model::{LabelId, NodeId, Triple};

/// Valid fixed-column widths in bytes.
pub const FIXED_WIDTHS: [u8; 3] = [1, 2, 4];

/// Length of the fixed-section preamble (count + width + padding).
pub const FIXED_PREAMBLE: usize = 16;

/// Minimal fixed width (1, 2 or 4 bytes) holding `max_id`.
pub fn width_for(max_id: u32) -> u8 {
    if max_id <= 0xff {
        1
    } else if max_id <= 0xffff {
        2
    } else {
        4
    }
}

/// Zero-pad `buf` to a multiple of 8 bytes (layout v2's universal
/// payload rule).
pub fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

/// Verify the layout-v2 padding rule at the end of a payload: from
/// `pos` to `body.len()` there are at most 7 bytes and all are zero.
pub fn check_pad8(body: &[u8], pos: usize, what: &str) -> Result<(), StoreError> {
    let tail = body.get(pos..).ok_or(StoreError::Truncated {
        what: "section padding",
    })?;
    if tail.len() >= 8 {
        return Err(StoreError::Corrupt(format!(
            "{what}: {} trailing bytes after body (max 7 pad bytes)",
            tail.len()
        )));
    }
    if tail.iter().any(|&b| b != 0) {
        return Err(StoreError::Corrupt(format!(
            "{what}: non-zero padding byte"
        )));
    }
    Ok(())
}

/// Append one id at the given width (LE truncation is lossless by the
/// writer's width choice).
#[inline]
fn push_id(out: &mut Vec<u8>, id: u32, width: u8) {
    match width {
        1 => out.push(id as u8),
        2 => out.extend_from_slice(&(id as u16).to_le_bytes()),
        _ => out.extend_from_slice(&id.to_le_bytes()),
    }
}

/// Write the 16-byte fixed-section preamble.
fn push_preamble(out: &mut Vec<u8>, count: u64, width: u8) {
    out.extend_from_slice(&count.to_le_bytes());
    out.push(width);
    out.extend_from_slice(&[0u8; 7]);
}

/// Encode a fixed `NODE` body (per-node label ids) into `out`
/// (cleared first — callers reuse one scratch buffer across sections).
pub fn encode_node_fixed_into(out: &mut Vec<u8>, labels: &[LabelId]) {
    out.clear();
    let max = labels.iter().map(|l| l.0).max().unwrap_or(0);
    let width = width_for(max);
    push_preamble(out, labels.len() as u64, width);
    for l in labels {
        push_id(out, l.0, width);
    }
    pad8(out);
}

/// Encode a fixed `TRPL` body (three padded columns) into `out`
/// (cleared first). Triples must already be strictly ascending — the
/// in-memory invariant of every graph this crate persists.
pub fn encode_trpl_fixed_into(out: &mut Vec<u8>, triples: &[Triple]) {
    out.clear();
    let max = triples
        .iter()
        .map(|t| t.s.0.max(t.p.0).max(t.o.0))
        .max()
        .unwrap_or(0);
    let width = width_for(max);
    push_preamble(out, triples.len() as u64, width);
    for pick in [
        |t: &Triple| t.s.0,
        |t: &Triple| t.p.0,
        |t: &Triple| t.o.0,
    ] {
        for t in triples {
            push_id(out, pick(t), width);
        }
        pad8(out);
    }
}

/// A parsed fixed-section preamble plus the offsets of its columns.
#[derive(Debug, Clone, Copy)]
pub struct FixedBody {
    /// Number of records (nodes or triples).
    pub count: usize,
    /// Column width in bytes (1, 2 or 4).
    pub width: u8,
    /// Byte length of one column *without* its padding.
    pub col_len: usize,
    /// Byte length of one column *with* its padding to 8.
    pub col_stride: usize,
}

/// Parse and validate the preamble of a fixed `NODE`/`TRPL` body:
/// count fits usize, width ∈ {1, 2, 4}, and the payload holds exactly
/// `columns` padded columns (plus nothing else).
pub fn parse_fixed_body(
    body: &[u8],
    columns: usize,
    expected: Option<u64>,
    what: &str,
) -> Result<FixedBody, StoreError> {
    let head = body.get(..FIXED_PREAMBLE).ok_or(StoreError::Truncated {
        what: "fixed section preamble",
    })?;
    let count = u64::from_le_bytes(head[0..8].try_into().unwrap());
    if let Some(exp) = expected {
        if count != exp {
            return Err(StoreError::Corrupt(format!(
                "{what}: body claims {count} records, header says {exp}"
            )));
        }
    }
    let width = head[8];
    if !FIXED_WIDTHS.contains(&width) {
        return Err(StoreError::Corrupt(format!(
            "{what}: invalid fixed width {width} (must be 1, 2 or 4)"
        )));
    }
    if head[9..].iter().any(|&b| b != 0) {
        return Err(StoreError::Corrupt(format!(
            "{what}: non-zero preamble padding"
        )));
    }
    let count = usize::try_from(count).map_err(|_| {
        StoreError::Corrupt(format!("{what}: record count exceeds usize"))
    })?;
    let col_len = count.checked_mul(width as usize).ok_or_else(|| {
        StoreError::Corrupt(format!("{what}: column length overflows"))
    })?;
    let col_stride = col_len.div_ceil(8) * 8;
    let total = FIXED_PREAMBLE
        .checked_add(col_stride.checked_mul(columns).ok_or_else(|| {
            StoreError::Corrupt(format!("{what}: body length overflows"))
        })?)
        .ok_or_else(|| {
            StoreError::Corrupt(format!("{what}: body length overflows"))
        })?;
    if body.len() < total {
        return Err(StoreError::Truncated {
            what: "fixed section column",
        });
    }
    if body.len() != total {
        return Err(StoreError::Corrupt(format!(
            "{what}: {} trailing bytes after fixed columns",
            body.len() - total
        )));
    }
    // Column pad bytes must be zero, column by column.
    for c in 0..columns {
        let start = FIXED_PREAMBLE + c * col_stride;
        let pad = &body[start + col_len..start + col_stride];
        if pad.iter().any(|&b| b != 0) {
            return Err(StoreError::Corrupt(format!(
                "{what}: non-zero column padding"
            )));
        }
    }
    Ok(FixedBody {
        count,
        width,
        col_len,
        col_stride,
    })
}

/// The raw (unpadded) bytes of column `c` of a parsed fixed body.
#[inline]
pub fn fixed_column<'a>(body: &'a [u8], fb: &FixedBody, c: usize) -> &'a [u8] {
    let start = FIXED_PREAMBLE + c * fb.col_stride;
    &body[start..start + fb.col_len]
}

/// Widen one fixed column into owned `u32`s — the no-varint fallback
/// when a zero-copy borrow is unavailable (width 1/2, misalignment, or
/// a big-endian host).
pub fn widen_column(col: &[u8], width: u8) -> Vec<u32> {
    match width {
        1 => col.iter().map(|&b| b as u32).collect(),
        2 => col
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]) as u32)
            .collect(),
        _ => col
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    }
}

/// Decode a fixed `NODE` body into owned label ids (widening path).
pub fn decode_node_fixed(
    body: &[u8],
    expected: Option<u64>,
) -> Result<Vec<LabelId>, StoreError> {
    let fb = parse_fixed_body(body, 1, expected, "fixed NODE section")?;
    Ok(widen_column(fixed_column(body, &fb, 0), fb.width)
        .into_iter()
        .map(LabelId)
        .collect())
}

/// Decode a fixed `TRPL` body into its three widened `u32` columns —
/// the streaming loader's entry point (it groups the columns into
/// [`rdf_model::ShardColumns`] without an intermediate triple vector).
pub fn decode_trpl_fixed_cols(
    body: &[u8],
    expected: Option<u64>,
) -> Result<[Vec<u32>; 3], StoreError> {
    let fb = parse_fixed_body(body, 3, expected, "fixed TRPL section")?;
    Ok([
        widen_column(fixed_column(body, &fb, 0), fb.width),
        widen_column(fixed_column(body, &fb, 1), fb.width),
        widen_column(fixed_column(body, &fb, 2), fb.width),
    ])
}

/// Decode a fixed `TRPL` body into owned triples (widening path),
/// verifying the strictly-ascending on-disk contract.
pub fn decode_trpl_fixed(
    body: &[u8],
    expected: Option<u64>,
) -> Result<Vec<Triple>, StoreError> {
    let [s, p, o] = decode_trpl_fixed_cols(body, expected)?;
    let count = s.len();
    let mut triples = Vec::with_capacity(count);
    for j in 0..count {
        let t = Triple::new(NodeId(s[j]), NodeId(p[j]), NodeId(o[j]));
        if let Some(prev) = triples.last() {
            if *prev >= t {
                return Err(StoreError::Corrupt(format!(
                    "fixed TRPL section: triples not strictly \
                     ascending at record {j}"
                )));
            }
        }
        triples.push(t);
    }
    Ok(triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), NodeId(p), NodeId(o))
    }

    #[test]
    fn width_is_minimal() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(0xff), 1);
        assert_eq!(width_for(0x100), 2);
        assert_eq!(width_for(0xffff), 2);
        assert_eq!(width_for(0x10000), 4);
        assert_eq!(width_for(u32::MAX), 4);
    }

    #[test]
    fn node_round_trip_all_widths() {
        for max in [5u32, 300, 70_000] {
            let labels: Vec<LabelId> =
                (0..9u32).map(|i| LabelId(i * max / 9)).collect();
            let mut body = Vec::new();
            encode_node_fixed_into(&mut body, &labels);
            assert_eq!(body.len() % 8, 0);
            let back = decode_node_fixed(&body, Some(9)).unwrap();
            assert_eq!(back, labels);
        }
        let mut empty = Vec::new();
        encode_node_fixed_into(&mut empty, &[]);
        assert_eq!(empty.len(), FIXED_PREAMBLE);
        assert_eq!(decode_node_fixed(&empty, Some(0)).unwrap(), vec![]);
    }

    #[test]
    fn trpl_round_trip_all_widths() {
        for max in [9u32, 2_000, 100_000] {
            let triples: Vec<Triple> = (0..7u32)
                .map(|i| t(i * max / 7, (i + 1) % 5, max - i * (max / 7)))
                .collect::<Vec<_>>()
                .into_iter()
                .collect();
            let mut sorted = triples.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let mut body = Vec::new();
            encode_trpl_fixed_into(&mut body, &sorted);
            assert_eq!(body.len() % 8, 0);
            let back =
                decode_trpl_fixed(&body, Some(sorted.len() as u64)).unwrap();
            assert_eq!(back, sorted);
        }
        let mut empty = Vec::new();
        encode_trpl_fixed_into(&mut empty, &[]);
        assert_eq!(decode_trpl_fixed(&empty, Some(0)).unwrap(), vec![]);
    }

    #[test]
    fn scratch_reuse_clears_between_sections() {
        let mut scratch = vec![0xAA; 64];
        encode_node_fixed_into(&mut scratch, &[LabelId(1), LabelId(2)]);
        let first = scratch.clone();
        encode_node_fixed_into(&mut scratch, &[LabelId(1), LabelId(2)]);
        assert_eq!(scratch, first);
    }

    #[test]
    fn corruption_is_typed() {
        let sorted = vec![t(0, 1, 2), t(1, 0, 300)];
        let mut body = Vec::new();
        encode_trpl_fixed_into(&mut body, &sorted);

        // Bad width byte.
        let mut bad = body.clone();
        bad[8] = 3;
        assert!(matches!(
            decode_trpl_fixed(&bad, None),
            Err(StoreError::Corrupt(m)) if m.contains("invalid fixed width")
        ));

        // Truncation mid-record.
        assert!(matches!(
            decode_trpl_fixed(&body[..body.len() - 3], Some(2)),
            Err(StoreError::Truncated { .. }) | Err(StoreError::Corrupt(_))
        ));

        // Count mismatch vs header.
        assert!(matches!(
            decode_trpl_fixed(&body, Some(5)),
            Err(StoreError::Corrupt(m)) if m.contains("header says 5")
        ));

        // Non-zero preamble padding.
        let mut bad = body.clone();
        bad[12] = 1;
        assert!(matches!(
            decode_trpl_fixed(&bad, None),
            Err(StoreError::Corrupt(m)) if m.contains("preamble padding")
        ));

        // Non-zero column padding (width 2, 2 records -> 4 pad bytes).
        let mut bad = body.clone();
        *bad.last_mut().unwrap() = 7;
        assert!(matches!(
            decode_trpl_fixed(&bad, None),
            Err(StoreError::Corrupt(m)) if m.contains("column padding")
        ));

        // Unsorted triples.
        let mut swapped = Vec::new();
        encode_trpl_fixed_into(&mut swapped, &[t(1, 0, 300), t(0, 1, 2)]);
        assert!(matches!(
            decode_trpl_fixed(&swapped, None),
            Err(StoreError::Corrupt(m)) if m.contains("ascending")
        ));

        // Trailing garbage after the columns.
        let mut long = body.clone();
        long.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_trpl_fixed(&long, None),
            Err(StoreError::Corrupt(m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn pad8_and_check_pad8() {
        let mut v = vec![1u8, 2, 3];
        pad8(&mut v);
        assert_eq!(v.len(), 8);
        assert!(check_pad8(&v, 3, "test").is_ok());
        assert!(check_pad8(&v, 0, "test").is_err()); // 8 tail bytes
        v[5] = 9;
        assert!(matches!(
            check_pad8(&v, 3, "test"),
            Err(StoreError::Corrupt(m)) if m.contains("non-zero padding")
        ));
        assert!(check_pad8(&v, 99, "test").is_err());
    }
}
