//! Streaming N-Triples → store ingest: feed the writer straight from any
//! [`BufRead`] without ever materialising the input document as one
//! `String` (the parser holds one line at a time).

use crate::container::Layout;
use crate::error::StoreError;
use crate::graph_store::StoreWriter;
use rdf_model::{RdfGraph, Vocab};
use std::fmt;
use std::io::{BufRead, Write};

/// Error from [`import_ntriples`]: the input failed to parse/read, or the
/// container failed to write.
#[derive(Debug)]
pub enum ImportError {
    /// Reading or parsing the N-Triples input failed.
    Read(rdf_io::ReadError),
    /// Writing the container failed.
    Store(StoreError),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Read(e) => write!(f, "reading N-Triples: {e}"),
            ImportError::Store(e) => write!(f, "writing store: {e}"),
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Read(e) => Some(e),
            ImportError::Store(e) => Some(e),
        }
    }
}

impl From<rdf_io::ReadError> for ImportError {
    fn from(e: rdf_io::ReadError) -> Self {
        ImportError::Read(e)
    }
}

impl From<StoreError> for ImportError {
    fn from(e: StoreError) -> Self {
        ImportError::Store(e)
    }
}

/// Parse N-Triples from `reader` line by line and write the resulting
/// graph as a container to `out`. Returns the parsed vocabulary and graph
/// so callers can report counts without re-reading the store.
pub fn import_ntriples<R: BufRead, W: Write>(
    reader: R,
    out: W,
) -> Result<(Vocab, RdfGraph), ImportError> {
    import_ntriples_layout(reader, out, Layout::default())
}

/// [`import_ntriples`] with an explicit section [`Layout`] for the
/// written container (`Layout::Varint` reproduces the default bytes).
pub fn import_ntriples_layout<R: BufRead, W: Write>(
    reader: R,
    out: W,
    layout: Layout,
) -> Result<(Vocab, RdfGraph), ImportError> {
    let mut vocab = Vocab::new();
    let graph = rdf_io::parse_graph_reader(reader, &mut vocab)?;
    StoreWriter::new(out).write_graph_layout(&vocab, &graph, layout)?;
    Ok((vocab, graph))
}
