//! Typed load/save errors. Corrupt or truncated containers must fail
//! loudly with one of these — never panic, never load garbage.

use std::fmt;

/// Everything that can go wrong writing or (mostly) reading a `.rdfb`
/// container.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `RDFB` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The container's format version is newer than this build supports.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build reads.
        supported: u16,
    },
    /// The container holds a different content kind than requested
    /// (e.g. an archive passed to the graph loader).
    WrongContentKind {
        /// Kind byte found in the header.
        found: u8,
        /// Kind byte expected by the caller.
        expected: u8,
    },
    /// A section payload's CRC-32 does not match its header.
    ChecksumMismatch {
        /// Four-character tag of the failing section.
        section: [u8; 4],
        /// Checksum recorded in the section header.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// The file ends in the middle of a structure.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// A required section is absent.
    MissingSection {
        /// Tag of the missing section.
        section: [u8; 4],
    },
    /// A shard file named by a manifest does not exist on disk.
    MissingShard {
        /// Path of the absent shard file.
        path: String,
    },
    /// A shard file's bytes disagree with the whole-file CRC recorded
    /// in its manifest entry (the file was replaced, reordered or
    /// damaged as a unit — finer-grained damage is caught by the
    /// shard's own section checksums).
    ShardChecksumMismatch {
        /// Shard file name as listed in the manifest.
        shard: String,
        /// CRC recorded in the manifest.
        stored: u32,
        /// CRC computed over the file actually read.
        computed: u32,
    },
    /// An error raised while parsing one shard of a sharded store,
    /// wrapped with the shard's file name. A bare
    /// [`StoreError::ChecksumMismatch`] (say) from deep inside a shard
    /// container would otherwise never name which of the N files
    /// failed.
    InShard {
        /// Shard file name as listed in the manifest.
        shard: String,
        /// The underlying error from parsing that shard.
        source: Box<StoreError>,
    },
    /// Structurally invalid content (bad counts, out-of-range ids,
    /// inconsistent dictionaries, …).
    Corrupt(String),
}

fn tag_str(tag: &[u8; 4]) -> String {
    tag.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                (b as char).to_string()
            } else {
                format!("\\x{b:02x}")
            }
        })
        .collect()
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => write!(
                f,
                "not an RDFB container (magic {:?})",
                tag_str(found)
            ),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "container format version {found} is newer than supported \
                 version {supported}"
            ),
            StoreError::WrongContentKind { found, expected } => write!(
                f,
                "container holds content kind {found}, expected {expected}"
            ),
            StoreError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {:?} checksum mismatch: stored {stored:#010x}, \
                 computed {computed:#010x}",
                tag_str(section)
            ),
            StoreError::Truncated { what } => {
                write!(f, "file truncated while reading {what}")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {:?} missing", tag_str(section))
            }
            StoreError::MissingShard { path } => {
                write!(f, "shard file {path} is missing")
            }
            StoreError::ShardChecksumMismatch {
                shard,
                stored,
                computed,
            } => write!(
                f,
                "shard {shard} checksum mismatch: manifest records \
                 {stored:#010x}, file computes {computed:#010x}"
            ),
            StoreError::InShard { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::InShard { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
