//! [`StoreBuf`]: the byte source of the zero-copy load path — a
//! memory-mapped file when the platform allows it, an 8-aligned owned
//! buffer otherwise.
//!
//! The mapping is std-only: a raw `mmap(2)`/`munmap(2)` syscall pair
//! on Linux x86-64 and aarch64 (no libc crate, nothing to install),
//! and a single `read_to_end`-style fallback everywhere else — so
//! every platform and the CI container keep working, just without
//! page-cache sharing. Setting `RDF_NO_MMAP=1` forces the fallback
//! (used by tests to cover both paths on one machine).
//!
//! Either way the buffer base is at least 8-aligned (pages are
//! page-aligned; the owned fallback stores `u64` words), which is what
//! lets layout-v2 readers serve 4-byte-wide columns as `&[u32]` slices
//! straight from the buffer.

use crate::error::StoreError;
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// Whether the raw-syscall mapping path exists on this target.
const MMAP_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// An owned byte buffer whose base is 8-aligned: `u64` storage viewed
/// as bytes. `Vec<u8>` guarantees only 1-alignment, which would defeat
/// the zero-copy column casts on the read-fallback path.
#[derive(Debug)]
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Read the entire file into an 8-aligned buffer.
    fn read_file(file: &mut File) -> Result<AlignedBuf, StoreError> {
        let hint = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
        let mut words = vec![0u64; hint.div_ceil(8)];
        let mut len = 0usize;
        loop {
            if len == words.len() * 8 {
                words.resize(words.len() + words.len().max(1024) / 2, 0);
            }
            let spare = {
                let total = words.len() * 8;
                // SAFETY: viewing initialised u64 storage as bytes is
                // always valid (alignment only ever decreases).
                #[allow(unsafe_code)]
                let bytes = unsafe {
                    std::slice::from_raw_parts_mut(
                        words.as_mut_ptr().cast::<u8>(),
                        total,
                    )
                };
                &mut bytes[len..]
            };
            match file.read(spare) {
                Ok(0) => break,
                Ok(n) => len += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(StoreError::Io(e)),
            }
        }
        Ok(AlignedBuf { words, len })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: as above — byte view of initialised u64 storage, and
        // `len` never exceeds the allocation (read() wrote that span).
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(
                self.words.as_ptr().cast::<u8>(),
                self.len,
            )
        }
    }
}

/// A read-only mapping created by the raw `mmap` syscall; unmapped on
/// drop.
#[derive(Debug)]
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
struct RawMapping {
    addr: *const u8,
    len: usize,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! The two syscalls, invoked directly so the crate stays std-only.
    use super::RawMapping;
    use std::os::fd::RawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> usize {
        let ret: usize;
        // SAFETY: plain syscall instruction with the kernel's x86-64
        // calling convention; rcx/r11 are kernel-clobbered.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    #[allow(unsafe_code)]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> usize {
        let ret: usize;
        // SAFETY: plain svc with the kernel's aarch64 convention.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                in("x5") a6,
                options(nostack)
            );
        }
        ret
    }

    /// Map `len` bytes of `fd` read-only/private; `None` on failure
    /// (the caller falls back to reading).
    pub(super) fn map(fd: RawFd, len: usize) -> Option<RawMapping> {
        if len == 0 {
            return None;
        }
        // SAFETY: arguments follow the mmap(2) contract; a failure
        // returns a negative errno which we detect and discard.
        #[allow(unsafe_code)]
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                fd as usize,
                0,
            )
        };
        if ret > usize::MAX - 4095 {
            return None; // negative errno
        }
        Some(RawMapping {
            addr: ret as *const u8,
            len,
        })
    }

    pub(super) fn unmap(m: &RawMapping) {
        // SAFETY: addr/len came from a successful mmap of exactly this
        // span; double-unmap is prevented by Drop running once.
        #[allow(unsafe_code)]
        unsafe {
            syscall6(SYS_MUNMAP, m.addr as usize, m.len, 0, 0, 0, 0);
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl RawMapping {
    fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping covers `len` readable bytes for the life
        // of self (unmapped only in Drop). The file is opened
        // read-only by us; concurrent external truncation of a store
        // being read is outside the supported contract (same caveat as
        // any mmap'd reader).
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(self.addr, self.len)
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl Drop for RawMapping {
    fn drop(&mut self) {
        sys::unmap(self);
    }
}

// SAFETY: the mapping is read-only and the raw pointer refers to
// process-global memory not tied to a thread.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
unsafe impl Send for RawMapping {}
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
unsafe impl Sync for RawMapping {}

#[derive(Debug)]
enum BufImpl {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped(RawMapping),
    Owned(AlignedBuf),
}

/// The byte source behind a borrowed store reader: a mapped file or an
/// owned 8-aligned buffer. Graph views produced by
/// [`crate::BorrowedStoreReader`] borrow from this, which is what ties
/// their lifetime to the buffer's (see the compile-fail example on
/// [`crate::BorrowedStoreReader`]).
#[derive(Debug)]
pub struct StoreBuf {
    inner: BufImpl,
}

impl StoreBuf {
    /// Open `path`, mapping it when possible and falling back to one
    /// aligned read otherwise. `RDF_NO_MMAP=1` forces the fallback.
    pub fn open(path: impl AsRef<Path>) -> Result<StoreBuf, StoreError> {
        let mut file = File::open(path)?;
        if MMAP_SUPPORTED
            && std::env::var_os("RDF_NO_MMAP").is_none_or(|v| v != "1")
        {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            {
                use std::os::fd::AsRawFd;
                let len = file.metadata()?.len();
                if let Ok(len) = usize::try_from(len) {
                    if let Some(m) = sys::map(file.as_raw_fd(), len) {
                        return Ok(StoreBuf {
                            inner: BufImpl::Mapped(m),
                        });
                    }
                }
            }
        }
        Ok(StoreBuf {
            inner: BufImpl::Owned(AlignedBuf::read_file(&mut file)?),
        })
    }

    /// Wrap in-memory bytes, copying them into an 8-aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> StoreBuf {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        {
            let n = bytes.len();
            // SAFETY: byte view of initialised u64 storage, same span.
            #[allow(unsafe_code)]
            let dst = unsafe {
                std::slice::from_raw_parts_mut(
                    words.as_mut_ptr().cast::<u8>(),
                    n,
                )
            };
            dst.copy_from_slice(bytes);
        }
        StoreBuf {
            inner: BufImpl::Owned(AlignedBuf {
                words,
                len: bytes.len(),
            }),
        }
    }

    /// The file image.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BufImpl::Mapped(m) => m.as_slice(),
            BufImpl::Owned(b) => b.as_slice(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes come from a memory mapping (false: owned
    /// fallback buffer).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BufImpl::Mapped(_) => true,
            BufImpl::Owned(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rdf-store-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn open_serves_file_bytes_aligned() {
        let path = temp_path("basic");
        let data: Vec<u8> = (0..=255u8).cycle().take(4097).collect();
        File::create(&path).unwrap().write_all(&data).unwrap();
        let buf = StoreBuf::open(&path).unwrap();
        assert_eq!(buf.as_slice(), data.as_slice());
        assert_eq!(buf.len(), data.len());
        assert!(!buf.is_empty());
        assert_eq!(buf.as_slice().as_ptr() as usize % 8, 0, "8-aligned base");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fallback_env_matches_mapped_bytes() {
        let path = temp_path("fallback");
        let data = vec![7u8; 12345];
        File::create(&path).unwrap().write_all(&data).unwrap();
        // Forced fallback must serve identical bytes, also 8-aligned.
        // (Env var is read at open; tests in this process may race on
        // set/remove, so compare against an explicit from_bytes copy.)
        let owned = StoreBuf::from_bytes(&data);
        assert!(!owned.is_mapped());
        assert_eq!(owned.as_slice(), data.as_slice());
        assert_eq!(owned.as_slice().as_ptr() as usize % 8, 0);
        let opened = StoreBuf::open(&path).unwrap();
        assert_eq!(opened.as_slice(), owned.as_slice());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_and_empty_bytes() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let buf = StoreBuf::open(&path).unwrap();
        assert!(buf.is_empty());
        assert!(!buf.is_mapped(), "zero-length files are never mapped");
        let b = StoreBuf::from_bytes(&[]);
        assert_eq!(b.len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            StoreBuf::open(temp_path("missing-definitely")),
            Err(StoreError::Io(_))
        ));
    }
}
