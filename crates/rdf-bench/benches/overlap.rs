//! Overlap-alignment benchmarks: Algorithm 1 (matcher) and Algorithm 2
//! (full alignment) on GtoPdb-like version pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf_align::overlap::{overlap_match, PrefixBound};
use rdf_align::overlap_align::{overlap_align, split_words, OverlapConfig};
use rdf_datagen::{generate_gtopdb, GtopdbConfig};
use rdf_model::{CombinedGraph, NodeId};

fn overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &ligands in &[60usize, 150] {
        let ds = generate_gtopdb(&GtopdbConfig {
            ligands,
            versions: 2,
            ..GtopdbConfig::default()
        });
        let combined = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[0].graph,
            &ds.versions[1].graph,
        );
        let nodes = combined.graph().node_count();
        group.bench_with_input(
            BenchmarkId::new("overlap-align", nodes),
            &combined,
            |b, c| {
                b.iter(|| {
                    overlap_align(c, &ds.vocab, OverlapConfig::default())
                })
            },
        );
    }

    // Algorithm 1 alone on synthetic word sets.
    for &n in &[1000usize, 5000] {
        let a: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let b_nodes: Vec<NodeId> =
            (n as u32..2 * n as u32).map(NodeId).collect();
        let char_a: Vec<Vec<u64>> = (0..n)
            .map(|i| split_words(&format!("entity number {} of cohort {}", i, i % 37)))
            .collect();
        let char_b: Vec<Vec<u64>> = (0..n)
            .map(|i| split_words(&format!("entity number {} of cohort {}", i, i % 37)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("overlap-match", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    overlap_match(
                        &a,
                        &char_a,
                        &b_nodes,
                        &char_b,
                        0.65,
                        |_, _| 0.0,
                        PrefixBound::Safe,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, overlap);
criterion_main!(benches);
