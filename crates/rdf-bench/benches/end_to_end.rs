//! End-to-end pipeline benchmarks per dataset (the Fig 16 measurement,
//! under Criterion's statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf_align::methods::{hybrid_partition, trivial_partition};
use rdf_align::overlap_align::{overlap_align, OverlapConfig};
use rdf_datagen::{
    generate_dbpedia, generate_efo, DbpediaConfig, EfoConfig,
};
use rdf_model::CombinedGraph;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end-to-end");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);

    let efo = generate_efo(&EfoConfig {
        classes: 300,
        versions: 2,
        ..EfoConfig::default()
    });
    let efo_pair = CombinedGraph::union(
        &efo.vocab,
        &efo.versions[0].graph,
        &efo.versions[1].graph,
    );

    let dbp = generate_dbpedia(&DbpediaConfig {
        categories: 300,
        articles: 1200,
        versions: 2,
        ..DbpediaConfig::default()
    });
    let dbp_pair = CombinedGraph::union(
        &dbp.vocab,
        &dbp.versions[0].graph,
        &dbp.versions[1].graph,
    );

    for (name, pair, vocab) in [
        ("efo", &efo_pair, &efo.vocab),
        ("dbpedia", &dbp_pair, &dbp.vocab),
    ] {
        let nodes = pair.graph().node_count();
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/trivial"), nodes),
            pair,
            |b, c| b.iter(|| trivial_partition(c)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/hybrid"), nodes),
            pair,
            |b, c| b.iter(|| hybrid_partition(c)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/overlap"), nodes),
            pair,
            |b, c| {
                b.iter(|| overlap_align(c, vocab, OverlapConfig::default()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
