//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! 1. prefix bound in Algorithm 1: the safe `k − ⌈θk⌉ + 1` vs the
//!    paper-literal `⌈kθ⌉`;
//! 2. σ_NL's rank coupling vs a full Hungarian matching on the same
//!    out-edge weights;
//! 3. overlap alignment vs the σ_Edit matrix at the size where σ_Edit's
//!    quadratic cost takes over;
//! 4. similarity flooding (related-work baseline) at the same size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf_align::methods::hybrid_partition;
use rdf_align::overlap::{overlap_match, PrefixBound};
use rdf_align::overlap_align::{
    overlap_align, sigma_nl, split_words, OverlapConfig,
};
use rdf_align::weighted::WeightedPartition;
use rdf_datagen::{generate_gtopdb, GtopdbConfig};
use rdf_edit::algebra::oplus;
use rdf_edit::flooding::{Flooding, FloodingConfig};
use rdf_edit::hungarian::hungarian_rect;
use rdf_edit::sigma_edit::{SigmaEdit, SigmaEditConfig};
use rdf_model::{CombinedGraph, NodeId};

fn prefix_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/prefix-bound");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let n = 3000usize;
    let a: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let b_nodes: Vec<NodeId> = (n as u32..2 * n as u32).map(NodeId).collect();
    let mk = |i: usize| {
        split_words(&format!(
            "shared common tokens {} plus unique item {}",
            i % 61,
            i
        ))
    };
    let char_a: Vec<Vec<u64>> = (0..n).map(mk).collect();
    let char_b: Vec<Vec<u64>> = (0..n).map(mk).collect();
    for (name, bound) in [
        ("safe", PrefixBound::Safe),
        ("paper-literal", PrefixBound::PaperLiteral),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                overlap_match(
                    &a,
                    &char_a,
                    &b_nodes,
                    &char_b,
                    0.65,
                    |_, _| 0.0,
                    bound,
                )
            })
        });
    }
    group.finish();
}

/// A Hungarian-based σ_NL for comparison with the rank-coupling one.
fn sigma_nl_hungarian(
    g: &rdf_model::TripleGraph,
    xi: &WeightedPartition,
    n: NodeId,
    m: NodeId,
) -> f64 {
    let out_n = g.out(n);
    let out_m = g.out(m);
    let f = out_n.len().max(out_m.len());
    if f == 0 {
        return 0.0;
    }
    if out_n.is_empty() || out_m.is_empty() {
        return 1.0;
    }
    let cost: Vec<Vec<f64>> = out_n
        .iter()
        .map(|&(p1, o1)| {
            out_m
                .iter()
                .map(|&(p2, o2)| {
                    let dp = if xi.color(p1) == xi.color(p2) {
                        oplus(xi.weight(p1), xi.weight(p2))
                    } else {
                        1.0
                    };
                    let dq = if xi.color(o1) == xi.color(o2) {
                        oplus(xi.weight(o1), xi.weight(o2))
                    } else {
                        1.0
                    };
                    oplus(dp, dq)
                })
                .collect()
        })
        .collect();
    let (pairs, cost_sum) = hungarian_rect(&cost);
    let r = (out_n.len() + out_m.len() - 2 * pairs.len()) as f64;
    ((cost_sum + r) / f as f64).min(1.0)
}

fn nl_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/sigma-nl");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let ds = generate_gtopdb(&GtopdbConfig {
        ligands: 100,
        versions: 2,
        ..GtopdbConfig::default()
    });
    let combined = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[1].graph,
    );
    let xi =
        WeightedPartition::zero(hybrid_partition(&combined).partition);
    // Pair up source/target URIs with outgoing edges.
    let pairs: Vec<(NodeId, NodeId)> = combined
        .source_nodes()
        .filter(|&n| combined.graph().out_degree(n) > 2)
        .zip(
            combined
                .target_nodes()
                .filter(|&n| combined.graph().out_degree(n) > 2),
        )
        .take(200)
        .collect();
    group.bench_function("rank-coupling", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(n, m)| sigma_nl(combined.graph(), &xi, n, m))
                .sum::<f64>()
        })
    });
    group.bench_function("hungarian", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(n, m)| {
                    sigma_nl_hungarian(combined.graph(), &xi, n, m)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

fn overlap_vs_sigma_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/overlap-vs-sigma-edit");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &ligands in &[10usize, 30] {
        let ds = generate_gtopdb(&GtopdbConfig {
            ligands,
            versions: 2,
            ..GtopdbConfig::default()
        });
        let combined = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[0].graph,
            &ds.versions[1].graph,
        );
        let nodes = combined.graph().node_count();
        let colors: Vec<u32> = hybrid_partition(&combined)
            .partition
            .colors()
            .iter()
            .map(|x| x.0)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("overlap", nodes),
            &combined,
            |b, cg| {
                b.iter(|| {
                    overlap_align(cg, &ds.vocab, OverlapConfig::default())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sigma-edit", nodes),
            &combined,
            |b, cg| {
                b.iter(|| {
                    SigmaEdit::compute(
                        cg,
                        &ds.vocab,
                        &colors,
                        SigmaEditConfig {
                            epsilon: 1e-6,
                            max_iterations: 4,
                        },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("similarity-flooding", nodes),
            &combined,
            |b, cg| {
                b.iter(|| {
                    Flooding::compute(
                        cg,
                        &ds.vocab,
                        FloodingConfig {
                            epsilon: 1e-4,
                            max_iterations: 8,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, prefix_bounds, nl_matching, overlap_vs_sigma_edit);
criterion_main!(benches);
