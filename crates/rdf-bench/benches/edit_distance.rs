//! Edit-distance substrate benchmarks: Levenshtein variants, the
//! Hungarian algorithm, and the σ_Edit matrix on a small graph pair
//! (demonstrating why the paper needed the overlap approximation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf_align::methods::hybrid_partition;
use rdf_datagen::{generate_gtopdb, GtopdbConfig};
use rdf_edit::hungarian::hungarian;
use rdf_edit::levenshtein::{levenshtein, levenshtein_bounded, normalized_levenshtein};
use rdf_edit::sigma_edit::{SigmaEdit, SigmaEditConfig};
use rdf_model::CombinedGraph;

fn lev(c: &mut Criterion) {
    let mut group = c.benchmark_group("levenshtein");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let a = "experimental factor ontology term with a long descriptive name";
    let b = "experimental factor ontology term with a long descriptve names";
    group.bench_function("full", |bench| {
        bench.iter(|| levenshtein(std::hint::black_box(a), std::hint::black_box(b)))
    });
    group.bench_function("bounded-2", |bench| {
        bench.iter(|| levenshtein_bounded(std::hint::black_box(a), std::hint::black_box(b), 2))
    });
    group.bench_function("normalized", |bench| {
        bench.iter(|| normalized_levenshtein(std::hint::black_box(a), std::hint::black_box(b)))
    });
    group.finish();
}

fn hung(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[8usize, 32, 64] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 31 + j * 17) % 101) as f64 / 101.0)
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, m| {
            b.iter(|| hungarian(std::hint::black_box(m)))
        });
    }
    group.finish();
}

fn sigma_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("sigma-edit");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    // Small on purpose: σ_Edit is quadratic with a Hungarian call per
    // cell per iteration.
    let ds = generate_gtopdb(&GtopdbConfig {
        ligands: 20,
        versions: 2,
        ..GtopdbConfig::default()
    });
    let combined = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[1].graph,
    );
    let colors: Vec<u32> = hybrid_partition(&combined)
        .partition
        .colors()
        .iter()
        .map(|c| c.0)
        .collect();
    group.bench_function("matrix", |b| {
        b.iter(|| {
            SigmaEdit::compute(
                &combined,
                &ds.vocab,
                &colors,
                SigmaEditConfig {
                    epsilon: 1e-6,
                    max_iterations: 8,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, lev, hung, sigma_edit);
criterion_main!(benches);
