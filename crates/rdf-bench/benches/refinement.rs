//! Partition-refinement micro-benchmarks: the engine behind Trivial,
//! Deblank, Hybrid and the maximal bisimulation (Proposition 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf_align::methods::{deblank_partition, hybrid_partition, trivial_partition};
use rdf_align::refine::bisimulation_partition;
use rdf_datagen::{generate_efo, EfoConfig};
use rdf_model::CombinedGraph;

fn refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &classes in &[100usize, 400, 1000] {
        let ds = generate_efo(&EfoConfig {
            classes,
            versions: 2,
            ..EfoConfig::default()
        });
        let combined = CombinedGraph::union(
            &ds.vocab,
            &ds.versions[0].graph,
            &ds.versions[1].graph,
        );
        let nodes = combined.graph().node_count();
        group.bench_with_input(
            BenchmarkId::new("trivial", nodes),
            &combined,
            |b, c| b.iter(|| trivial_partition(c)),
        );
        group.bench_with_input(
            BenchmarkId::new("deblank", nodes),
            &combined,
            |b, c| b.iter(|| deblank_partition(c)),
        );
        group.bench_with_input(
            BenchmarkId::new("hybrid", nodes),
            &combined,
            |b, c| b.iter(|| hybrid_partition(c)),
        );
        group.bench_with_input(
            BenchmarkId::new("full-bisimulation", nodes),
            &combined,
            |b, c| b.iter(|| bisimulation_partition(c.graph())),
        );
    }
    group.finish();
}

criterion_group!(benches, refinement);
criterion_main!(benches);
