//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section (§5).
//!
//! * [`figures`] — one function per figure (9–16), returning rendered
//!   text; run them via the `repro` binary:
//!   `cargo run --release -p rdf-bench --bin repro -- all`
//! * [`render`] — plain-text tables / matrices / stacked bars.
//!
//! Criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]

pub mod figures;
pub mod render;
pub mod results;

pub use figures::ReproOptions;
pub use results::BenchRecord;
