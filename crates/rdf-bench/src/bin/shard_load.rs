//! `shard_load` — wall-clock of loading a sharded `.rdfm` store at
//! several shard counts against the single-file `.rdfb` load, on the
//! scale-1.0 EFO dataset.
//!
//! ```text
//! shard_load [--scale F] [--reps N] [--shards LIST] [--json-dir D|none]
//! ```
//!
//! Writes every store layout into a scratch directory, loads each from
//! disk (best of `reps`), asserts every sharded load is **bit-identical**
//! to the single-file load (same labels, kinds, triples), and writes
//! `BENCH_shard_load.json` with per-shard-count wall-ms, speedups and
//! an embedded `run_report` (per-shard load spans with bytes and CRC
//! time). The `cores` parameter records the machine's visible
//! parallelism, and the speedups go through [`BenchRecord::speedup`]'s
//! honesty gate — the concurrent shard load can only beat the single
//! file when `cores > 1`, so on a single-core machine they are emitted
//! as `null` with a `caveat` parameter. Exits non-zero if any shard
//! count diverges from the single-file load.

use rdf_align::{Recorder, Threads};
use rdf_bench::BenchRecord;
use rdf_datagen::{generate_efo, EfoConfig};
use rdf_model::RdfGraph;
use rdf_store::{save_graph, save_sharded, ShardedReader, StoreReader};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut reps = 5usize;
    let mut shards_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut json_dir = Some(".".to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a count"));
            }
            "--shards" => {
                let list =
                    it.next().unwrap_or_else(|| die("--shards needs a list"));
                shards_list = list
                    .split(',')
                    .map(|v| match v.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => die("--shards needs positive integers"),
                    })
                    .collect();
                if shards_list.is_empty() {
                    die("--shards needs at least one count");
                }
            }
            "--json-dir" => {
                let dir =
                    it.next().unwrap_or_else(|| die("--json-dir needs a path"));
                json_dir = (dir != "none").then(|| dir.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: shard_load [--scale F] [--reps N] \
                     [--shards LIST] [--json-dir D|none]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    let reps = reps.max(1);

    // Workload: the final version of the EFO-like dataset — the largest
    // single graph of the paper's §5.1 workload family.
    let ds = generate_efo(&EfoConfig::default().scaled(scale));
    let version = ds.versions.last().expect("dataset has versions");
    let nodes = version.graph.node_count();
    let triples = version.graph.triple_count();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "workload: EFO scale {scale}, final version: {nodes} nodes, \
         {triples} triples; machine has {cores} core(s)"
    );
    if cores == 1 {
        println!(
            "  note: single-core machine — the concurrent shard load \
             measures gang overhead only; speedup > 1 needs cores > 1"
        );
    }

    let dir = std::env::temp_dir()
        .join(format!("rdf-shard-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let single_path = dir.join("g.rdfb");
    save_graph(&single_path, &ds.vocab, &version.graph).unwrap();
    let single_bytes =
        std::fs::metadata(&single_path).map(|m| m.len()).unwrap_or(0);

    // Single-file baseline: open + decode from disk, best of reps.
    let mut baseline: Option<RdfGraph> = None;
    let mut single_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, g) = StoreReader::open(&single_path)
            .unwrap()
            .read_graph()
            .unwrap();
        single_ms = single_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        baseline.get_or_insert(g);
    }
    let baseline = baseline.expect("at least one rep");
    println!("  single file: {single_ms:.3} ms/load ({single_bytes} bytes)");

    // `cores` rides along automatically on every BenchRecord.
    let mut record = BenchRecord::new("shard_load", single_ms)
        .param("scale", scale)
        .param("reps", reps)
        .param("threads", "auto")
        .counts(nodes, triples)
        .metric("single_ms", single_ms)
        .metric("single_bytes", single_bytes as f64);

    let mut diverged = false;
    for &n in &shards_list {
        let manifest = dir.join(format!("g{n}.rdfm"));
        let paths =
            save_sharded(&manifest, &ds.vocab, &version.graph, n).unwrap();
        let total_bytes: u64 = paths
            .iter()
            .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        let mut best = f64::INFINITY;
        let mut loaded: Option<RdfGraph> = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let (_, g) = ShardedReader::open(&manifest)
                .unwrap()
                .read_graph(Threads::Auto)
                .unwrap();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            loaded.get_or_insert(g);
        }
        let g = loaded.expect("at least one rep");
        if g.graph().triples() != baseline.graph().triples()
            || g.graph().labels_raw() != baseline.graph().labels_raw()
            || g.graph().kinds_raw() != baseline.graph().kinds_raw()
        {
            eprintln!(
                "shard_load: {n}-shard load DIVERGED from the \
                 single-file load"
            );
            diverged = true;
        }
        let speedup = single_ms / best;
        println!(
            "  shards {n}: {best:.3} ms/load (best of {reps}), \
             {total_bytes} bytes, {speedup:.2}x vs single file"
        );
        record = record
            .metric(&format!("sharded_ms_s{n}"), best)
            // Parallel-load speedups go through the honesty gate: on a
            // single-core machine they are stamped `null` + caveat.
            .speedup(&format!("speedup_s{n}"), speedup);
    }

    // One instrumented load of the last shard count so the BENCH json
    // carries per-shard load spans (bytes, CRC time) alongside the
    // headline wall times.
    let n = *shards_list.last().expect("non-empty shard list");
    let rec = Recorder::jsonl_writer(Box::new(std::io::sink()));
    let traced = ShardedReader::open(dir.join(format!("g{n}.rdfm")))
        .unwrap()
        .read_graph_with_info_traced(Threads::Auto, &rec);
    match traced {
        Err(e) => eprintln!("shard_load: trace not embedded: {e}"),
        Ok(_) => match rec.finish() {
            Ok(Some(report)) => {
                record = record.param("trace_shards", n).with_report(report);
            }
            Ok(None) => {}
            Err(e) => eprintln!("shard_load: trace not embedded: {e}"),
        },
    }

    if let Some(dir) = &json_dir {
        match record.write_to(dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("BENCH json not written: {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    if diverged {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("shard_load: {msg}");
    std::process::exit(2)
}
