//! `store_load` — measure loading a `.rdfb` store against re-parsing the
//! equivalent N-Triples text, on the scale-1.0 EFO dataset.
//!
//! ```text
//! store_load [--scale F] [--reps N] [--json-dir D|none]
//! ```
//!
//! Writes `BENCH_store_load.json` with three timings — reparse, varint
//! store decode, and the fixed-layout (v2) zero-copy view — the
//! speedups between them, the resident-bytes footprint of the borrowed
//! view vs owned columns, and an embedded `run_report` from one
//! instrumented load. The speedups here compare single-threaded
//! algorithms, so they are meaningful on any core count and bypass the
//! parallel-speedup honesty gate.
//! The acceptance bar for the store subsystem is a ≥ 5× faster load;
//! the binary exits non-zero below 1× (load slower than parse) so CI
//! would catch a regression that large immediately.

use rdf_bench::BenchRecord;
use rdf_datagen::{generate_efo, EfoConfig};
use rdf_io::{parse_graph, write_graph};
use rdf_model::Vocab;
use rdf_obs::Recorder;
use rdf_store::{
    graph_to_bytes_layout, BorrowedStoreReader, Layout, StoreBuf,
    StoreReader,
};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut reps = 5usize;
    let mut json_dir = Some(".".to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a count"));
            }
            "--json-dir" => {
                let dir =
                    it.next().unwrap_or_else(|| die("--json-dir needs a path"));
                json_dir = (dir != "none").then(|| dir.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: store_load [--scale F] [--reps N] \
                     [--json-dir D|none]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    let reps = reps.max(1);

    // Workload: the final version of the EFO-like dataset — the largest
    // single graph of the paper's §5.1 workload family.
    let ds = generate_efo(&EfoConfig::default().scaled(scale));
    let version = ds.versions.last().expect("dataset has versions");
    let text = write_graph(&version.graph, &ds.vocab);
    let store_bytes =
        rdf_store::graph_to_bytes(&ds.vocab, &version.graph).unwrap();
    let nodes = version.graph.node_count();
    let triples = version.graph.triple_count();
    println!(
        "workload: EFO scale {scale}, final version: {nodes} nodes, \
         {triples} triples"
    );
    println!(
        "  N-Triples {} bytes, .rdfb store {} bytes",
        text.len(),
        store_bytes.len()
    );

    // Re-parse path: tokenizing + interning the whole document.
    let t0 = Instant::now();
    let mut parsed_count = 0usize;
    for _ in 0..reps {
        let mut vocab = Vocab::new();
        let g = parse_graph(&text, &mut vocab).unwrap();
        parsed_count = g.triple_count();
    }
    let parse_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    // Store-load path: checksum + varint decode, no string hashing per
    // node or triple. The reader is built once outside the loop so the
    // timed region decodes (like the parse path reads `&text`) without
    // an extra buffer copy per rep.
    let reader = StoreReader::from_bytes(store_bytes.clone());
    let t0 = Instant::now();
    let mut loaded_count = 0usize;
    for _ in 0..reps {
        let (_, g) = reader.read_graph().unwrap();
        loaded_count = g.triple_count();
    }
    let load_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    assert_eq!(parsed_count, loaded_count, "both paths build the same graph");

    // Fixed-layout (v2) zero-copy path: the id columns are served as
    // views of the store buffer — borrowed outright at width 4, widened
    // without any varint work below it. Measured against the varint
    // *decode* above, not the reparse.
    let fixed_bytes =
        graph_to_bytes_layout(&ds.vocab, &version.graph, Layout::Fixed)
            .unwrap();
    let fixed_reader =
        BorrowedStoreReader::from_buf(StoreBuf::from_bytes(&fixed_bytes));
    let t0 = Instant::now();
    let mut view_count = 0usize;
    let mut resident_fixed = 0usize;
    let mut mode = rdf_store::LoadMode::Decode;
    for _ in 0..reps {
        let (_, view) = fixed_reader.read_view().unwrap();
        view_count = view.triple_count();
        resident_fixed = view.resident_bytes();
        mode = BorrowedStoreReader::load_mode(Layout::Fixed, &view);
    }
    let fixed_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    assert_eq!(view_count, loaded_count, "view serves the same graph");

    // Resident-bytes baseline: the same view API over the varint store
    // owns every column, so its accounting is directly comparable.
    let varint_reader =
        BorrowedStoreReader::from_buf(StoreBuf::from_bytes(&store_bytes));
    let (_, varint_view) = varint_reader.read_view().unwrap();
    let resident_varint = varint_view.resident_bytes();
    drop(varint_view);

    let speedup = parse_ms / load_ms;
    let speedup_fixed = load_ms / fixed_ms;
    println!("  reparse: {parse_ms:.3} ms/iter ({reps} reps)");
    println!("  load   : {load_ms:.3} ms/iter ({reps} reps)");
    println!("  fixed  : {fixed_ms:.3} ms/iter ({reps} reps, {mode} mode)");
    println!("  speedup: {speedup:.2}x (reparse/load)");
    println!("  speedup: {speedup_fixed:.2}x (varint-decode/fixed-{mode})");
    println!(
        "  resident: fixed view {resident_fixed} bytes vs owned columns \
         {resident_varint} bytes"
    );

    if let Some(dir) = &json_dir {
        let mut record = BenchRecord::new("store_load", load_ms)
            .param("scale", scale)
            .param("reps", reps)
            .counts(nodes, triples)
            .metric("parse_ms", parse_ms)
            .metric("load_ms", load_ms)
            // Deliberately NOT gated through `BenchRecord::speedup`:
            // this compares two single-threaded *algorithms* (reparse
            // vs decode), which is meaningful on any core count.
            .metric("speedup", speedup)
            .metric("fixed_ms", fixed_ms)
            // Layout-vs-layout comparison (varint decode vs fixed
            // borrow/widen): also single-threaded on both sides, so it
            // likewise bypasses the parallel-speedup gate.
            .metric("speedup_fixed", speedup_fixed)
            .metric("ntriples_bytes", text.len() as f64)
            .metric("store_bytes", store_bytes.len() as f64)
            .metric("fixed_store_bytes", fixed_bytes.len() as f64)
            .metric("bytes_resident_fixed", resident_fixed as f64)
            .metric("bytes_resident_varint", resident_varint as f64);

        // One instrumented load so the BENCH json carries per-section
        // spans alongside the headline timings.
        let rec = Recorder::jsonl_writer(Box::new(std::io::sink()));
        match reader.read_graph_traced(&rec).map(|_| rec.finish()) {
            Ok(Ok(Some(report))) => record = record.with_report(report),
            Ok(Ok(None)) => {}
            Ok(Err(e)) => eprintln!("store_load: trace not embedded: {e}"),
            Err(e) => eprintln!("store_load: trace not embedded: {e}"),
        }
        match record.write_to(dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("BENCH json not written: {e}"),
        }
    }

    if speedup < 1.0 {
        eprintln!("store_load: loading is SLOWER than re-parsing");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("store_load: {msg}");
    std::process::exit(2)
}
