//! `refine_scale` — wall-clock scaling of the parallel refinement
//! engine across thread counts, on the scale-1.0 EFO dataset.
//!
//! ```text
//! refine_scale [--scale F] [--reps N] [--threads LIST] [--json-dir D|none]
//! ```
//!
//! Runs the Hybrid method (the heaviest refinement user: a deblank
//! fixpoint plus a hybrid fixpoint per alignment) through one
//! [`rdf_align::RefineEngine`] per thread count in `LIST` (default
//! `1,2,4,8`), asserts every thread count produces the bit-identical
//! partition, and writes `BENCH_refine_scale.json` with per-thread wall
//! times, the per-thread speedups, and an embedded `run_report` (the
//! aggregated trace of one instrumented baseline run). The `cores`
//! parameter records the machine's visible parallelism, and the
//! speedups go through [`BenchRecord::speedup`]'s honesty gate: on a
//! single-core machine they are emitted as `null` with a `caveat`
//! parameter instead of a meaningless number. Exits non-zero if any
//! thread count diverges from the single-thread partition.

use rdf_align::engine::RefineEngine;
use rdf_align::methods::hybrid_partition_with;
use rdf_align::{Recorder, Threads};
use rdf_bench::BenchRecord;
use rdf_datagen::{generate_efo, EfoConfig};
use rdf_model::CombinedGraph;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut reps = 3usize;
    let mut threads_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut json_dir = Some(".".to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a count"));
            }
            "--threads" => {
                let list =
                    it.next().unwrap_or_else(|| die("--threads needs a list"));
                threads_list = list
                    .split(',')
                    .map(|v| match v.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => die("--threads needs positive integers"),
                    })
                    .collect();
                if threads_list.is_empty() {
                    die("--threads needs at least one count");
                }
            }
            "--json-dir" => {
                let dir =
                    it.next().unwrap_or_else(|| die("--json-dir needs a path"));
                json_dir = (dir != "none").then(|| dir.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: refine_scale [--scale F] [--reps N] \
                     [--threads LIST] [--json-dir D|none]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    let reps = reps.max(1);

    // Workload: versions 1 and 2 of the EFO-like dataset, combined —
    // the §5.1 alignment input whose refinement dominates end-to-end
    // wall time.
    let ds = generate_efo(&EfoConfig::default().scaled(scale));
    let combined = CombinedGraph::union(
        &ds.vocab,
        &ds.versions[0].graph,
        &ds.versions[1].graph,
    );
    let nodes = combined.graph().node_count();
    let triples = combined.graph().triple_count();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "workload: EFO scale {scale}, combined v1+v2: {nodes} nodes, \
         {triples} triples; machine has {cores} core(s)"
    );
    if cores == 1 {
        println!(
            "  note: single-core machine — multi-thread runs measure \
             engine overhead only; speedup > 1 needs cores > 1"
        );
    }

    // `cores` rides along automatically on every BenchRecord.
    let mut record = BenchRecord::new("refine_scale", 0.0)
        .param("scale", scale)
        .param("reps", reps)
        .param("method", "hybrid")
        .counts(nodes, triples);

    let mut baseline_colors: Option<Vec<rdf_align::ColorId>> = None;
    let mut ms_of_one = None;
    let mut diverged = false;
    for &t in &threads_list {
        let mut engine = RefineEngine::new(Threads::Fixed(t));
        // Warm-up rep (fills engine scratch, faults pages), then timed
        // best-of-reps: scaling is about the steady state.
        let warm = hybrid_partition_with(&combined, &mut engine);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = hybrid_partition_with(&combined, &mut engine);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                out.partition.colors(),
                warm.partition.colors(),
                "engine must be deterministic run to run"
            );
        }
        match &baseline_colors {
            None => {
                baseline_colors = Some(warm.partition.colors().to_vec());
                ms_of_one = Some(best);
            }
            Some(base) => {
                if base.as_slice() != warm.partition.colors() {
                    eprintln!(
                        "refine_scale: {t}-thread partition DIVERGED \
                         from {}-thread baseline",
                        threads_list[0]
                    );
                    diverged = true;
                }
            }
        }
        println!(
            "  threads {t}: {best:.3} ms/align (best of {reps}), \
             {} classes",
            warm.partition.num_colors()
        );
        record = record.metric(&format!("hybrid_ms_t{t}"), best);
        if t == threads_list[0] {
            record.wall_ms = best;
        }
        if let Some(base_ms) = ms_of_one {
            // Thread-count speedups go through the honesty gate: on a
            // single-core machine they are stamped `null` + caveat.
            record = record.speedup(&format!("speedup_t{t}"), base_ms / best);
            if t != threads_list[0] {
                println!("    speedup vs t{}: {:.2}x", threads_list[0], base_ms / best);
            }
        }
    }

    // One extra instrumented run at the baseline thread count: the
    // BENCH json carries the phase breakdown (per-round spans, barrier
    // counters), not just the headline wall time.
    let rec = Arc::new(Recorder::jsonl_writer(Box::new(std::io::sink())));
    let mut engine = RefineEngine::with_recorder(
        Threads::Fixed(threads_list[0]),
        Arc::clone(&rec),
    );
    let _ = hybrid_partition_with(&combined, &mut engine);
    drop(engine);
    match rec.finish() {
        Ok(Some(report)) => record = record.with_report(report),
        Ok(None) => {}
        Err(e) => eprintln!("refine_scale: trace not embedded: {e}"),
    }

    if let Some(dir) = &json_dir {
        match record.write_to(dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("BENCH json not written: {e}"),
        }
    }

    if diverged {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("refine_scale: {msg}");
    std::process::exit(2)
}
