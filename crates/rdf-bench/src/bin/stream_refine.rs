//! `stream_refine` — wall-clock *and peak-residency* of the streaming
//! refinement engine against the in-RAM engine, on the scale-1.0 EFO
//! dataset saved as sharded stores.
//!
//! ```text
//! stream_refine [--scale F] [--reps N] [--shards LIST] [--threads N|auto]
//!               [--json-dir D|none]
//! ```
//!
//! For each shard count the final EFO version is saved as a `.rdfm`
//! store, opened for streaming, and the maximal bisimulation is
//! computed shard-at-a-time (best of `reps`); the result is asserted
//! **bit-identical** (colors and rounds) to the in-RAM engine over the
//! stitched load. `BENCH_stream_refine.json` records, per shard count,
//! the streaming wall-ms and the engine's peak-resident proxy
//! (`peak_shard_bytes_sN` — the largest single shard's columns, the
//! only adjacency a worker ever holds) next to the in-RAM engine's
//! resident columns (`inram_resident_bytes` — the whole graph), so the
//! external-memory claim is a number, not prose: the ratio
//! `resident_ratio_sN` shrinks roughly like `1/N`. Streaming re-reads
//! every shard file once per refinement round, so its wall time is
//! expected to trail the in-RAM engine — the win is bounded residency,
//! not speed. The record embeds a `run_report` from one instrumented
//! streaming run, asserted consistent with the engine (round count and
//! peak-shard gauge match exactly). Exits non-zero if any
//! configuration diverges from the in-RAM partition.

use rdf_align::{Recorder, RefineEngine, StreamingRefineEngine, Threads};
use rdf_bench::BenchRecord;
use rdf_datagen::{generate_efo, EfoConfig};
use rdf_store::{save_sharded, ShardedReader};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut reps = 3usize;
    let mut shards_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut threads = Threads::Auto;
    let mut json_dir = Some(".".to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a count"));
            }
            "--shards" => {
                let list =
                    it.next().unwrap_or_else(|| die("--shards needs a list"));
                shards_list = list
                    .split(',')
                    .map(|v| match v.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => die("--shards needs positive integers"),
                    })
                    .collect();
                if shards_list.is_empty() {
                    die("--shards needs at least one count");
                }
            }
            "--threads" => {
                let v =
                    it.next().unwrap_or_else(|| die("--threads needs a value"));
                threads = Threads::parse(v)
                    .unwrap_or_else(|e| die(&e));
            }
            "--json-dir" => {
                let dir =
                    it.next().unwrap_or_else(|| die("--json-dir needs a path"));
                json_dir = (dir != "none").then(|| dir.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: stream_refine [--scale F] [--reps N] \
                     [--shards LIST] [--threads N|auto] [--json-dir D|none]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    let reps = reps.max(1);

    // Workload: the final version of the EFO-like dataset — the
    // largest single graph of the paper's §5.1 workload family, the
    // same graph shard_load measures.
    let ds = generate_efo(&EfoConfig::default().scaled(scale));
    let version = ds.versions.last().expect("dataset has versions");
    let nodes = version.graph.node_count();
    let triples = version.graph.triple_count();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "workload: EFO scale {scale}, final version: {nodes} nodes, \
         {triples} triples; machine has {cores} core(s)"
    );

    let dir = std::env::temp_dir()
        .join(format!("rdf-stream-refine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // In-RAM baseline: the whole grouped-CSR adjacency is resident
    // for the entire fixpoint. Its residency proxy mirrors the
    // streaming one: 4 bytes per offset, predicate and object entry.
    let g = version.graph.graph();
    let inram_resident =
        (4 * ((nodes + 1) + 2 * triples)) as f64;
    let mut inram_ms = f64::INFINITY;
    let mut engine = RefineEngine::new(threads);
    let baseline = engine.bisimulation(g);
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = engine.bisimulation(g);
        inram_ms = inram_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(out.partition.colors(), baseline.partition.colors());
    }
    println!(
        "  in-RAM: {inram_ms:.3} ms/fixpoint, {} classes in {} rounds, \
         {inram_resident:.0} resident column bytes",
        baseline.partition.num_colors(),
        baseline.rounds,
    );

    let mut record = BenchRecord::new("stream_refine", inram_ms)
        .param("scale", scale)
        .param("reps", reps)
        .param(
            "threads",
            match threads {
                Threads::Auto => "auto".to_string(),
                Threads::Fixed(n) => n.to_string(),
            },
        )
        .counts(nodes, triples)
        .metric("inram_ms", inram_ms)
        .metric("inram_resident_bytes", inram_resident)
        .metric("rounds", baseline.rounds as f64);

    let mut diverged = false;
    for &n in &shards_list {
        let manifest = dir.join(format!("g{n}.rdfm"));
        save_sharded(&manifest, &ds.vocab, &version.graph, n).unwrap();
        let store = ShardedReader::open(&manifest)
            .unwrap()
            .open_streaming()
            .unwrap();
        let mut engine = StreamingRefineEngine::new(threads);
        let mut best = f64::INFINITY;
        let mut streamed = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = engine
                .bisimulation(&store, store.labels())
                .expect("freshly written shards load");
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            streamed.get_or_insert(out);
        }
        let out = streamed.expect("at least one rep");
        if out.partition.colors() != baseline.partition.colors()
            || out.rounds != baseline.rounds
        {
            eprintln!(
                "stream_refine: {n}-shard streaming fixpoint DIVERGED \
                 from the in-RAM engine"
            );
            diverged = true;
        }
        let peak = engine.peak_shard_bytes() as f64;
        let ratio = peak / inram_resident;
        println!(
            "  shards {n}: {best:.3} ms/fixpoint, peak shard columns \
             {peak:.0} bytes ({ratio:.3}x of in-RAM residency)"
        );
        record = record
            .metric(&format!("stream_ms_s{n}"), best)
            .metric(&format!("peak_shard_bytes_s{n}"), peak)
            .metric(&format!("resident_ratio_s{n}"), ratio);
    }

    // One instrumented streaming run (last shard count), embedded as
    // the record's `run_report` — and cross-checked against the engine
    // so the trace and the BENCH numbers can never drift apart: the
    // per-round span count must equal the engine's round count and the
    // peak-shard gauge must equal `peak_shard_bytes()` exactly.
    let n = *shards_list.last().expect("non-empty shard list");
    let manifest = dir.join(format!("g{n}.rdfm"));
    let rec = Arc::new(Recorder::jsonl_writer(Box::new(std::io::sink())));
    let mut store = ShardedReader::open(&manifest)
        .unwrap()
        .open_streaming()
        .unwrap();
    store.set_recorder(Arc::clone(&rec));
    let mut engine = StreamingRefineEngine::with_recorder(threads, Arc::clone(&rec));
    let out = engine
        .bisimulation(&store, store.labels())
        .expect("traced rerun over freshly written shards");
    assert_eq!(
        out.partition.colors(),
        baseline.partition.colors(),
        "instrumented run must be bit-identical to the untraced one"
    );
    let peak = engine.peak_shard_bytes() as u64;
    drop(engine);
    drop(store);
    let report = rec
        .finish()
        .expect("sink recorder cannot fail on I/O")
        .expect("jsonl-mode recorder yields a report");
    let rounds_traced = report.span("refine.round").map_or(0, |s| s.count);
    assert_eq!(
        rounds_traced, out.rounds as u64,
        "per-round span count must equal the engine's round count"
    );
    assert_eq!(
        report.gauge("stream.peak_shard_bytes"),
        Some(peak),
        "traced peak-shard gauge must match the engine exactly"
    );
    record = record.param("trace_shards", n).with_report(report);

    if let Some(dir) = &json_dir {
        match record.write_to(dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("BENCH json not written: {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    if diverged {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("stream_refine: {msg}");
    std::process::exit(2)
}
