//! `repro` — regenerate the paper's evaluation figures.
//!
//! ```text
//! repro [FIGURE ...] [--scale F] [--theta T] [--json-dir DIR]
//!
//! FIGURE: fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 | all
//! --scale F     dataset scale factor (default 1.0; ~75 ≈ paper scale
//!               for EFO, ~650 for DBpedia)
//! --theta T     overlap threshold θ (default 0.65)
//! --json-dir D  where BENCH_<figure>.json records are written
//!               (default "."; "none" disables them)
//! ```
//!
//! Besides the rendered text, every figure run records a machine-readable
//! `BENCH_<figure>.json` (name, params, wall-time ms, node/triple counts
//! of the workload) so the repo's perf trajectory is tracked over PRs.

use rdf_bench::figures::{
    fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig9, ReproOptions,
};
use rdf_bench::BenchRecord;
use rdf_datagen::{
    generate_dbpedia, generate_efo, generate_gtopdb, DbpediaConfig,
    EfoConfig, EvolvingDataset, GtopdbConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ReproOptions::default();
    let mut json_dir = Some(".".to_string());
    let mut figures: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--theta" => {
                opts.theta = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--theta needs a number"));
            }
            "--json-dir" => {
                let dir = it
                    .next()
                    .unwrap_or_else(|| die("--json-dir needs a path"));
                json_dir =
                    (dir != "none").then(|| dir.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [fig9..fig16|all] [--scale F] [--theta T] \
                     [--json-dir D|none]"
                );
                return;
            }
            f if f.starts_with("fig") || f == "all" => {
                figures.push(f.to_string())
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = (9..=16).map(|i| format!("fig{i}")).collect();
    }

    let mut counts = WorkloadCounts::default();
    for f in &figures {
        let start = std::time::Instant::now();
        let out = match f.as_str() {
            "fig9" => fig9(&opts),
            "fig10" => fig10(&opts),
            "fig11" => fig11(&opts),
            "fig12" => fig12(&opts),
            "fig13" => fig13(&opts),
            "fig14" => fig14(&opts),
            "fig15" => fig15(&opts),
            "fig16" => fig16(&opts),
            other => die(&format!("unknown figure {other}")),
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        println!("{out}");
        eprintln!("[{f} took {:.2}s]\n", wall_ms / 1e3);
        if let Some(dir) = &json_dir {
            let (nodes, triples) = counts.for_figure(f, &opts);
            let record = BenchRecord::new(f.clone(), wall_ms)
                .param("scale", opts.scale)
                .param("theta", opts.theta)
                .counts(nodes, triples);
            match record.write_to(dir) {
                Ok(path) => eprintln!("[wrote {}]", path.display()),
                Err(e) => eprintln!("[BENCH json not written: {e}]"),
            }
        }
    }
}

/// Lazily computed, memoised workload sizes per dataset family, so the
/// JSON records don't pay a second full dataset generation per figure.
#[derive(Default)]
struct WorkloadCounts {
    efo: Option<(usize, usize)>,
    gtopdb: Option<(usize, usize)>,
    dbpedia: Option<(usize, usize)>,
}

impl WorkloadCounts {
    /// Total nodes/triples (summed across versions) of the dataset the
    /// figure runs over.
    fn for_figure(&mut self, figure: &str, opts: &ReproOptions) -> (usize, usize) {
        let totals = |ds: &EvolvingDataset| {
            ds.versions.iter().fold((0, 0), |(n, t), v| {
                (n + v.graph.node_count(), t + v.graph.triple_count())
            })
        };
        match figure {
            "fig9" | "fig10" | "fig11" => *self.efo.get_or_insert_with(|| {
                totals(&generate_efo(&EfoConfig::default().scaled(opts.scale)))
            }),
            "fig12" | "fig13" | "fig14" | "fig15" => {
                *self.gtopdb.get_or_insert_with(|| {
                    totals(&generate_gtopdb(
                        &GtopdbConfig::default().scaled(opts.scale),
                    ))
                })
            }
            "fig16" => *self.dbpedia.get_or_insert_with(|| {
                totals(&generate_dbpedia(
                    &DbpediaConfig::default().scaled(opts.scale),
                ))
            }),
            _ => (0, 0),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2)
}
