//! `repro` — regenerate the paper's evaluation figures.
//!
//! ```text
//! repro [FIGURE ...] [--scale F] [--theta T]
//!
//! FIGURE: fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 | all
//! --scale F   dataset scale factor (default 1.0; ~75 ≈ paper scale
//!             for EFO, ~650 for DBpedia)
//! --theta T   overlap threshold θ (default 0.65)
//! ```

use rdf_bench::figures::{
    fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig9, ReproOptions,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ReproOptions::default();
    let mut figures: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--theta" => {
                opts.theta = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--theta needs a number"));
            }
            "--help" | "-h" => {
                println!("usage: repro [fig9..fig16|all] [--scale F] [--theta T]");
                return;
            }
            f if f.starts_with("fig") || f == "all" => {
                figures.push(f.to_string())
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = (9..=16).map(|i| format!("fig{i}")).collect();
    }

    for f in &figures {
        let start = std::time::Instant::now();
        let out = match f.as_str() {
            "fig9" => fig9(&opts),
            "fig10" => fig10(&opts),
            "fig11" => fig11(&opts),
            "fig12" => fig12(&opts),
            "fig13" => fig13(&opts),
            "fig14" => fig14(&opts),
            "fig15" => fig15(&opts),
            "fig16" => fig16(&opts),
            other => die(&format!("unknown figure {other}")),
        };
        println!("{out}");
        eprintln!("[{f} took {:.2}s]\n", start.elapsed().as_secs_f64());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2)
}
