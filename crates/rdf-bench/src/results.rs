//! Machine-readable benchmark records.
//!
//! Every benchmark / figure run writes a `BENCH_<name>.json` next to its
//! human-readable output so the repo's perf trajectory is tracked in
//! version control from PR 2 onward. The format is a single flat JSON
//! object — hand-rolled here because the offline dependency set carries
//! no serde.

use rdf_obs::RunReport;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One benchmark result: identity, parameters, wall time, scale.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Record name; the file is `BENCH_<name>.json`.
    pub name: String,
    /// Free-form parameters (scale, theta, reps, …), emitted as strings.
    pub params: Vec<(String, String)>,
    /// Wall-clock time of the measured work, in milliseconds.
    pub wall_ms: f64,
    /// Node count of the workload graph(s).
    pub nodes: usize,
    /// Triple count of the workload graph(s).
    pub triples: usize,
    /// Extra numeric results (per-phase timings, ratios, …).
    pub extra: Vec<(String, f64)>,
    /// Aggregated trace of one instrumented run of the measured work,
    /// emitted as a nested `"run_report"` object. Carried so every
    /// `BENCH_*.json` explains *where* its wall time went (per-phase
    /// span totals), not just what the headline number was.
    pub report: Option<RunReport>,
}

impl BenchRecord {
    /// A record with the given name and measured wall time.
    ///
    /// Every record automatically carries a `cores` parameter — the
    /// machine's [`std::thread::available_parallelism`] at measurement
    /// time — so the benchmark-provenance caveat (see the README's
    /// "Benchmark provenance" section) is machine-checkable: a reader
    /// can reject speedup claims recorded on a single-core container
    /// without trusting prose.
    pub fn new(name: impl Into<String>, wall_ms: f64) -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        BenchRecord {
            name: name.into(),
            params: vec![("cores".into(), cores.to_string())],
            wall_ms,
            nodes: 0,
            triples: 0,
            extra: Vec::new(),
            report: None,
        }
    }

    /// The `cores` provenance parameter, parsed back out of `params`.
    fn cores(&self) -> usize {
        self.params
            .iter()
            .find(|(k, _)| k == "cores")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(1)
    }

    /// Attach a parameter.
    pub fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Set workload node/triple counts.
    pub fn counts(mut self, nodes: usize, triples: usize) -> Self {
        self.nodes = nodes;
        self.triples = triples;
        self
    }

    /// Attach an extra numeric result.
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.extra.push((key.into(), value));
        self
    }

    /// Attach a headline speedup metric — honestly.
    ///
    /// A parallel-speedup number measured on a single hardware core is
    /// scheduler noise, not a result, so this method refuses to stamp
    /// one: when the record's `cores` provenance parameter is 1 the
    /// metric is emitted as JSON `null` and a one-time `caveat`
    /// parameter explains why. On multi-core machines it behaves
    /// exactly like [`BenchRecord::metric`].
    ///
    /// Use plain [`BenchRecord::metric`] for speedups that compare two
    /// *algorithms* at the same thread count (those are meaningful on
    /// any machine); use this for speedups that compare thread counts.
    pub fn speedup(mut self, key: &str, value: f64) -> Self {
        if self.cores() > 1 {
            return self.metric(key, value);
        }
        const CAVEAT: &str = "recorded on 1 core: parallel speedups \
                              suppressed (null)";
        if !self.params.iter().any(|(k, _)| k == "caveat") {
            self = self.param("caveat", CAVEAT);
        }
        // NaN renders as `null` through `json_number`.
        self.metric(key, f64::NAN)
    }

    /// Attach the aggregated trace of one instrumented run.
    pub fn with_report(mut self, report: RunReport) -> Self {
        self.report = Some(report);
        self
    }

    /// Serialise to a JSON object (stable key order, `\n`-terminated).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        out.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_string(k), json_string(v));
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"wall_ms\": {},", json_number(self.wall_ms));
        let _ = writeln!(out, "  \"nodes\": {},", self.nodes);
        let _ = write!(out, "  \"triples\": {}", self.triples);
        for (k, v) in &self.extra {
            let _ = write!(out, ",\n  {}: {}", json_string(k), json_number(*v));
        }
        if let Some(report) = &self.report {
            let _ = write!(out, ",\n  \"run_report\": {}", report.to_json());
        }
        out.push_str("\n}\n");
        out
    }

    /// Write `BENCH_<name>.json` into `dir` (created if absent); returns
    /// the path written.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// JSON-escape a string (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as valid JSON (finite; trailing-zero trimmed).
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    let s = format!("{v:.3}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let r = BenchRecord::new("store_load", 12.5)
            .param("scale", 1.0)
            .param("note", "with \"quotes\"\n")
            .counts(100, 200)
            .metric("speedup", 6.25);
        let j = r.to_json();
        assert!(j.contains("\"name\": \"store_load\""));
        // The provenance parameter is always present, first.
        assert!(j.contains("\"cores\": \""));
        assert!(j.contains("\"scale\": \"1\""));
        assert!(j.contains("\\\"quotes\\\"\\n"));
        assert!(j.contains("\"wall_ms\": 12.5"));
        assert!(j.contains("\"nodes\": 100"));
        assert!(j.contains("\"triples\": 200"));
        assert!(j.contains("\"speedup\": 6.25"));
        assert!(j.ends_with("}\n"));
        // Balanced braces, no trailing commas before a close.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",}"));
        assert!(!j.contains(",\n}"));
    }

    #[test]
    fn write_to_creates_named_file() {
        let dir = std::env::temp_dir()
            .join(format!("rdf-bench-results-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = BenchRecord::new("unit_test", 1.0).write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit_test.json"));
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("unit_test"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn numbers_render_as_valid_json() {
        assert_eq!(json_number(1.0), "1");
        assert_eq!(json_number(0.125), "0.125");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    /// Force the `cores` provenance parameter to a known value so the
    /// gate is testable regardless of the machine running the tests.
    fn with_cores(mut r: BenchRecord, cores: usize) -> BenchRecord {
        for (k, v) in &mut r.params {
            if k == "cores" {
                *v = cores.to_string();
            }
        }
        r
    }

    #[test]
    fn speedup_is_suppressed_on_one_core() {
        let r = with_cores(BenchRecord::new("gate", 1.0), 1)
            .speedup("speedup_t4", 3.5)
            .speedup("speedup_t8", 5.0);
        let j = r.to_json();
        assert!(j.contains("\"speedup_t4\": null"), "got: {j}");
        assert!(j.contains("\"speedup_t8\": null"), "got: {j}");
        // One caveat parameter, even with several suppressed metrics.
        assert_eq!(j.matches("\"caveat\"").count(), 1, "got: {j}");
        assert!(j.contains("recorded on 1 core"), "got: {j}");
    }

    #[test]
    fn speedup_passes_through_on_multicore() {
        let r = with_cores(BenchRecord::new("gate", 1.0), 8)
            .speedup("speedup_t4", 3.5);
        let j = r.to_json();
        assert!(j.contains("\"speedup_t4\": 3.5"), "got: {j}");
        assert!(!j.contains("caveat"), "got: {j}");
    }

    #[test]
    fn run_report_embeds_as_nested_object() {
        let rec =
            rdf_obs::Recorder::jsonl_writer(Box::new(std::io::sink()));
        {
            let mut sp = rec.span("unit.work");
            sp.field("items", 3u64);
        }
        rec.counter("unit.count").add(7);
        let report = rec.finish().unwrap().unwrap();
        let j = BenchRecord::new("rep", 1.0)
            .with_report(report)
            .to_json();
        assert!(j.contains("\"run_report\": {"), "got: {j}");
        assert!(j.contains("\"unit.work\""), "got: {j}");
        assert!(j.contains("\"unit.count\""), "got: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.ends_with("}\n"));
    }
}
