//! Plain-text rendering of tables, matrices and bar charts for the
//! figure-reproduction harness.

/// Render a simple aligned table.
pub fn simple_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:>w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            out.push_str(&format!("| {:>w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Render a version × version matrix with a caption.
pub fn matrix_table(
    caption: &str,
    data: &[Vec<f64>],
    decimals: usize,
) -> String {
    let n = data.len();
    let mut out = format!("{caption}\n");
    let cell = |v: f64| format!("{v:.decimals$}");
    let width = data
        .iter()
        .flatten()
        .map(|&v| cell(v).len())
        .max()
        .unwrap_or(4)
        .max(3);
    out.push_str(&format!("{:>5}", "tgt\\src"));
    for j in 0..n {
        out.push_str(&format!(" {:>w$}", j + 1, w = width));
    }
    out.push('\n');
    for (i, row) in data.iter().enumerate() {
        out.push_str(&format!("{:>8}", i + 1));
        for &v in row {
            out.push_str(&format!(" {:>w$}", cell(v), w = width));
        }
        out.push('\n');
    }
    out
}

/// Render a horizontal bar chart of labelled values.
pub fn bar_chart(
    caption: &str,
    labels: &[String],
    values: &[f64],
    max_width: usize,
) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let lw = labels.iter().map(String::len).max().unwrap_or(0);
    let mut out = format!("{caption}\n");
    for (l, &v) in labels.iter().zip(values) {
        let n = ((v / max) * max_width as f64).round() as usize;
        out.push_str(&format!(
            "{:>w$} | {}{} {:.3}\n",
            l,
            "█".repeat(n),
            " ".repeat(max_width - n),
            v,
            w = lw
        ));
    }
    out
}

/// Render stacked category fractions per row (Fig 14/15 style).
pub fn stacked_rows(
    caption: &str,
    row_labels: &[String],
    categories: &[&str],
    counts: &[Vec<usize>],
) -> String {
    let mut out = format!("{caption}\n");
    let lw = row_labels.iter().map(String::len).max().unwrap_or(0);
    const SYMS: [char; 4] = ['█', '▓', '░', '·'];
    const WIDTH: usize = 48;
    for (label, row) in row_labels.iter().zip(counts) {
        let total: usize = row.iter().sum();
        out.push_str(&format!("{label:>lw$} |"));
        if total > 0 {
            let mut used = 0;
            for (k, &c) in row.iter().enumerate() {
                let n = if k + 1 == row.len() {
                    WIDTH - used
                } else {
                    (c as f64 / total as f64 * WIDTH as f64).round() as usize
                };
                let n = n.min(WIDTH - used);
                out.push_str(
                    &SYMS[k % SYMS.len()].to_string().repeat(n),
                );
                used += n;
            }
        }
        out.push_str("| ");
        for (k, &c) in row.iter().enumerate() {
            out.push_str(&format!("{}={} ", categories[k], c));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "legend: {}\n",
        categories
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{}={}", SYMS[k % SYMS.len()], c))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = simple_table(
            &["Version", "Edges"],
            &[
                vec!["1".into(), "100".into()],
                vec!["10".into(), "12345".into()],
            ],
        );
        assert!(t.contains("| Version |"));
        assert!(t.contains("| 12345 |"));
        assert!(t.contains("|      10 |"));
    }

    #[test]
    fn matrix_shape() {
        let m = matrix_table("cap", &[vec![0.5, 1.0], vec![0.25, 0.75]], 2);
        assert!(m.starts_with("cap\n"));
        assert!(m.contains("0.50"));
        assert!(m.contains("0.75"));
    }

    #[test]
    fn bars_bounded() {
        let b = bar_chart(
            "t",
            &["a".into(), "b".into()],
            &[1.0, 2.0],
            10,
        );
        assert!(b.contains("██████████ 2.000"));
    }

    #[test]
    fn stacked_render() {
        let s = stacked_rows(
            "t",
            &["v1".into()],
            &["exact", "inclusive", "false", "missing"],
            &[vec![10, 5, 3, 2]],
        );
        assert!(s.contains("exact=10"));
        assert!(s.contains("missing=2"));
    }
}
