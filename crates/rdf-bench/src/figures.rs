//! One function per figure of the paper's evaluation section (§5).
//!
//! Each function generates (or receives) the synthetic dataset, runs the
//! alignment methods, and returns structured results; the `repro` binary
//! renders them as text. DESIGN.md carries the per-experiment index;
//! EXPERIMENTS.md records paper-vs-measured shapes.

use crate::render::{matrix_table, simple_table, stacked_rows};
use rdf_align::metrics::{classify_matches, edge_stats, node_counts};
use rdf_align::methods::{
    deblank_partition, hybrid_partition, trivial_partition,
};
use rdf_align::overlap_align::{overlap_align, OverlapConfig};
use rdf_align::MatchBreakdown;
use rdf_datagen::{
    generate_dbpedia, generate_efo, generate_gtopdb, DbpediaConfig,
    EfoConfig, EvolvingDataset, GtopdbConfig,
};
use rdf_model::{CombinedGraph, GraphStats};
use std::time::Instant;

/// Harness-wide options.
#[derive(Debug, Clone, Copy)]
pub struct ReproOptions {
    /// Dataset scale factor (1.0 = laptop default).
    pub scale: f64,
    /// Overlap threshold θ.
    pub theta: f64,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            scale: 1.0,
            theta: 0.65,
        }
    }
}

fn combined(
    ds: &EvolvingDataset,
    i: usize,
    j: usize,
) -> CombinedGraph {
    CombinedGraph::union(
        &ds.vocab,
        &ds.versions[i].graph,
        &ds.versions[j].graph,
    )
}

/// Fig 9: EFO dataset version statistics.
pub fn fig9(opts: &ReproOptions) -> String {
    let ds = generate_efo(&EfoConfig::default().scaled(opts.scale));
    render_stats_table(
        "Figure 9: EFO-like dataset versions (nodes by kind, edges)",
        &ds,
    )
}

/// Fig 12: GtoPdb dataset version statistics.
pub fn fig12(opts: &ReproOptions) -> String {
    let ds = generate_gtopdb(&GtopdbConfig::default().scaled(opts.scale));
    render_stats_table(
        "Figure 12: GtoPdb-like dataset versions (no blanks)",
        &ds,
    )
}

fn render_stats_table(caption: &str, ds: &EvolvingDataset) -> String {
    let rows: Vec<Vec<String>> = ds
        .versions
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let s: GraphStats = v.stats();
            vec![
                (i + 1).to_string(),
                s.uris.to_string(),
                s.blanks.to_string(),
                s.literals.to_string(),
                s.edges.to_string(),
                format!("{:.1}%", 100.0 * s.literal_fraction()),
                format!("{:.1}%", 100.0 * s.blank_fraction()),
            ]
        })
        .collect();
    format!(
        "{caption}\n{}",
        simple_table(
            &["Version", "URIs", "Blanks", "Literals", "Edges", "Lit%", "Blank%"],
            &rows,
        )
    )
}

/// Fig 10: Trivial and Deblank aligned-edge ratio over all version pairs.
pub fn fig10(opts: &ReproOptions) -> String {
    let ds = generate_efo(&EfoConfig::default().scaled(opts.scale));
    let n = ds.len();
    let mut trivial = vec![vec![0.0; n]; n];
    let mut deblank = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let c = combined(&ds, j, i); // row = target version, col = source
            trivial[i][j] = edge_stats(&trivial_partition(&c), &c).ratio();
            deblank[i][j] =
                edge_stats(&deblank_partition(&c).partition, &c).ratio();
        }
    }
    format!(
        "Figure 10: aligned-edge ratio (Jaccard over edge classes)\n\n{}\n{}",
        matrix_table("Trivial alignment", &trivial, 2),
        matrix_table("Deblank alignment (diagonal must be 1.00)", &deblank, 2)
    )
}

/// Fig 11: edges additionally aligned by Hybrid over Deblank and by
/// Overlap over Hybrid.
pub fn fig11(opts: &ReproOptions) -> String {
    let ds = generate_efo(&EfoConfig::default().scaled(opts.scale));
    let n = ds.len();
    let mut hybrid_gain = vec![vec![0.0; n]; n];
    let mut overlap_gain = vec![vec![0.0; n]; n];
    let cfg = OverlapConfig {
        theta: opts.theta,
        ..OverlapConfig::default()
    };
    for i in 0..n {
        for j in 0..n {
            let c = combined(&ds, j, i);
            let d = edge_stats(&deblank_partition(&c).partition, &c);
            let h = edge_stats(&hybrid_partition(&c).partition, &c);
            let o = edge_stats(
                &overlap_align(&c, &ds.vocab, cfg).weighted.partition,
                &c,
            );
            hybrid_gain[i][j] = (h.aligned_instances() as f64
                - d.aligned_instances() as f64)
                .max(0.0);
            overlap_gain[i][j] = (o.aligned_instances() as f64
                - h.aligned_instances() as f64)
                .max(0.0);
        }
    }
    format!(
        "Figure 11: additionally aligned edges (absolute counts)\n\n{}\n{}",
        matrix_table("Hybrid vs Deblank", &hybrid_gain, 0),
        matrix_table("Overlap vs Hybrid", &overlap_gain, 0)
    )
}

/// Fig 13: aligned node counts for consecutive GtoPdb version pairs.
pub fn fig13(opts: &ReproOptions) -> String {
    let ds = generate_gtopdb(&GtopdbConfig::default().scaled(opts.scale));
    let cfg = OverlapConfig {
        theta: opts.theta,
        ..OverlapConfig::default()
    };
    let mut rows = Vec::new();
    for i in 0..ds.len() - 1 {
        let c = combined(&ds, i, i + 1);
        let gt = ds.ground_truth(i, i + 1);
        let h = node_counts(&hybrid_partition(&c).partition, &c);
        let o = node_counts(
            &overlap_align(&c, &ds.vocab, cfg).weighted.partition,
            &c,
        );
        rows.push(vec![
            format!("{}-{}", i + 1, i + 2),
            h.aligned_classes.to_string(),
            o.aligned_classes.to_string(),
            gt.len().to_string(),
            h.total_entities(&gt).to_string(),
        ]);
    }
    format!(
        "Figure 13: aligned nodes, consecutive version pairs (GtoPdb)\n{}",
        simple_table(&["Pair", "Hybrid", "Overlap", "GtoPdb", "Total"], &rows)
    )
}

/// Fig 14: precision breakdown for Hybrid and Overlap on consecutive
/// GtoPdb pairs.
pub fn fig14(opts: &ReproOptions) -> String {
    let ds = generate_gtopdb(&GtopdbConfig::default().scaled(opts.scale));
    let cfg = OverlapConfig {
        theta: opts.theta,
        ..OverlapConfig::default()
    };
    let mut labels = Vec::new();
    let mut hybrid_counts = Vec::new();
    let mut overlap_counts = Vec::new();
    for i in 0..ds.len() - 1 {
        let c = combined(&ds, i, i + 1);
        let gt = ds.ground_truth(i, i + 1);
        let h = classify_matches(&hybrid_partition(&c).partition, &c, &gt);
        let o = classify_matches(
            &overlap_align(&c, &ds.vocab, cfg).weighted.partition,
            &c,
            &gt,
        );
        labels.push(format!("{}-{}", i + 1, i + 2));
        hybrid_counts.push(breakdown_row(&h));
        overlap_counts.push(breakdown_row(&o));
    }
    let cats = ["exact", "inclusive", "false", "missing"];
    format!(
        "Figure 14: alignment precision (GtoPdb)\n\n{}\n{}",
        stacked_rows("Hybrid", &labels, &cats, &hybrid_counts),
        stacked_rows("Overlap", &labels, &cats, &overlap_counts)
    )
}

fn breakdown_row(b: &MatchBreakdown) -> Vec<usize> {
    vec![b.exact, b.inclusive, b.false_matches, b.missing]
}

/// Fig 15: Overlap precision vs threshold θ on the worst pair (3-4).
pub fn fig15(opts: &ReproOptions) -> String {
    let ds = generate_gtopdb(&GtopdbConfig::default().scaled(opts.scale));
    let c = combined(&ds, 2, 3);
    let gt = ds.ground_truth(2, 3);
    let mut labels = Vec::new();
    let mut counts = Vec::new();
    let mut best = (0usize, 0.0f64);
    for step in 0..7 {
        let theta = 0.35 + 0.1 * step as f64;
        let cfg = OverlapConfig {
            theta,
            ..OverlapConfig::default()
        };
        let b = classify_matches(
            &overlap_align(&c, &ds.vocab, cfg).weighted.partition,
            &c,
            &gt,
        );
        if b.exact > best.0 {
            best = (b.exact, theta);
        }
        labels.push(format!("θ={theta:.2}"));
        counts.push(breakdown_row(&b));
    }
    let cats = ["exact", "inclusive", "false", "missing"];
    format!(
        "Figure 15: Overlap precision vs threshold, versions 3-4 (GtoPdb)\n\n{}\nmax exact matches at θ={:.2}\n",
        stacked_rows("Overlap", &labels, &cats, &counts),
        best.1
    )
}

/// Fig 16: execution times on the growing DBpedia-like dataset.
pub fn fig16(opts: &ReproOptions) -> String {
    let ds = generate_dbpedia(&DbpediaConfig::default().scaled(opts.scale));
    let cfg = OverlapConfig {
        theta: opts.theta,
        ..OverlapConfig::default()
    };
    let mut rows = Vec::new();
    for i in 0..ds.len() {
        let j = if i == 0 { 0 } else { i - 1 };
        let c = combined(&ds, j, i);
        let s = ds.versions[i].stats();
        let t0 = Instant::now();
        let t = trivial_partition(&c);
        let t_trivial = t0.elapsed();
        drop(t);
        let t0 = Instant::now();
        let h = hybrid_partition(&c);
        let t_hybrid = t0.elapsed();
        drop(h);
        let t0 = Instant::now();
        let o = overlap_align(&c, &ds.vocab, cfg);
        let t_overlap = t0.elapsed();
        drop(o);
        rows.push(vec![
            (i + 1).to_string(),
            s.edges.to_string(),
            s.uris.to_string(),
            s.literals.to_string(),
            format!("{:.3}", t_trivial.as_secs_f64()),
            format!("{:.3}", t_hybrid.as_secs_f64()),
            format!("{:.3}", t_overlap.as_secs_f64()),
        ]);
    }
    format!(
        "Figure 16: evaluation time on the DBpedia-like subset\n(aligning each version with its predecessor)\n{}",
        simple_table(
            &[
                "Version", "Triples", "URIs", "Literals", "Trivial(s)",
                "Hybrid(s)", "Overlap(s)",
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReproOptions {
        ReproOptions {
            scale: 0.15,
            theta: 0.65,
        }
    }

    #[test]
    fn fig9_renders() {
        let s = fig9(&tiny());
        assert!(s.contains("Version"));
        assert!(s.lines().count() > 10);
    }

    #[test]
    fn fig12_renders() {
        let s = fig12(&tiny());
        assert!(s.contains("GtoPdb"));
    }

    #[test]
    fn fig13_shape() {
        let s = fig13(&tiny());
        assert!(s.contains("Hybrid"));
        assert!(s.contains("Total"));
        // 9 consecutive pairs.
        assert!(s.contains("9-10"));
    }

    #[test]
    fn fig16_reports_times() {
        let s = fig16(&ReproOptions {
            scale: 0.1,
            theta: 0.65,
        });
        assert!(s.contains("Overlap(s)"));
    }
}
