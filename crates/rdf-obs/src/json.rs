//! A minimal JSON reader/escaper.
//!
//! The container building this workspace is offline (no serde), and the
//! only JSON this repo must *read* is its own flat trace events plus
//! bench records — small, one object per line. This is a straightforward
//! recursive-descent parser over the full JSON grammar, kept here so
//! `rdf stats` and the trace-validation tests share one implementation.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; trace values fit exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a number
    /// that is a non-negative integer representable in 53 bits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Escape a string for inclusion between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16)
            .map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1)
                                        == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self
                                            .err("invalid low surrogate"));
                                    }
                                    0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00)
                                } else {
                                    return Err(
                                        self.err("lone high surrogate")
                                    );
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                u32::from(hi)
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| {
                                    self.err("invalid code point")
                                })?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("valid UTF-8 slice"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_event_lines() {
        let v = parse(
            r#"{"ev":"span","name":"refine.round","us":412,"round":3,"splits":17}"#,
        )
        .unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("us").unwrap().as_u64(), Some(412));
        assert_eq!(v.get("round").unwrap().as_u64(), Some(3));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(
            r#"{"spans":{"a.b":{"count":2,"total_us":7}},"arr":[1,-2.5,null,true,false,"x"]}"#,
        )
        .unwrap();
        let fam = v.get("spans").unwrap().get("a.b").unwrap();
        assert_eq!(fam.get("count").unwrap().as_u64(), Some(2));
        match v.get("arr").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 6);
                assert_eq!(items[1].as_f64(), Some(-2.5));
                assert_eq!(items[2], Json::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in [
            "plain",
            "quote\" slash\\ tab\t nl\n cr\r ctl\u{1}",
            "unicode π → 🚀",
            "",
        ] {
            let json = format!("{{\"k\":\"{}\"}}", escape(s));
            let v = parse(&json).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s));
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = parse(r#""Aé🚀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé🚀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nul",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        // Beyond 2^53 an f64 no longer holds every integer exactly, so
        // as_u64 refuses rather than silently round.
        assert_eq!(parse("18014398509481984").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parse("2.5e3").unwrap().as_f64(), Some(2500.0));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
