//! The aggregated run report: per-span-family totals, counter and
//! gauge tables, rendered as JSON (for `BENCH_*.json` embedding) or as
//! a text table (`rdf stats`), and re-derivable from a trace file.

use std::fmt::Write as _;

use crate::json::{self, escape, Json};

/// Aggregate over every span event sharing one name ("family"):
/// `refine.round`, `shard.load`, `store.section`, ….
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotal {
    /// Span family name.
    pub name: String,
    /// Number of events emitted.
    pub count: u64,
    /// Sum of the events' elapsed microseconds.
    pub total_us: u64,
}

/// The final aggregate of a recorded run. Produced by
/// [`finish`](crate::Recorder::finish) or re-derived from a trace file
/// with [`RunReport::from_jsonl`]. All tables are sorted by name, so
/// two reports over the same events compare equal regardless of
/// emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// `available_parallelism()` of the recording machine — the same
    /// honesty datum every `BenchRecord` carries.
    pub cores: usize,
    /// Per-family span totals, sorted by name.
    pub spans: Vec<SpanTotal>,
    /// Counter table (name → accumulated sum), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge table (name → maximum observed), sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl RunReport {
    /// Look up a span family by name.
    pub fn span(&self, name: &str) -> Option<&SpanTotal> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The report body as JSON object members (no surrounding braces);
    /// shared by [`RunReport::to_json`] and the trace's final
    /// `{"ev":"report",...}` line.
    pub(crate) fn json_body(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "\"cores\":{}", self.cores);
        out.push_str(",\"spans\":{");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total_us\":{}}}",
                escape(&s.name),
                s.count,
                s.total_us
            );
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
        out
    }

    /// Render as one compact JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_body())
    }

    /// Re-derive a report from a JSONL trace. Span totals are
    /// aggregated from the `"span"` event lines themselves; the
    /// counter/gauge tables and core count come from the final
    /// `"report"` line (they never appear as per-update events). Every
    /// line must parse as a JSON object with an `"ev"` key, and span
    /// lines must carry `"name"` and `"us"` — anything else is an
    /// error naming the offending line.
    pub fn from_jsonl(text: &str) -> Result<RunReport, String> {
        let mut spans: Vec<SpanTotal> = Vec::new();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut cores = 0usize;
        let mut saw_report = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ev = v
                .get("ev")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    format!("line {}: missing \"ev\" key", lineno + 1)
                })?;
            match ev {
                "span" => {
                    let name = v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| {
                            format!(
                                "line {}: span without \"name\"",
                                lineno + 1
                            )
                        })?;
                    let us =
                        v.get("us").and_then(Json::as_u64).ok_or_else(
                            || {
                                format!(
                                    "line {}: span without \"us\"",
                                    lineno + 1
                                )
                            },
                        )?;
                    match spans.iter_mut().find(|s| s.name == name) {
                        Some(s) => {
                            s.count += 1;
                            s.total_us = s.total_us.saturating_add(us);
                        }
                        None => spans.push(SpanTotal {
                            name: name.to_string(),
                            count: 1,
                            total_us: us,
                        }),
                    }
                }
                "report" => {
                    saw_report = true;
                    cores = v
                        .get("cores")
                        .and_then(Json::as_u64)
                        .unwrap_or(0) as usize;
                    for (dst, key) in [
                        (&mut counters, "counters"),
                        (&mut gauges, "gauges"),
                    ] {
                        if let Some(table) =
                            v.get(key).and_then(Json::as_obj)
                        {
                            for (k, val) in table {
                                let n =
                                    val.as_u64().ok_or_else(|| {
                                        format!(
                                            "line {}: non-integer value \
                                             for {key} entry {k:?}",
                                            lineno + 1
                                        )
                                    })?;
                                dst.push((k.clone(), n));
                            }
                        }
                    }
                    // A report from a run with no span events still
                    // knows its span table; use it when the trace has
                    // no per-event lines to aggregate from.
                    if spans.is_empty() {
                        if let Some(table) =
                            v.get("spans").and_then(Json::as_obj)
                        {
                            for (name, fam) in table {
                                spans.push(SpanTotal {
                                    name: name.clone(),
                                    count: fam
                                        .get("count")
                                        .and_then(Json::as_u64)
                                        .unwrap_or(0),
                                    total_us: fam
                                        .get("total_us")
                                        .and_then(Json::as_u64)
                                        .unwrap_or(0),
                                });
                            }
                        }
                    }
                }
                other => {
                    return Err(format!(
                        "line {}: unknown event kind {other:?}",
                        lineno + 1
                    ))
                }
            }
        }
        if spans.is_empty() && !saw_report {
            return Err("trace contains no events".to_string());
        }
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        counters.sort();
        gauges.sort();
        Ok(RunReport {
            cores,
            spans,
            counters,
            gauges,
        })
    }

    /// Render the report as the human-readable table printed by
    /// `rdf stats`.
    pub fn render_table(&self) -> String {
        let name_w = self
            .spans
            .iter()
            .map(|s| s.name.len())
            .chain(std::iter::once("span family".len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(out, "run report (cores = {})", self.cores);
        out.push('\n');
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>12}  {:>12}",
            "span family", "count", "total ms", "mean us"
        );
        for s in &self.spans {
            let total_ms = s.total_us as f64 / 1000.0;
            let mean_us = if s.count > 0 {
                s.total_us as f64 / s.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8}  {:>12.3}  {:>12.1}",
                s.name, s.count, total_ms, mean_us
            );
        }
        if !self.counters.is_empty() {
            out.push('\n');
            let _ = writeln!(out, "counters");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push('\n');
            let _ = writeln!(out, "gauges");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            cores: 2,
            spans: vec![
                SpanTotal {
                    name: "refine.round".into(),
                    count: 3,
                    total_us: 600,
                },
                SpanTotal {
                    name: "shard.load".into(),
                    count: 4,
                    total_us: 100,
                },
            ],
            counters: vec![("par.barrier_wait_us.w0".into(), 42)],
            gauges: vec![("stream.peak_shard_bytes".into(), 4096)],
        }
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let json = r.to_json();
        // The JSON form parses and carries every table.
        let v = json::parse(&json).unwrap();
        assert_eq!(v.get("cores").unwrap().as_u64(), Some(2));
        let fam = v.get("spans").unwrap().get("refine.round").unwrap();
        assert_eq!(fam.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("stream.peak_shard_bytes")
                .unwrap()
                .as_u64(),
            Some(4096)
        );
        // And a trace consisting only of the report line reproduces it.
        let trace = format!("{{\"ev\":\"report\",{}}}\n", r.json_body());
        let back = RunReport::from_jsonl(&trace).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_jsonl_aggregates_span_lines() {
        let trace = concat!(
            "{\"ev\":\"span\",\"name\":\"refine.round\",\"us\":100,\"round\":1}\n",
            "{\"ev\":\"span\",\"name\":\"refine.round\",\"us\":200,\"round\":2}\n",
            "{\"ev\":\"span\",\"name\":\"shard.load\",\"us\":5,\"shard\":0}\n",
        );
        let r = RunReport::from_jsonl(trace).unwrap();
        assert_eq!(r.span("refine.round").unwrap().count, 2);
        assert_eq!(r.span("refine.round").unwrap().total_us, 300);
        assert_eq!(r.span("shard.load").unwrap().count, 1);
    }

    #[test]
    fn from_jsonl_rejects_bad_lines() {
        assert!(RunReport::from_jsonl("").is_err());
        assert!(RunReport::from_jsonl("not json\n").is_err());
        let no_ev = "{\"name\":\"x\",\"us\":1}\n";
        assert!(RunReport::from_jsonl(no_ev).is_err());
        let no_us = "{\"ev\":\"span\",\"name\":\"x\"}\n";
        assert!(RunReport::from_jsonl(no_us).is_err());
        let unknown = "{\"ev\":\"mystery\"}\n";
        assert!(RunReport::from_jsonl(unknown).is_err());
    }

    #[test]
    fn table_names_span_families() {
        let table = sample().render_table();
        assert!(table.contains("refine.round"));
        assert!(table.contains("shard.load"));
        assert!(table.contains("cores = 2"));
        assert!(table.contains("stream.peak_shard_bytes = 4096"));
    }
}
