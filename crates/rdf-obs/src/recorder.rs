//! Recorder values: the disabled no-op, the JSONL-appending recorder,
//! and the span/counter/gauge handles they hand out.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::escape;
use crate::report::{RunReport, SpanTotal};

/// A value attached to a span event as a JSON field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer, emitted verbatim.
    U64(u64),
    /// Signed integer, emitted verbatim.
    I64(i64),
    /// Floating point; non-finite values are emitted as JSON `null`.
    F64(f64),
    /// String, emitted with JSON escaping.
    Str(String),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Generic interface over recorders, for code that wants to be generic
/// instead of holding the concrete [`Recorder`] enum. Hot paths in this
/// workspace hold the enum directly (one discriminant branch, no
/// virtual dispatch); the trait exists for tests and adapters.
pub trait Record {
    /// `true` when events are actually collected. Hot paths may use
    /// this to skip building expensive field values.
    fn enabled(&self) -> bool;
    /// Start a timed span. The span is emitted when the guard drops.
    fn span(&self, name: &'static str) -> SpanGuard<'_>;
    /// Handle on a named monotone counter.
    fn counter<'a>(&'a self, name: &'a str) -> Counter<'a>;
    /// Handle on a named gauge (aggregated by maximum).
    fn gauge<'a>(&'a self, name: &'a str) -> Gauge<'a>;
}

/// The recorder that records nothing. Every operation is a branch on
/// `None` and returns immediately; guards carry no clock reads.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

/// The instrumentation handle threaded through engines, store readers
/// and the CLI.
///
/// A two-variant enum rather than a `&dyn Record`: the null arm costs
/// one predictable branch per call site and lets the optimiser erase
/// instrumentation from monomorphic loops, which is what keeps the
/// default path inside the <3% `refine_scale` regression budget.
pub enum Recorder {
    /// Record nothing (the default everywhere).
    Null(NullRecorder),
    /// Append JSONL events and aggregate a [`RunReport`].
    Jsonl(JsonlRecorder),
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Recorder::Null(_) => f.write_str("Recorder::Null"),
            Recorder::Jsonl(_) => f.write_str("Recorder::Jsonl(..)"),
        }
    }
}

impl From<NullRecorder> for Recorder {
    fn from(r: NullRecorder) -> Self {
        Recorder::Null(r)
    }
}

impl From<JsonlRecorder> for Recorder {
    fn from(r: JsonlRecorder) -> Self {
        Recorder::Jsonl(r)
    }
}

impl Recorder {
    /// The no-op recorder, usable in `const` position.
    pub const fn disabled() -> Recorder {
        Recorder::Null(NullRecorder)
    }

    /// Recorder appending JSONL events to a freshly created file.
    pub fn jsonl_file(path: impl AsRef<Path>) -> io::Result<Recorder> {
        Ok(Recorder::Jsonl(JsonlRecorder::create(path)?))
    }

    /// Recorder appending JSONL events to an arbitrary sink.
    /// `Recorder::jsonl_writer(Box::new(std::io::sink()))` aggregates a
    /// [`RunReport`] without keeping the event stream.
    pub fn jsonl_writer(out: Box<dyn io::Write + Send>) -> Recorder {
        Recorder::Jsonl(JsonlRecorder::to_writer(out))
    }

    /// `true` when this recorder actually collects events.
    pub fn enabled(&self) -> bool {
        matches!(self, Recorder::Jsonl(_))
    }

    fn as_jsonl(&self) -> Option<&JsonlRecorder> {
        match self {
            Recorder::Null(_) => None,
            Recorder::Jsonl(r) => Some(r),
        }
    }

    /// Start a timed span; emitted as one JSONL event when dropped.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::new(self.as_jsonl(), name)
    }

    /// Handle on a named monotone counter. Counters aggregate into the
    /// final [`RunReport`] only — no per-update event is written, so
    /// trace event counts stay independent of thread scheduling.
    pub fn counter<'a>(&'a self, name: &'a str) -> Counter<'a> {
        Counter {
            rec: self.as_jsonl(),
            name,
        }
    }

    /// Handle on a named gauge. Gauges keep the **maximum** value seen
    /// (the use cases are peaks: residency, shard bytes) and, like
    /// counters, surface only in the final [`RunReport`].
    pub fn gauge<'a>(&'a self, name: &'a str) -> Gauge<'a> {
        Gauge {
            rec: self.as_jsonl(),
            name,
        }
    }

    /// Flush, append the final `{"ev":"report",...}` line and return
    /// the aggregated report. Returns `Ok(None)` for the null recorder.
    /// Calling `finish` more than once re-returns the report without
    /// writing a second line.
    pub fn finish(&self) -> io::Result<Option<RunReport>> {
        match self.as_jsonl() {
            None => Ok(None),
            Some(r) => r.finish().map(Some),
        }
    }
}

impl Record for Recorder {
    fn enabled(&self) -> bool {
        Recorder::enabled(self)
    }
    fn span(&self, name: &'static str) -> SpanGuard<'_> {
        Recorder::span(self, name)
    }
    fn counter<'a>(&'a self, name: &'a str) -> Counter<'a> {
        Recorder::counter(self, name)
    }
    fn gauge<'a>(&'a self, name: &'a str) -> Gauge<'a> {
        Recorder::gauge(self, name)
    }
}

impl Record for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::new(None, name)
    }
    fn counter<'a>(&'a self, name: &'a str) -> Counter<'a> {
        Counter { rec: None, name }
    }
    fn gauge<'a>(&'a self, name: &'a str) -> Gauge<'a> {
        Gauge { rec: None, name }
    }
}

impl Record for JsonlRecorder {
    fn enabled(&self) -> bool {
        true
    }
    fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::new(Some(self), name)
    }
    fn counter<'a>(&'a self, name: &'a str) -> Counter<'a> {
        Counter {
            rec: Some(self),
            name,
        }
    }
    fn gauge<'a>(&'a self, name: &'a str) -> Gauge<'a> {
        Gauge {
            rec: Some(self),
            name,
        }
    }
}

/// A monotonic-clock timed span in flight. Dropping the guard emits
/// one `{"ev":"span",...}` line carrying the elapsed microseconds and
/// any fields attached via [`SpanGuard::field`]. Guards nest freely —
/// each is an independent event.
pub struct SpanGuard<'a> {
    rec: Option<&'a JsonlRecorder>,
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl<'a> SpanGuard<'a> {
    fn new(rec: Option<&'a JsonlRecorder>, name: &'static str) -> Self {
        SpanGuard {
            start: rec.map(|_| Instant::now()),
            rec,
            name,
            fields: Vec::new(),
        }
    }

    /// `true` when this span will actually be emitted.
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Attach a field to the event. No-op (no allocation) when the
    /// span is disabled.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.rec.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (self.rec, self.start) {
            let us = start.elapsed().as_micros() as u64;
            rec.emit_span(self.name, us, &self.fields);
        }
    }
}

/// Handle on a named monotone counter (see [`Recorder::counter`]).
pub struct Counter<'a> {
    rec: Option<&'a JsonlRecorder>,
    name: &'a str,
}

impl Counter<'_> {
    /// Add `n` to the counter's aggregate.
    pub fn add(&self, n: u64) {
        if let Some(rec) = self.rec {
            let mut inner = rec.lock();
            let slot = inner.counters.entry(self.name.to_string()).or_insert(0);
            *slot = slot.saturating_add(n);
        }
    }
}

/// Handle on a named gauge (see [`Recorder::gauge`]).
pub struct Gauge<'a> {
    rec: Option<&'a JsonlRecorder>,
    name: &'a str,
}

impl Gauge<'_> {
    /// Record a gauge observation; the aggregate keeps the maximum.
    pub fn set(&self, v: u64) {
        if let Some(rec) = self.rec {
            let mut inner = rec.lock();
            let slot = inner.gauges.entry(self.name.to_string()).or_insert(0);
            *slot = (*slot).max(v);
        }
    }
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
}

struct Inner {
    out: Box<dyn Write + Send>,
    spans: BTreeMap<&'static str, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    io_error: Option<io::Error>,
    finished: bool,
}

/// The enabled recorder: appends one JSON object per line to a sink
/// and aggregates spans, counters and gauges into a [`RunReport`].
///
/// All state sits behind one mutex; the intended emitters are
/// per-round / per-shard / per-section events, orders of magnitude
/// rarer than the per-node work they measure, so contention is not a
/// concern. I/O errors during emission are sticky and reported by
/// [`JsonlRecorder::finish`] (span emission happens in `Drop`, which
/// cannot fail).
pub struct JsonlRecorder {
    inner: Mutex<Inner>,
}

impl JsonlRecorder {
    /// Create (truncate) `path` and record events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlRecorder> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlRecorder::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Record events into an arbitrary sink. `Box::new(std::io::sink())`
    /// gives aggregation (a [`RunReport`]) without keeping the event
    /// stream — the bench binaries use exactly that.
    pub fn to_writer(out: Box<dyn Write + Send>) -> JsonlRecorder {
        JsonlRecorder {
            inner: Mutex::new(Inner {
                out,
                spans: BTreeMap::new(),
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                io_error: None,
                finished: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn emit_span(&self, name: &'static str, us: u64, fields: &[(&'static str, FieldValue)]) {
        let mut line = String::with_capacity(64 + fields.len() * 16);
        line.push_str("{\"ev\":\"span\",\"name\":\"");
        line.push_str(&escape(name));
        line.push_str("\",\"us\":");
        {
            use std::fmt::Write as _;
            let _ = write!(line, "{us}");
        }
        for (key, value) in fields {
            line.push_str(",\"");
            line.push_str(&escape(key));
            line.push_str("\":");
            value.write_json(&mut line);
        }
        line.push('}');
        line.push('\n');
        let mut inner = self.lock();
        let agg = inner.spans.entry(name).or_default();
        agg.count += 1;
        agg.total_us = agg.total_us.saturating_add(us);
        if inner.io_error.is_none() {
            if let Err(e) = inner.out.write_all(line.as_bytes()) {
                inner.io_error = Some(e);
            }
        }
    }

    fn snapshot(inner: &Inner) -> RunReport {
        RunReport {
            cores: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            spans: inner
                .spans
                .iter()
                .map(|(name, agg)| SpanTotal {
                    name: (*name).to_string(),
                    count: agg.count,
                    total_us: agg.total_us,
                })
                .collect(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Append the final `{"ev":"report",...}` line, flush the sink and
    /// return the aggregated report. If any earlier write failed, that
    /// error surfaces here. A second call re-returns the report without
    /// writing another line.
    pub fn finish(&self) -> io::Result<RunReport> {
        let mut inner = self.lock();
        let report = Self::snapshot(&inner);
        if let Some(e) = inner.io_error.take() {
            return Err(e);
        }
        if !inner.finished {
            inner.finished = true;
            let line =
                format!("{{\"ev\":\"report\",{}}}\n", report.json_body());
            inner.out.write_all(line.as_bytes())?;
            inner.out.flush()?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A shared Vec<u8> sink so tests can read back what was written.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn jsonl_pair() -> (Recorder, SharedBuf) {
        let buf = SharedBuf::default();
        let rec =
            Recorder::Jsonl(JsonlRecorder::to_writer(Box::new(buf.clone())));
        (rec, buf)
    }

    #[test]
    fn null_recorder_is_inert_and_cheap() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        let mut sp = rec.span("x");
        assert!(!sp.enabled());
        sp.field("k", 1u64);
        drop(sp);
        rec.counter("c").add(5);
        rec.gauge("g").set(9);
        assert!(rec.finish().unwrap().is_none());
    }

    #[test]
    fn spans_counters_gauges_aggregate() {
        let (rec, buf) = jsonl_pair();
        assert!(rec.enabled());
        for round in 0..3u32 {
            let mut sp = rec.span("refine.round");
            sp.field("round", round + 1);
            sp.field("label", "seq");
        }
        rec.counter("par.barrier_wait_us.w0").add(7);
        rec.counter("par.barrier_wait_us.w0").add(3);
        rec.gauge("stream.peak_shard_bytes").set(10);
        rec.gauge("stream.peak_shard_bytes").set(4);
        let report = rec.finish().unwrap().unwrap();
        let fam = report.span("refine.round").unwrap();
        assert_eq!(fam.count, 3);
        assert_eq!(report.counter("par.barrier_wait_us.w0"), Some(10));
        // Gauges keep the maximum, not the last value.
        assert_eq!(report.gauge("stream.peak_shard_bytes"), Some(10));

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> =
            text.lines().filter(|l| !l.trim().is_empty()).collect();
        // 3 span events + 1 report line; counters/gauges emit nothing.
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v = crate::json::parse(line).expect("valid JSON line");
            assert!(v.get("ev").is_some());
        }
        assert!(lines[3].contains("\"ev\":\"report\""));
        // Round-trip: parsing the trace reproduces the aggregates.
        let parsed = RunReport::from_jsonl(&text).unwrap();
        assert_eq!(parsed.span("refine.round").unwrap().count, 3);
        assert_eq!(parsed.counter("par.barrier_wait_us.w0"), Some(10));
        assert_eq!(parsed.gauge("stream.peak_shard_bytes"), Some(10));
    }

    #[test]
    fn finish_is_idempotent() {
        let (rec, buf) = jsonl_pair();
        rec.span("s");
        let a = rec.finish().unwrap().unwrap();
        let b = rec.finish().unwrap().unwrap();
        assert_eq!(a.span("s").unwrap().count, b.span("s").unwrap().count);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text.lines().filter(|l| l.contains("\"ev\":\"report\"")).count(),
            1
        );
    }

    #[test]
    fn string_fields_are_escaped() {
        let (rec, buf) = jsonl_pair();
        {
            let mut sp = rec.span("s");
            sp.field("path", "a\"b\\c\nd");
        }
        rec.finish().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let first = text.lines().next().unwrap();
        let v = crate::json::parse(first).unwrap();
        assert_eq!(v.get("path").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let (rec, _buf) = jsonl_pair();
        let rec = Arc::new(rec);
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    let mut sp = rec.span("shard.load");
                    sp.field("worker", w);
                    rec.counter(&format!("w{w}")).add(1);
                });
            }
        });
        let report = rec.finish().unwrap().unwrap();
        assert_eq!(report.span("shard.load").unwrap().count, 4);
        for w in 0..4 {
            assert_eq!(report.counter(&format!("w{w}")), Some(1));
        }
    }
}
