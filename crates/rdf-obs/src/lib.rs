//! Structured tracing and metrics for the alignment pipeline.
//!
//! The workspace has three execution modes for the same fixpoint —
//! sequential reference, gang-parallel [`RefineEngine`], shard-streaming
//! [`StreamingRefineEngine`] — whose *equivalence* is proven by the
//! bit-identity suites but whose *behavior* (rounds, splits per round,
//! signature vs. canonicalise time, barrier waits, shard I/O, peak
//! residency) used to be invisible outside the bench binaries. This
//! crate makes that behavior observable without perturbing it:
//!
//! * [`Recorder`] — the instrumentation handle threaded through hot
//!   paths. It is a two-variant enum, not a `&dyn` trait object: the
//!   disabled arm ([`NullRecorder`]) is a unit struct, every operation
//!   starts with a branch on the discriminant, and the compiler deletes
//!   the instrumented arm from monomorphic hot loops. The [`Record`]
//!   trait exists for code that wants to be generic over recorders.
//! * [`SpanGuard`] — a monotonic-clock timed, nestable span. Created by
//!   [`Recorder::span`], annotated with [`SpanGuard::field`], emitted as
//!   one JSONL line when dropped.
//! * counters ([`Recorder::counter`]) and gauges ([`Recorder::gauge`]) —
//!   aggregate-only metrics. They deliberately emit **no** per-update
//!   event lines, so the number of events in a trace depends only on the
//!   structure of the run (rounds, shards, sections), never on the
//!   thread count — that invariant is what lets the test suite assert
//!   event-count determinism across thread counts.
//! * [`JsonlRecorder`] — the enabled recorder: appends one JSON object
//!   per line (see `docs/TRACE_FORMAT.md`) and aggregates everything
//!   into a final [`RunReport`].
//! * [`RunReport`] — per-span-family totals, counter table, gauge table
//!   and core count; renders as JSON (embedded in `BENCH_*.json`) or as
//!   a text table (`rdf stats`).
//!
//! There is intentionally **no** global or thread-local recorder.
//! Recorders are plain values handed down by the caller (usually as
//! `Arc<Recorder>`), so two engines in one process never share state,
//! tests are isolated for free, and a run's trace is complete exactly
//! when its recorder is finished — determinism and test isolation beat
//! the convenience of a `static`.
//!
//! [`RefineEngine`]: ../rdf_align/struct.RefineEngine.html
//! [`StreamingRefineEngine`]: ../rdf_align/struct.StreamingRefineEngine.html

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
mod recorder;
mod report;

pub use recorder::{
    Counter, FieldValue, Gauge, JsonlRecorder, NullRecorder, Record,
    Recorder, SpanGuard,
};
pub use report::{RunReport, SpanTotal};
