//! Deterministic word pools for synthetic labels.
//!
//! Labels must look like curated-ontology text (multi-word names,
//! definitions) because the overlap heuristic characterises literals by
//! their word sets; single-token labels would make the literal round of
//! Algorithm 2 vacuous.

use rand::Rng;

/// Domain-flavoured word pool (EFO/GtoPdb-ish vocabulary).
pub const WORDS: &[&str] = &[
    "receptor", "ligand", "protein", "kinase", "channel", "factor",
    "experimental", "ontology", "cell", "tissue", "disease", "assay",
    "binding", "agonist", "antagonist", "inhibitor", "activator", "enzyme",
    "membrane", "nuclear", "cytoplasmic", "transport", "signal", "pathway",
    "expression", "regulation", "transcription", "translation", "peptide",
    "hormone", "antibody", "antigen", "epithelial", "neural", "cardiac",
    "hepatic", "renal", "pulmonary", "vascular", "immune", "metabolic",
    "genetic", "molecular", "cellular", "clinical", "therapeutic", "adverse",
    "response", "sample", "variable", "line", "organism", "human", "mouse",
    "rat", "zebrafish", "culture", "growth", "differentiation", "apoptosis",
    "proliferation", "adhesion", "migration", "morphology", "phenotype",
    "genotype", "allele", "variant", "mutation", "polymorphism", "marker",
    "probe", "vector", "plasmid", "construct", "domain", "motif", "residue",
    "subunit", "complex", "dimer", "monomer", "isoform", "homolog",
    "ortholog", "paralog", "family", "superfamily", "class", "subclass",
    "type", "group", "region", "site", "locus", "sequence", "structure",
    "function", "activity", "affinity", "potency", "efficacy", "selectivity",
];

/// Pick `n` words from the pool to form a label.
pub fn make_label(rng: &mut impl Rng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

/// Word-level edit of a label: replace, insert or delete one word
/// (mirrors the literal edits the paper observes between versions).
pub fn edit_label(rng: &mut impl Rng, label: &str) -> String {
    let mut words: Vec<&str> = label.split(' ').collect();
    if words.is_empty() {
        return WORDS[rng.gen_range(0..WORDS.len())].to_string();
    }
    match rng.gen_range(0..3u8) {
        0 => {
            // Replace one word.
            let i = rng.gen_range(0..words.len());
            words[i] = WORDS[rng.gen_range(0..WORDS.len())];
        }
        1 => {
            // Insert a word.
            let i = rng.gen_range(0..=words.len());
            words.insert(i, WORDS[rng.gen_range(0..WORDS.len())]);
        }
        _ => {
            // Delete a word (unless that would empty the label).
            if words.len() > 1 {
                let i = rng.gen_range(0..words.len());
                words.remove(i);
            } else {
                words[0] = WORDS[rng.gen_range(0..WORDS.len())];
            }
        }
    }
    words.join(" ")
}

/// Character-level typo: swap, duplicate or drop one character.
pub fn typo(rng: &mut impl Rng, label: &str) -> String {
    let chars: Vec<char> = label.chars().collect();
    if chars.len() < 2 {
        return format!("{label}x");
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out: Vec<char> = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => out.swap(i, i + 1),
        1 => out.insert(i, chars[i]),
        _ => {
            out.remove(i);
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn labels_have_requested_word_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in 1..6 {
            let l = make_label(&mut rng, n);
            assert_eq!(l.split(' ').count(), n);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = make_label(&mut SmallRng::seed_from_u64(7), 4);
        let b = make_label(&mut SmallRng::seed_from_u64(7), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn edit_changes_at_most_one_word() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let l = make_label(&mut rng, 5);
            let e = edit_label(&mut rng, &l);
            let n1 = l.split(' ').count() as i64;
            let n2 = e.split(' ').count() as i64;
            assert!((n1 - n2).abs() <= 1, "{l} -> {e}");
            assert!(!e.is_empty());
        }
    }

    #[test]
    fn typo_close_in_edit_distance() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let l = make_label(&mut rng, 3);
            let t = typo(&mut rng, &l);
            let d = rdf_edit_distance_check(&l, &t);
            assert!(d <= 2, "{l} -> {t} distance {d}");
        }
    }

    // A tiny local Levenshtein to avoid a dev-dependency cycle.
    fn rdf_edit_distance_check(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        for (i, ca) in a.iter().enumerate() {
            let mut curr = vec![i + 1];
            for (j, cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                curr.push(
                    (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1),
                );
            }
            prev = curr;
        }
        prev[b.len()]
    }
}
