//! DBpedia-category-like growing dataset (§5.3 scalability workload).
//!
//! The paper's scalability runs use a DBpedia subset with category
//! information: a SKOS-ish category hierarchy (`skos:broader`) plus
//! Wikipedia article categorisation (`dcterms:subject`), growing from
//! 2.6M nodes / 7.6M edges (v3.0) to 4.2M / 13.7M (v3.5). The generator
//! reproduces the *growth* trend at a configurable scale: each version
//! keeps the previous content (plus light label churn) and adds new
//! categories and articles.

use crate::dataset::{EvolvingDataset, VersionedGraph};
use crate::words::{edit_label, make_label};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdf_model::{FxHashMap, RdfGraphBuilder, Vocab};

/// Configuration of the DBpedia-like generator.
#[derive(Debug, Clone)]
pub struct DbpediaConfig {
    /// Categories in the first version.
    pub categories: usize,
    /// Articles in the first version.
    pub articles: usize,
    /// Number of versions.
    pub versions: usize,
    /// Per-version growth factor (applied to both kinds).
    pub growth: f64,
    /// Fraction of labels edited per version.
    pub churn: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        DbpediaConfig {
            categories: 400,
            articles: 1600,
            versions: 6,
            growth: 1.10,
            churn: 0.01,
            seed: 0xDB9,
        }
    }
}

impl DbpediaConfig {
    /// Scale both node kinds (≈ 650 for paper scale).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.categories =
            ((self.categories as f64) * factor).round() as usize;
        self.articles = ((self.articles as f64) * factor).round() as usize;
        self
    }
}

struct Category {
    label: String,
    parent: Option<usize>,
}

struct Article {
    label: String,
    subjects: Vec<usize>,
}

/// Generate the DBpedia-like growing dataset.
pub fn generate_dbpedia(config: &DbpediaConfig) -> EvolvingDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut cats: Vec<Category> = Vec::new();
    let mut arts: Vec<Article> = Vec::new();

    let grow = |cats: &mut Vec<Category>,
                    arts: &mut Vec<Article>,
                    n_cats: usize,
                    n_arts: usize,
                    rng: &mut SmallRng| {
        while cats.len() < n_cats {
            let parent = if cats.is_empty() {
                None
            } else {
                Some(rng.gen_range(0..cats.len()))
            };
            cats.push(Category {
                label: { let n = rng.gen_range(1..4); make_label(rng, n) },
                parent,
            });
        }
        while arts.len() < n_arts {
            let k = rng.gen_range(1..4usize);
            let subjects =
                (0..k).map(|_| rng.gen_range(0..cats.len())).collect();
            arts.push(Article {
                label: { let n = rng.gen_range(2..6); make_label(rng, n) },
                subjects,
            });
        }
    };

    let mut vocab = Vocab::new();
    let mut versions = Vec::new();
    let mut n_cats = config.categories;
    let mut n_arts = config.articles;
    for v in 0..config.versions {
        if v > 0 {
            n_cats = ((n_cats as f64) * config.growth).round() as usize;
            n_arts = ((n_arts as f64) * config.growth).round() as usize;
            // Label churn on existing entities.
            let n_edit = ((cats.len() + arts.len()) as f64
                * config.churn) as usize;
            for _ in 0..n_edit {
                if rng.gen_bool(0.3) && !cats.is_empty() {
                    let i = rng.gen_range(0..cats.len());
                    cats[i].label = edit_label(&mut rng, &cats[i].label);
                } else if !arts.is_empty() {
                    let i = rng.gen_range(0..arts.len());
                    arts[i].label = edit_label(&mut rng, &arts[i].label);
                }
            }
        }
        grow(&mut cats, &mut arts, n_cats, n_arts, &mut rng);
        versions.push(render(&cats, &arts, &mut vocab));
    }

    EvolvingDataset { vocab, versions }
}

fn render(
    cats: &[Category],
    arts: &[Article],
    vocab: &mut Vocab,
) -> VersionedGraph {
    let mut b = RdfGraphBuilder::new(vocab);
    let mut entities = FxHashMap::default();
    let cat_uri =
        |i: usize| format!("http://dbpedia.org/resource/Category:c{i}");
    for (i, c) in cats.iter().enumerate() {
        let uri = cat_uri(i);
        let n = b.uri_node(&uri);
        entities.insert(format!("cat:{i}"), n);
        b.uul(
            &uri,
            "http://www.w3.org/2000/01/rdf-schema#label",
            &c.label,
        );
        if let Some(p) = c.parent {
            b.uuu(
                &uri,
                "http://www.w3.org/2004/02/skos/core#broader",
                &cat_uri(p),
            );
        }
    }
    for (i, a) in arts.iter().enumerate() {
        let uri = format!("http://dbpedia.org/resource/a{i}");
        let n = b.uri_node(&uri);
        entities.insert(format!("art:{i}"), n);
        b.uul(
            &uri,
            "http://www.w3.org/2000/01/rdf-schema#label",
            &a.label,
        );
        for &s in &a.subjects {
            b.uuu(
                &uri,
                "http://purl.org/dc/terms/subject",
                &cat_uri(s),
            );
        }
    }
    VersionedGraph {
        graph: b.finish(),
        entities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_grow_proportionally() {
        let ds = generate_dbpedia(&DbpediaConfig {
            categories: 100,
            articles: 300,
            versions: 6,
            ..DbpediaConfig::default()
        });
        let sizes: Vec<usize> =
            ds.versions.iter().map(|v| v.stats().edges).collect();
        for w in sizes.windows(2) {
            assert!(w[1] > w[0], "sizes {sizes:?}");
        }
        // Final ≈ initial × 1.1^5.
        let ratio = sizes[5] as f64 / sizes[0] as f64;
        assert!(ratio > 1.3 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn no_blanks() {
        let ds = generate_dbpedia(&DbpediaConfig::default());
        for v in &ds.versions {
            assert_eq!(v.stats().blanks, 0);
        }
    }

    #[test]
    fn old_entities_persist() {
        let ds = generate_dbpedia(&DbpediaConfig::default());
        let gt = ds.ground_truth(0, 5);
        // Every v1 entity persists (growth-only evolution).
        assert_eq!(gt.len(), ds.versions[0].entities.len());
    }

    #[test]
    fn deterministic() {
        let a = generate_dbpedia(&DbpediaConfig::default());
        let b = generate_dbpedia(&DbpediaConfig::default());
        assert_eq!(
            a.versions[5].graph.triple_count(),
            b.versions[5].graph.triple_count()
        );
    }
}
