//! GtoPdb-like evolving relational database, exported to RDF per version
//! (§5.2 workload).
//!
//! A pharmacology-flavoured schema (families, targets, ligands,
//! interactions, references) is populated and evolved over versions:
//! mostly insertions (with a large burst between versions 3 and 4, as the
//! paper observes), some attribute updates, few cascading deletions, and
//! *no key changes* (GtoPdb keys are persistent). Each version is
//! exported through the W3C Direct Mapping under a per-version URI
//! prefix, so no URIs are shared across versions — the setting that
//! makes Trivial and Deblank align nothing and isolates Hybrid/Overlap.

use crate::dataset::{EvolvingDataset, VersionedGraph};
use crate::words::{edit_label, make_label};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdf_model::Vocab;
use rdf_relational::{
    direct_mapping, ColumnType, Database, DeleteMode, MappingOptions,
    SchemaBuilder, TableBuilder, Value,
};

/// Configuration of the GtoPdb-like generator.
#[derive(Debug, Clone)]
pub struct GtopdbConfig {
    /// Ligands in version 1 (other tables scale from this).
    pub ligands: usize,
    /// Number of versions.
    pub versions: usize,
    /// RNG seed.
    pub seed: u64,
    /// Per-transition growth factors (len ≥ versions − 1); index `i` is
    /// the growth from version `i` to `i+1`. The default has the large
    /// v3→v4 burst and the minute v7→v8 change reported by the paper.
    pub growth: Vec<f64>,
    /// Fraction of rows whose text attributes are edited per transition.
    pub update_rate: f64,
    /// Fraction of ligands deleted (cascading) per transition.
    pub delete_rate: f64,
    /// Probability that an inserted ligand clones the attribute profile
    /// of a just-deleted row (new key, new-ish name, same values). These
    /// clones are what the paper observes as false matches: inserted
    /// nodes whose outbound neighbourhood consists mostly of
    /// previously-existing values (§5.2).
    pub clone_deleted_rate: f64,
    /// URI prefix template; `{}` is replaced by the 1-based version.
    pub prefix_template: String,
}

impl Default for GtopdbConfig {
    fn default() -> Self {
        GtopdbConfig {
            ligands: 120,
            versions: 10,
            seed: 0x670,
            growth: vec![1.06, 1.05, 1.35, 1.05, 1.08, 1.04, 1.005, 1.05, 1.06],
            update_rate: 0.03,
            delete_rate: 0.015,
            clone_deleted_rate: 0.7,
            prefix_template: "http://gtopdb.org/ver{}/".into(),
        }
    }
}

impl GtopdbConfig {
    /// Scale the base ligand count.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.ligands = ((self.ligands as f64) * factor).round() as usize;
        self
    }
}

/// Build the pharmacology schema.
pub fn gtopdb_schema() -> rdf_relational::Schema {
    SchemaBuilder::new()
        .table(
            TableBuilder::new("family")
                .column("family_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key(&["family_id"]),
        )
        .table(
            TableBuilder::new("target")
                .column("target_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("abbreviation", ColumnType::Text)
                .column("species", ColumnType::Text)
                .column("family_id", ColumnType::Int)
                .primary_key(&["target_id"])
                .foreign_key(&["family_id"], "family"),
        )
        .table(
            TableBuilder::new("ligand")
                .column("ligand_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("type", ColumnType::Text)
                .nullable("species", ColumnType::Text)
                .nullable("comment", ColumnType::Text)
                .column("approved", ColumnType::Text)
                .primary_key(&["ligand_id"]),
        )
        .table(
            TableBuilder::new("interaction")
                .column("interaction_id", ColumnType::Int)
                .column("ligand_id", ColumnType::Int)
                .column("target_id", ColumnType::Int)
                .column("action", ColumnType::Text)
                .nullable("affinity", ColumnType::Float)
                .primary_key(&["interaction_id"])
                .foreign_key(&["ligand_id"], "ligand")
                .foreign_key(&["target_id"], "target"),
        )
        .table(
            TableBuilder::new("reference")
                .column("reference_id", ColumnType::Int)
                .column("title", ColumnType::Text)
                .column("year", ColumnType::Int)
                .column("journal", ColumnType::Text)
                .primary_key(&["reference_id"]),
        )
        .build()
        .expect("static schema is valid")
}

/// Id counters for persistent keys.
struct Counters {
    family: i64,
    target: i64,
    ligand: i64,
    interaction: i64,
    reference: i64,
}

/// Generate the GtoPdb-like evolving dataset.
pub fn generate_gtopdb(config: &GtopdbConfig) -> EvolvingDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut db = Database::new(gtopdb_schema());
    let mut counters = Counters {
        family: 0,
        target: 0,
        ligand: 0,
        interaction: 0,
        reference: 0,
    };

    // Version 1 population.
    let n_fam = (config.ligands / 12).max(2);
    let n_tgt = (config.ligands * 6 / 10).max(3);
    for _ in 0..n_fam {
        insert_family(&mut db, &mut counters, &mut rng);
    }
    for _ in 0..n_tgt {
        insert_target(&mut db, &mut counters, &mut rng);
    }
    for _ in 0..config.ligands {
        insert_ligand(&mut db, &mut counters, &mut rng);
    }
    for _ in 0..(config.ligands * 3 / 2) {
        insert_interaction(&mut db, &mut counters, &mut rng);
    }
    for _ in 0..(config.ligands * 8 / 10) {
        insert_reference(&mut db, &mut counters, &mut rng);
    }

    let mut vocab = Vocab::new();
    let mut versions: Vec<VersionedGraph> = Vec::new();
    for v in 0..config.versions {
        if v > 0 {
            evolve(&mut db, &mut counters, &mut rng, config, v - 1);
        }
        let prefix = config.prefix_template.replace("{}", &(v + 1).to_string());
        // §5.2 states the export shares *no* URIs between versions, so
        // rdf:type triples (whose predicate is fixed vocabulary) are
        // disabled; entity URIs, attribute URIs and class URIs all carry
        // the per-version prefix.
        let mut options = MappingOptions::new(prefix);
        options.type_triples = false;
        let export = direct_mapping(&db, &options, &mut vocab);
        versions.push(VersionedGraph {
            graph: export.graph,
            entities: export.entities,
        });
    }

    EvolvingDataset { vocab, versions }
}

fn insert_family(db: &mut Database, c: &mut Counters, rng: &mut SmallRng) {
    c.family += 1;
    db.insert(
        "family",
        vec![c.family.into(), make_label(rng, 3).into()],
    )
    .expect("family insert");
}

fn insert_target(db: &mut Database, c: &mut Counters, rng: &mut SmallRng) {
    c.target += 1;
    let fam = rng.gen_range(1..=c.family);
    db.insert(
        "target",
        vec![
            c.target.into(),
            make_label(rng, 4).into(),
            make_label(rng, 1).into(),
            ["Human", "Mouse", "Rat"][rng.gen_range(0..3usize)].into(),
            fam.into(),
        ],
    )
    .expect("target insert");
}

fn insert_ligand(db: &mut Database, c: &mut Counters, rng: &mut SmallRng) {
    c.ligand += 1;
    let species: Value = if rng.gen_bool(0.7) {
        ["Human", "Mouse", "Rat"][rng.gen_range(0..3usize)].into()
    } else {
        Value::Null
    };
    let comment: Value = if rng.gen_bool(0.5) {
        { let n = rng.gen_range(5..12); make_label(rng, n) }.into()
    } else {
        Value::Null
    };
    db.insert(
        "ligand",
        vec![
            c.ligand.into(),
            { let n = rng.gen_range(2..4); make_label(rng, n) }.into(),
            ["peptide", "small molecule", "antibody", "protein"]
                [rng.gen_range(0..4usize)]
            .into(),
            species,
            comment,
            if rng.gen_bool(0.3) { "yes" } else { "no" }.into(),
        ],
    )
    .expect("ligand insert");
}

/// Insert a ligand that clones a deleted row's attribute profile: new
/// persistent key, lightly-edited name, identical remaining values.
fn insert_ligand_clone(
    db: &mut Database,
    c: &mut Counters,
    rng: &mut SmallRng,
    profile: &[Value],
) {
    c.ligand += 1;
    let name = edit_label(rng, &profile[1].lexical());
    db.insert(
        "ligand",
        vec![
            c.ligand.into(),
            name.into(),
            profile[2].clone(),
            profile[3].clone(),
            profile[4].clone(),
            profile[5].clone(),
        ],
    )
    .expect("ligand clone insert");
}

fn insert_interaction(db: &mut Database, c: &mut Counters, rng: &mut SmallRng) {
    c.interaction += 1;
    // Reference live rows (deletion leaves key gaps, so sample keys).
    let lig = sample_key(db, "ligand", rng);
    let tgt = sample_key(db, "target", rng);
    let affinity: Value = if rng.gen_bool(0.8) {
        rng.gen_range::<f64, _>(4.0..11.0).into()
    } else {
        Value::Null
    };
    db.insert(
        "interaction",
        vec![
            c.interaction.into(),
            lig.into(),
            tgt.into(),
            ["agonist", "antagonist", "inhibitor", "activator"]
                [rng.gen_range(0..4usize)]
            .into(),
            affinity,
        ],
    )
    .expect("interaction insert");
}

fn insert_reference(db: &mut Database, c: &mut Counters, rng: &mut SmallRng) {
    c.reference += 1;
    db.insert(
        "reference",
        vec![
            c.reference.into(),
            { let n = rng.gen_range(5..10); make_label(rng, n) }.into(),
            rng.gen_range(1990..2016i64).into(),
            make_label(rng, 2).into(),
        ],
    )
    .expect("reference insert");
}

fn sample_key(db: &Database, table: &str, rng: &mut SmallRng) -> i64 {
    let keys = db.keys(table);
    let k = &keys[rng.gen_range(0..keys.len())];
    k.parse().expect("integer key")
}

/// Apply one version transition to the database.
fn evolve(
    db: &mut Database,
    counters: &mut Counters,
    rng: &mut SmallRng,
    config: &GtopdbConfig,
    transition: usize,
) {
    let growth = config
        .growth
        .get(transition)
        .copied()
        .unwrap_or(1.05);
    // The insertion burst comes with extra churn (the paper's pair 3-4
    // combines the largest insertion wave with its worst precision).
    let delete_rate = if growth > 1.2 {
        config.delete_rate * 3.0
    } else {
        config.delete_rate
    };

    // Deletions first (cascade through interactions), keeping the
    // deleted attribute profiles for cloning into insertions.
    let keys = db.keys("ligand");
    let n_del = ((keys.len() as f64) * delete_rate).ceil() as usize;
    let mut deleted_profiles: Vec<Vec<Value>> = Vec::new();
    for _ in 0..n_del {
        let keys = db.keys("ligand");
        let k = &keys[rng.gen_range(0..keys.len())];
        deleted_profiles.push(db.get("ligand", k).expect("row").clone());
        db.delete("ligand", k, DeleteMode::Cascade).expect("delete");
    }

    // Attribute updates (names, comments) — no key changes.
    for table in ["ligand", "target", "reference"] {
        let keys = db.keys(table);
        let n_upd = ((keys.len() as f64) * config.update_rate).ceil() as usize;
        for _ in 0..n_upd {
            let k = &keys[rng.gen_range(0..keys.len())];
            let (col, val): (&str, Value) = match table {
                "ligand" => {
                    if rng.gen_bool(0.5) {
                        let old = db.get("ligand", k).unwrap()[1].lexical();
                        ("name", edit_label(rng, &old).into())
                    } else {
                        ("comment", { let n = rng.gen_range(5..12); make_label(rng, n) }.into())
                    }
                }
                "target" => {
                    let old = db.get("target", k).unwrap()[1].lexical();
                    ("name", edit_label(rng, &old).into())
                }
                _ => {
                    let old = db.get("reference", k).unwrap()[1].lexical();
                    ("title", edit_label(rng, &old).into())
                }
            };
            db.update(table, k, col, val).expect("update");
        }
    }

    // Insertions to reach the growth factor; some clone the profile of
    // a deleted row (fresh key, edited name, same attribute values).
    let target_ligands =
        ((db.row_count("ligand") as f64) * growth).round() as usize;
    while db.row_count("ligand") < target_ligands {
        if rng.gen_bool(0.08) {
            insert_family(db, counters, rng);
        }
        if rng.gen_bool(0.5) {
            insert_target(db, counters, rng);
        }
        if !deleted_profiles.is_empty()
            && rng.gen_bool(config.clone_deleted_rate)
        {
            let profile =
                &deleted_profiles[rng.gen_range(0..deleted_profiles.len())];
            insert_ligand_clone(db, counters, rng, profile);
        } else {
            insert_ligand(db, counters, rng);
        }
        insert_interaction(db, counters, rng);
        if rng.gen_bool(0.6) {
            insert_interaction(db, counters, rng);
        }
        if rng.gen_bool(0.7) {
            insert_reference(db, counters, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EvolvingDataset {
        generate_gtopdb(&GtopdbConfig {
            ligands: 60,
            versions: 10,
            ..GtopdbConfig::default()
        })
    }

    #[test]
    fn versions_grow_with_burst() {
        let ds = small();
        assert_eq!(ds.len(), 10);
        let sizes: Vec<usize> =
            ds.versions.iter().map(|v| v.stats().edges).collect();
        // Monotone-ish growth.
        assert!(sizes[9] > sizes[0]);
        // The v3→v4 burst (index 2→3) is the largest relative jump.
        let jumps: Vec<f64> = sizes
            .windows(2)
            .map(|w| w[1] as f64 / w[0] as f64)
            .collect();
        let max_jump = jumps
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!((jumps[2] - max_jump).abs() < 1e-9, "jumps {jumps:?}");
    }

    #[test]
    fn no_blanks_and_no_shared_uris() {
        let ds = small();
        for v in &ds.versions {
            assert_eq!(v.stats().blanks, 0);
        }
        // URIs of different versions never coincide (distinct prefixes).
        let g0 = &ds.versions[0];
        let g1 = &ds.versions[1];
        let uris0: std::collections::HashSet<&str> = g0
            .graph
            .graph()
            .uris()
            .into_iter()
            .map(|n| ds.vocab.text(g0.graph.graph().label(n)))
            .collect();
        for n in g1.graph.graph().uris() {
            let u = ds.vocab.text(g1.graph.graph().label(n));
            assert!(!uris0.contains(u), "shared URI {u}");
        }
    }

    #[test]
    fn ground_truth_covers_most_uris() {
        let ds = small();
        let gt = ds.ground_truth(0, 1);
        let uris = ds.versions[0].graph.graph().uris().len();
        // Most v1 URIs persist into v2.
        assert!(gt.len() * 10 >= uris * 8, "gt {} uris {}", gt.len(), uris);
    }

    #[test]
    fn keys_are_persistent() {
        let ds = small();
        // Spot-check: ligand 1 in v1 and v5 (if alive) have entity keys.
        for v in &ds.versions {
            for k in v.entities.keys().take(5) {
                assert!(
                    k.starts_with("row:")
                        || k.starts_with("table:")
                        || k.starts_with("attr:")
                        || k.starts_with("ref:")
                        || k.starts_with("uri:"),
                    "unexpected key {k}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        for (va, vb) in a.versions.iter().zip(&b.versions) {
            assert_eq!(va.graph.triple_count(), vb.graph.triple_count());
        }
    }
}
