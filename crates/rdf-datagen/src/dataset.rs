//! Evolving-dataset carrier: versions plus persistent entity keys.
//!
//! Generators produce a sequence of graph versions built over one shared
//! vocabulary, and for each version a map from *persistent entity keys*
//! (class ids, table/pk pairs, category names) to node ids. Joining two
//! versions' key maps yields the ground-truth alignment between them —
//! mirroring how the paper derives GtoPdb truth from persistent primary
//! keys.

use rdf_model::{FxHashMap, GraphStats, GroundTruth, NodeId, RdfGraph, Vocab};

/// One generated version with its entity-key map.
#[derive(Debug, Clone)]
pub struct VersionedGraph {
    /// The RDF graph of this version.
    pub graph: RdfGraph,
    /// Persistent entity key → node id (graph-local).
    pub entities: FxHashMap<String, NodeId>,
}

impl VersionedGraph {
    /// Statistics of this version (Figs 9, 12).
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(self.graph.graph())
    }
}

/// A generated evolving dataset.
#[derive(Debug, Clone)]
pub struct EvolvingDataset {
    /// Shared vocabulary across all versions.
    pub vocab: Vocab,
    /// The versions, oldest first.
    pub versions: Vec<VersionedGraph>,
}

impl EvolvingDataset {
    /// Ground truth between two versions, joined on entity keys.
    pub fn ground_truth(&self, source: usize, target: usize) -> GroundTruth {
        let s = &self.versions[source].entities;
        let t = &self.versions[target].entities;
        let mut pairs: Vec<(NodeId, NodeId)> = s
            .iter()
            .filter_map(|(k, &sn)| t.get(k).map(|&tn| (sn, tn)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        GroundTruth::from_pairs(pairs)
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the dataset has no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::RdfGraphBuilder;

    #[test]
    fn ground_truth_joins_keys() {
        let mut vocab = Vocab::new();
        let mut mk = |uri: &str| {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul(uri, "p", "x");
            let n = b.uri_node(uri);
            let g = b.finish();
            let mut entities = FxHashMap::default();
            entities.insert("e:1".to_string(), n);
            VersionedGraph { graph: g, entities }
        };
        let v1 = mk("a:1");
        let v2 = mk("b:1");
        let ds = EvolvingDataset {
            vocab,
            versions: vec![v1, v2],
        };
        let gt = ds.ground_truth(0, 1);
        assert_eq!(gt.len(), 1);
        assert!(!ds.is_empty());
        assert_eq!(ds.len(), 2);
    }
}
