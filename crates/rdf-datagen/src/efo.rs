//! EFO-like evolving ontology generator (§5.1 workload).
//!
//! The Experimental Factor Ontology is OWL rendered as RDF: classes with
//! URI identifiers, annotation literals (label, definition, synonyms),
//! `subClassOf` edges, and *restriction records* represented as blank
//! nodes. The paper reports, for versions 2.34–2.44:
//!
//! * literals are > 75 % of nodes, URIs ≈ 10 %;
//! * blank nodes fluctuate between 7–15 % due to duplicated *bisimilar*
//!   blank records, while their normalised counts grow steadily;
//! * the hybrid/overlap gains come from URI-prefix migrations (e.g.
//!   `purl.org/obo/owl/` → `purl.obolibrary.org/obo/`), one large wave
//!   around version 8, plus URIs that vanish and reappear migrated;
//! * literals undergo small word-level edits between versions.
//!
//! The generator reproduces exactly these mechanisms from a seeded RNG,
//! with persistent class ids as ground truth.

use crate::dataset::{EvolvingDataset, VersionedGraph};
use crate::words::{edit_label, make_label, typo};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdf_model::{FxHashMap, RdfGraphBuilder, Vocab};

/// Configuration of the EFO-like generator.
#[derive(Debug, Clone)]
pub struct EfoConfig {
    /// Classes in the first version.
    pub classes: usize,
    /// Number of versions to generate.
    pub versions: usize,
    /// RNG seed.
    pub seed: u64,
    /// Old URI prefix.
    pub old_prefix: String,
    /// New URI prefix (migration target).
    pub new_prefix: String,
    /// Version (0-based) at which the large migration wave happens.
    pub migration_version: usize,
    /// Fraction of classes that migrate in the wave.
    pub migration_fraction: f64,
    /// Per-version probability that an axiom blank is duplicated
    /// (cycled; drives the blank-count fluctuation of Fig 9).
    pub duplication_schedule: Vec<f64>,
    /// Probability a class's label/definition is edited per version.
    pub edit_rate: f64,
    /// Fraction of classes inserted per version.
    pub insert_rate: f64,
    /// Fraction of classes deleted per version.
    pub delete_rate: f64,
}

impl Default for EfoConfig {
    fn default() -> Self {
        EfoConfig {
            classes: 400,
            versions: 10,
            seed: 0xEF0,
            old_prefix: "http://purl.org/obo/owl/EFO_".into(),
            new_prefix: "http://purl.obolibrary.org/obo/EFO_".into(),
            migration_version: 7,
            migration_fraction: 0.3,
            duplication_schedule: vec![
                0.10, 0.22, 0.08, 0.18, 0.12, 0.25, 0.10, 0.15, 0.20, 0.12,
            ],
            edit_rate: 0.02,
            insert_rate: 0.03,
            delete_rate: 0.01,
        }
    }
}

impl EfoConfig {
    /// Scale the class count (1.0 = default laptop size; ~75 ≈ paper
    /// scale).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.classes = ((self.classes as f64) * factor).round() as usize;
        self
    }
}

/// An OWL-restriction record attached to a class.
#[derive(Debug, Clone)]
struct Axiom {
    property: usize,
    filler: usize,
}

/// Mutable per-class ontology state.
#[derive(Debug, Clone)]
struct ClassState {
    id: usize,
    label: String,
    definition: String,
    synonyms: Vec<String>,
    parent: Option<usize>,
    axiom: Option<Axiom>,
    migrated: bool,
    alive: bool,
    /// Classes that vanish at the migration rehearsal and reappear
    /// migrated two versions later (the paper's "URIs disappearing in
    /// between").
    vanish_window: Option<(usize, usize)>,
}

/// Generate an EFO-like evolving dataset.
pub fn generate_efo(config: &EfoConfig) -> EvolvingDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n_props = 12;
    let mut classes: Vec<ClassState> = Vec::with_capacity(config.classes);
    for id in 0..config.classes {
        classes.push(new_class(&mut rng, id, config.classes));
    }
    // A small cohort vanishes at v2..v3 and reappears migrated at v4.
    for c in classes.iter_mut() {
        if c.id % 16 == 1 {
            c.vanish_window = Some((2, 3));
        }
    }

    let mut next_id = config.classes;
    let mut vocab = Vocab::new();
    let mut versions = Vec::with_capacity(config.versions);

    for v in 0..config.versions {
        // ---- evolve state (skip for the first version) ----
        if v > 0 {
            // Literal edits.
            for c in classes.iter_mut().filter(|c| c.alive) {
                if rng.gen_bool(config.edit_rate) {
                    c.label = edit_label(&mut rng, &c.label);
                }
                if rng.gen_bool(config.edit_rate) {
                    c.definition = edit_label(&mut rng, &c.definition);
                }
                if rng.gen_bool(config.edit_rate / 2.0) {
                    c.label = typo(&mut rng, &c.label);
                }
                if rng.gen_bool(config.edit_rate)
                    && !c.synonyms.is_empty()
                {
                    let i = rng.gen_range(0..c.synonyms.len());
                    c.synonyms[i] = edit_label(&mut rng, &c.synonyms[i]);
                }
            }
            // Deletions.
            let alive_ids: Vec<usize> = classes
                .iter()
                .filter(|c| c.alive)
                .map(|c| c.id)
                .collect();
            let n_del =
                ((alive_ids.len() as f64) * config.delete_rate) as usize;
            for _ in 0..n_del {
                let id = alive_ids[rng.gen_range(0..alive_ids.len())];
                classes[id].alive = false;
            }
            // Insertions.
            let n_ins = ((alive_ids.len() as f64) * config.insert_rate)
                .max(1.0) as usize;
            for _ in 0..n_ins {
                let c = new_class(&mut rng, next_id, next_id);
                classes.push(c);
                next_id += 1;
            }
            // Migration wave.
            if v == config.migration_version {
                for c in classes.iter_mut() {
                    if !c.migrated
                        && (c.id as f64 / next_id as f64)
                            < config.migration_fraction
                    {
                        c.migrated = true;
                    }
                }
            }
        }

        // ---- render this version ----
        let dup_rate = config.duplication_schedule
            [v % config.duplication_schedule.len()];
        versions.push(render_version(
            &classes, v, dup_rate, n_props, config, &mut rng, &mut vocab,
        ));
    }

    EvolvingDataset { vocab, versions }
}

fn new_class(rng: &mut SmallRng, id: usize, parent_bound: usize) -> ClassState {
    let n_syn = rng.gen_range(0..3);
    ClassState {
        id,
        label: { let n = rng.gen_range(2..5); make_label(rng, n) },
        definition: { let n = rng.gen_range(6..13); make_label(rng, n) },
        synonyms: (0..n_syn)
            .map(|_| { let n = rng.gen_range(2..4); make_label(rng, n) })
            .collect(),
        parent: if id == 0 || parent_bound == 0 {
            None
        } else {
            Some(rng.gen_range(0..parent_bound.min(id).max(1)))
        },
        axiom: if rng.gen_bool(0.4) {
            Some(Axiom {
                property: rng.gen_range(0..12),
                filler: rng.gen_range(0..parent_bound.max(1)),
            })
        } else {
            None
        },
        migrated: false,
        alive: true,
        vanish_window: None,
    }
}

fn render_version(
    classes: &[ClassState],
    version: usize,
    dup_rate: f64,
    n_props: usize,
    config: &EfoConfig,
    rng: &mut SmallRng,
    vocab: &mut Vocab,
) -> VersionedGraph {
    let mut b = RdfGraphBuilder::new(vocab);
    let mut entities = FxHashMap::default();

    let uri_of = |c: &ClassState, version: usize| -> String {
        let migrated = c.migrated
            || c.vanish_window.is_some_and(|(_, hi)| {
                version > hi // reappears migrated
            }) && c.id % 16 == 1;
        if migrated {
            format!("{}{:07}", config.new_prefix, c.id)
        } else {
            format!("{}{:07}", config.old_prefix, c.id)
        }
    };
    let visible = |c: &ClassState, version: usize| -> bool {
        c.alive
            && !c
                .vanish_window
                .is_some_and(|(lo, hi)| version >= lo && version <= hi)
    };

    for c in classes {
        if !visible(c, version) {
            continue;
        }
        let uri = uri_of(c, version);
        let s = b.uri_node(&uri);
        entities.insert(format!("class:{}", c.id), s);

        b.uul(&uri, "http://www.w3.org/2000/01/rdf-schema#label", &c.label);
        b.uul(&uri, "http://www.ebi.ac.uk/efo/definition", &c.definition);
        for syn in &c.synonyms {
            b.uul(&uri, "http://www.ebi.ac.uk/efo/alternative_term", syn);
        }
        if let Some(pid) = c.parent {
            let p = &classes[pid];
            if visible(p, version) {
                b.uuu(
                    &uri,
                    "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                    &uri_of(p, version),
                );
            }
        }
        if let Some(ax) = &c.axiom {
            let filler = &classes[ax.filler];
            if visible(filler, version) {
                let copies = if rng.gen_bool(dup_rate) { 2 } else { 1 };
                for copy in 0..copies {
                    let bn = format!("ax{}_{}", c.id, copy);
                    b.uub(
                        &uri,
                        "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                        &bn,
                    );
                    b.buu(
                        &bn,
                        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                        "http://www.w3.org/2002/07/owl#Restriction",
                    );
                    b.buu(
                        &bn,
                        "http://www.w3.org/2002/07/owl#onProperty",
                        &format!(
                            "http://www.ebi.ac.uk/efo/prop{}",
                            ax.property % n_props
                        ),
                    );
                    b.buu(
                        &bn,
                        "http://www.w3.org/2002/07/owl#someValuesFrom",
                        &uri_of(filler, version),
                    );
                    if copy == 0 {
                        let node = b.blank_node(&bn);
                        entities.insert(format!("axiom:{}", c.id), node);
                    }
                }
            }
        }
    }

    VersionedGraph {
        graph: b.finish(),
        entities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EvolvingDataset {
        generate_efo(&EfoConfig {
            classes: 120,
            versions: 10,
            ..EfoConfig::default()
        })
    }

    #[test]
    fn version_count_and_determinism() {
        let a = small();
        let b = small();
        assert_eq!(a.len(), 10);
        for (va, vb) in a.versions.iter().zip(&b.versions) {
            assert_eq!(va.graph.triple_count(), vb.graph.triple_count());
        }
    }

    #[test]
    fn node_kind_proportions_match_paper() {
        let ds = small();
        for v in &ds.versions {
            let s = v.stats();
            assert!(
                s.literal_fraction() > 0.55,
                "literal fraction {}",
                s.literal_fraction()
            );
            assert!(s.blank_fraction() < 0.25, "{}", s.blank_fraction());
            assert!(s.blanks > 0, "some blanks required");
        }
    }

    #[test]
    fn blank_counts_fluctuate() {
        let ds = small();
        let blanks: Vec<usize> = ds.versions.iter().map(|v| v.stats().blanks).collect();
        let min = blanks.iter().min().unwrap();
        let max = blanks.iter().max().unwrap();
        assert!(max > min, "duplication schedule must move blank counts");
    }

    #[test]
    fn ground_truth_shrinks_with_distance() {
        let ds = small();
        let near = ds.ground_truth(0, 1).len();
        let far = ds.ground_truth(0, 9).len();
        assert!(near >= far, "near {near} far {far}");
        assert!(far > 0);
    }

    #[test]
    fn migration_changes_uris_but_keeps_entities() {
        let ds = small();
        let cfg = EfoConfig::default();
        let before = &ds.versions[cfg.migration_version - 1];
        let after = &ds.versions[cfg.migration_version];
        // Some class that migrated: its key is in both, but the URI text
        // changed prefix.
        let mut migrated = 0;
        for (k, &n_before) in &before.entities {
            if !k.starts_with("class:") {
                continue;
            }
            if let Some(&n_after) = after.entities.get(k) {
                let u_before = ds
                    .vocab
                    .text(before.graph.graph().label(n_before))
                    .to_string();
                let u_after =
                    ds.vocab.text(after.graph.graph().label(n_after));
                if u_before != u_after {
                    migrated += 1;
                    assert!(u_before.starts_with(&cfg.old_prefix));
                    assert!(u_after.starts_with(&cfg.new_prefix));
                }
            }
        }
        assert!(migrated > 0, "the migration wave must rename URIs");
    }

    #[test]
    fn vanish_and_reappear_cohort() {
        let ds = small();
        // Cohort classes (id % 16 == 1) are absent in versions 2-3 and
        // back (migrated) from version 4.
        let k = "class:1";
        assert!(ds.versions[0].entities.contains_key(k));
        assert!(!ds.versions[2].entities.contains_key(k));
        assert!(!ds.versions[3].entities.contains_key(k));
        assert!(ds.versions[4].entities.contains_key(k));
    }

    #[test]
    fn scaled_config() {
        let c = EfoConfig::default().scaled(0.5);
        assert_eq!(c.classes, 200);
    }
}
