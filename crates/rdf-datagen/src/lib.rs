//! Synthetic evolving RDF datasets with ground truth.
//!
//! The paper evaluates on three curated datasets we cannot redistribute:
//! EFO releases, GtoPdb releases, and a DBpedia category subset. This
//! crate generates seeded synthetic equivalents that exercise the same
//! code paths and preserve the structural properties the evaluation
//! depends on (see DESIGN.md, "Substitutions"):
//!
//! * [`efo`] — ontology with blank-node restriction records, >75 %
//!   literals, fluctuating duplicated blanks, URI-prefix migrations;
//! * [`gtopdb`] — relational database evolved over versions and exported
//!   via the W3C Direct Mapping with per-version prefixes and persistent
//!   keys (the ground-truth setting);
//! * [`dbpedia`] — growing category/article graph for scalability runs.

#![warn(missing_docs)]

pub mod dataset;
pub mod dbpedia;
pub mod efo;
pub mod gtopdb;
pub mod words;

pub use dataset::{EvolvingDataset, VersionedGraph};
pub use dbpedia::{generate_dbpedia, DbpediaConfig};
pub use efo::{generate_efo, EfoConfig};
pub use gtopdb::{generate_gtopdb, gtopdb_schema, GtopdbConfig};
