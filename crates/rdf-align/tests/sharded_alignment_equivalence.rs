//! The sharded load path must be *invisible* to alignment: running
//! `pipeline::align` over graphs loaded from a sharded store produces
//! the same report — identical dense colors, edge/node metrics and
//! unaligned sets — as over the unsharded store, for Trivial, Deblank
//! and Hybrid at 1 and 4 threads. This extends the PR 3 thread-identity
//! suite to the new load path: shard count and thread count are both
//! pure wall-clock knobs.

use proptest::prelude::*;
use rdf_align::pipeline::{align_with, Method};
use rdf_align::Threads;
use rdf_model::{rebase_into, RdfGraph, RdfGraphBuilder, Vocab};
use rdf_store::{save_graph, save_sharded, ShardedReader, StoreReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rdf-align-sharded-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A random pair of graph versions sharing a vocabulary (same shape as
/// the parallel-refine identity suite).
fn arb_versions() -> impl Strategy<Value = (Vocab, RdfGraph, RdfGraph)> {
    (1usize..20, 1usize..20, any::<u64>()).prop_map(|(m1, m2, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut vocab = Vocab::new();
        let build = |vocab: &mut Vocab,
                     triples: usize,
                     next: &mut dyn FnMut() -> u64| {
            let mut b = RdfGraphBuilder::new(vocab);
            for _ in 0..triples {
                let s = format!("s{}", next() % 6);
                let p = format!("p{}", next() % 4);
                let o = format!("o{}", next() % 6);
                match next() % 6 {
                    0 => b.uuu(&s, &p, &o),
                    1 => b.uul(&s, &p, &o),
                    2 => b.uub(&s, &p, &o),
                    3 => b.bul(&s, &p, &o),
                    4 => b.buu(&s, &p, &o),
                    _ => b.bub(&s, &p, &o),
                }
            }
            b.finish()
        };
        let g1 = build(&mut vocab, m1, &mut next);
        let g2 = build(&mut vocab, m2, &mut next);
        (vocab, g1, g2)
    })
}

/// Load two stores the way the CLI does: each into its own store
/// dictionary, then rebased into one shared session vocabulary.
fn load_pair(
    load: impl Fn(&str) -> (Vocab, RdfGraph),
) -> (Vocab, RdfGraph, RdfGraph) {
    let mut session = Vocab::new();
    let (v1, g1) = load("v1");
    let (v2, g2) = load("v2");
    let g1 = rebase_into(&mut session, &v1, &g1);
    let g2 = rebase_into(&mut session, &v2, &g2);
    (session, g1, g2)
}

const METHODS: [Method; 3] =
    [Method::Trivial, Method::Deblank, Method::Hybrid];
const THREADS: [usize; 2] = [1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Align(sharded load) == Align(unsharded load), method × threads.
    #[test]
    fn sharded_and_unsharded_loads_align_identically(
        (vocab, g1, g2) in arb_versions()
    ) {
        let dir = tmp();
        for (name, g) in [("v1", &g1), ("v2", &g2)] {
            save_graph(dir.join(format!("{name}.rdfb")), &vocab, g)
                .unwrap();
            save_sharded(
                dir.join(format!("{name}.rdfm")),
                &vocab,
                g,
                4,
            )
            .unwrap();
        }

        let (sv, s1, s2) = load_pair(|name| {
            StoreReader::open(dir.join(format!("{name}.rdfb")))
                .unwrap()
                .read_graph()
                .unwrap()
        });
        for t in THREADS {
            let (hv, h1, h2) = load_pair(|name| {
                ShardedReader::open(dir.join(format!("{name}.rdfm")))
                    .unwrap()
                    .read_graph(Threads::Fixed(t))
                    .unwrap()
            });
            // The loads themselves are bit-identical…
            prop_assert_eq!(h1.graph().triples(), s1.graph().triples());
            prop_assert_eq!(h2.graph().triples(), s2.graph().triples());
            prop_assert_eq!(
                h1.graph().labels_raw(),
                s1.graph().labels_raw()
            );
            prop_assert_eq!(hv.len(), sv.len());
            // …and so is every alignment report built on them.
            for method in METHODS {
                let a = align_with(
                    &sv, &s1, &s2, method, Threads::Fixed(t),
                );
                let b = align_with(
                    &hv, &h1, &h2, method, Threads::Fixed(t),
                );
                prop_assert_eq!(
                    a.partition().colors(),
                    b.partition().colors()
                );
                prop_assert_eq!(a.edges.ratio(), b.edges.ratio());
                prop_assert_eq!(
                    a.edges.aligned_instances(),
                    b.edges.aligned_instances()
                );
                prop_assert_eq!(
                    a.nodes.aligned_classes,
                    b.nodes.aligned_classes
                );
                prop_assert_eq!(&a.unaligned, &b.unaligned);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
