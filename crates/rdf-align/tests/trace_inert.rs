//! Instrumentation must be *inert*: an alignment run traced through a
//! [`rdf_obs::JsonlRecorder`] produces bit-identical output (dense
//! colors, §5 metrics, unaligned report) to the same run under the
//! disabled recorder, at every thread count {1, 4} × shard count
//! {1, 4} — and the trace itself is structurally deterministic: the
//! per-family span *counts* (never the timings) are identical across
//! thread counts, because only spans emit event lines and spans are
//! keyed by run structure (rounds, shards, sections), not by worker
//! scheduling.

use proptest::prelude::*;
use rdf_align::pipeline::{
    align_streaming_with, align_streaming_with_recorder, align_with,
    align_with_recorder, Method,
};
use rdf_align::{Recorder, Threads};
use rdf_model::{RdfGraph, RdfGraphBuilder, Vocab};
use rdf_obs::RunReport;
use std::io;
use std::sync::{Arc, Mutex};

/// An in-memory JSONL sink shareable between the recorder (which owns
/// a `Box<dyn Write + Send>`) and the test (which reads it back).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Run one traced alignment, returning the aligned output plus the
/// validated trace aggregate. `RunReport::from_jsonl` re-parses every
/// emitted line (JSON object, `ev` key, `name`/`us` on spans), so a
/// malformed event fails the test here.
fn traced(
    vocab: &Vocab,
    g1: &RdfGraph,
    g2: &RdfGraph,
    method: Method,
    threads: Threads,
    stream_shards: Option<usize>,
) -> (rdf_align::pipeline::Aligned, RunReport) {
    let buf = SharedBuf::default();
    let rec = Arc::new(Recorder::jsonl_writer(Box::new(buf.clone())));
    let out = match stream_shards {
        None => {
            align_with_recorder(vocab, g1, g2, method, threads, Arc::clone(&rec))
        }
        Some(shards) => align_streaming_with_recorder(
            vocab,
            g1,
            g2,
            method,
            threads,
            shards,
            Arc::clone(&rec),
        )
        .expect("partition methods stream"),
    };
    rec.finish().expect("in-memory sink cannot fail");
    let report = RunReport::from_jsonl(&buf.text())
        .expect("every emitted line is schema-valid JSONL");
    (out, report)
}

/// Span families and their event counts — the structural shape of a
/// trace, with every timing stripped.
fn span_counts(report: &RunReport) -> Vec<(String, u64)> {
    report
        .spans
        .iter()
        .map(|s| (s.name.clone(), s.count))
        .collect()
}

/// A random pair of graph versions sharing a vocabulary (same shape as
/// the streaming-equivalence suite).
fn arb_versions() -> impl Strategy<Value = (Vocab, RdfGraph, RdfGraph)> {
    (1usize..24, 1usize..24, any::<u64>()).prop_map(|(m1, m2, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut vocab = Vocab::new();
        let build = |vocab: &mut Vocab,
                     triples: usize,
                     next: &mut dyn FnMut() -> u64| {
            let mut b = RdfGraphBuilder::new(vocab);
            for _ in 0..triples {
                let s = format!("s{}", next() % 6);
                let p = format!("p{}", next() % 4);
                let o = format!("o{}", next() % 6);
                match next() % 6 {
                    0 => b.uuu(&s, &p, &o),
                    1 => b.uul(&s, &p, &o),
                    2 => b.uub(&s, &p, &o),
                    3 => b.bul(&s, &p, &o),
                    4 => b.buu(&s, &p, &o),
                    _ => b.bub(&s, &p, &o),
                }
            }
            b.finish()
        };
        let g1 = build(&mut vocab, m1, &mut next);
        let g2 = build(&mut vocab, m2, &mut next);
        (vocab, g1, g2)
    })
}

const THREADS: [usize; 2] = [1, 4];
const SHARDS: [usize; 2] = [1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Null vs Jsonl recorder: bit-identical alignment output at every
    /// thread × shard configuration, in-RAM and streaming; and the
    /// trace's span counts depend only on the run structure — never on
    /// the thread count.
    #[test]
    fn tracing_is_inert_and_structurally_deterministic(
        (vocab, g1, g2) in arb_versions()
    ) {
        let method = Method::Hybrid;

        // In-RAM path: Null vs Jsonl at each thread count, then span
        // counts across thread counts.
        let mut inram_shapes = Vec::new();
        for t in THREADS {
            let base = align_with(
                &vocab, &g1, &g2, method, Threads::Fixed(t));
            let (out, report) = traced(
                &vocab, &g1, &g2, method, Threads::Fixed(t), None);
            prop_assert_eq!(
                out.partition().colors(), base.partition().colors());
            prop_assert_eq!(out.edges.ratio(), base.edges.ratio());
            prop_assert_eq!(&out.unaligned, &base.unaligned);
            inram_shapes.push(span_counts(&report));
        }
        // Span counts must not depend on thread count.
        prop_assert_eq!(&inram_shapes[0], &inram_shapes[1]);

        // Streaming path: same matrix, plus the peak-shard gauge must
        // be thread-invariant (it is a property of the sharding).
        for shards in SHARDS {
            let mut shapes = Vec::new();
            let mut gauges = Vec::new();
            for t in THREADS {
                let base = align_streaming_with(
                    &vocab, &g1, &g2, method, Threads::Fixed(t), shards,
                ).expect("partition methods stream");
                let (out, report) = traced(
                    &vocab, &g1, &g2, method,
                    Threads::Fixed(t), Some(shards));
                prop_assert_eq!(
                    out.partition().colors(), base.partition().colors());
                prop_assert_eq!(out.edges.ratio(), base.edges.ratio());
                prop_assert_eq!(&out.unaligned, &base.unaligned);
                shapes.push(span_counts(&report));
                gauges.push(report.gauge("stream.peak_shard_bytes"));
            }
            // Neither span counts nor the peak-shard gauge may
            // depend on the thread count.
            prop_assert_eq!(&shapes[0], &shapes[1]);
            prop_assert_eq!(&gauges[0], &gauges[1]);
        }
    }
}
