//! The parallel engine must be *indistinguishable* from the sequential
//! reference: at 1, 2 and 4 threads it must produce partitions with the
//! same dense color vectors — not merely equivalent partitions — for
//! random version pairs, across the Trivial/Deblank/Hybrid method
//! family, and it must be deterministic run to run at a fixed thread
//! count. This is the determinism guarantee the CLI's
//! `--threads 1` vs `--threads 4` CI diff also checks end to end.

use proptest::prelude::*;
use rdf_align::engine::RefineEngine;
use rdf_align::methods::{
    blank_out, deblank_partition_with, hybrid_from_with,
    hybrid_partition_with, trivial_partition,
};
use rdf_align::partition::unaligned_non_literals;
use rdf_align::refine::{
    label_partition, reference_refine_fixpoint_mask, RefineOutcome,
};
use rdf_align::Threads;
use rdf_model::{CombinedGraph, RdfGraph, RdfGraphBuilder, Vocab};

/// A random pair of graph versions sharing a vocabulary: overlapping
/// URI/blank/literal pools so some nodes align, some rename, some churn.
fn arb_versions() -> impl Strategy<Value = (Vocab, RdfGraph, RdfGraph)> {
    (1usize..24, 1usize..24, any::<u64>()).prop_map(|(m1, m2, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut vocab = Vocab::new();
        let build = |vocab: &mut Vocab,
                     triples: usize,
                     next: &mut dyn FnMut() -> u64| {
            let mut b = RdfGraphBuilder::new(vocab);
            for _ in 0..triples {
                let s = format!("s{}", next() % 6);
                let p = format!("p{}", next() % 4);
                let o = format!("o{}", next() % 6);
                match next() % 6 {
                    0 => b.uuu(&s, &p, &o),
                    1 => b.uul(&s, &p, &o),
                    2 => b.uub(&s, &p, &o),
                    3 => b.bul(&s, &p, &o),
                    4 => b.buu(&s, &p, &o),
                    _ => b.bub(&s, &p, &o),
                }
            }
            b.finish()
        };
        let g1 = build(&mut vocab, m1, &mut next);
        let g2 = build(&mut vocab, m2, &mut next);
        (vocab, g1, g2)
    })
}

/// Sequential-reference Deblank: the method's definition run through
/// [`reference_refine_fixpoint_mask`] instead of the engine.
fn reference_deblank(combined: &CombinedGraph) -> RefineOutcome {
    let g = combined.graph();
    let in_x: Vec<bool> = g.nodes().map(|n| g.is_blank(n)).collect();
    reference_refine_fixpoint_mask(g, label_partition(g), &in_x)
}

/// Sequential-reference Hybrid from a given base partition.
fn reference_hybrid_from(
    combined: &CombinedGraph,
    base: rdf_align::Partition,
) -> RefineOutcome {
    let g = combined.graph();
    let unaligned = unaligned_non_literals(&base, combined);
    let blanked = blank_out(&base, &unaligned);
    let mut in_x = vec![false; g.node_count()];
    for &n in &unaligned {
        in_x[n.index()] = true;
    }
    reference_refine_fixpoint_mask(g, blanked, &in_x)
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full bisimulation: engine at every thread count == reference,
    /// same dense colors and same round count.
    #[test]
    fn bisimulation_identical_to_reference((vocab, g1, g2) in arb_versions()) {
        let c = CombinedGraph::union(&vocab, &g1, &g2);
        let g = c.graph();
        let all = vec![true; g.node_count()];
        let reference =
            reference_refine_fixpoint_mask(g, label_partition(g), &all);
        for t in THREAD_COUNTS {
            let out = RefineEngine::new(Threads::Fixed(t)).bisimulation(g);
            prop_assert_eq!(
                out.partition.colors(),
                reference.partition.colors()
            );
            prop_assert_eq!(out.rounds, reference.rounds);
        }
    }

    /// Deblank: engine at every thread count == sequential reference.
    #[test]
    fn deblank_identical_to_reference((vocab, g1, g2) in arb_versions()) {
        let c = CombinedGraph::union(&vocab, &g1, &g2);
        let reference = reference_deblank(&c);
        for t in THREAD_COUNTS {
            let mut engine = RefineEngine::new(Threads::Fixed(t));
            let out = deblank_partition_with(&c, &mut engine);
            prop_assert_eq!(
                out.partition.colors(),
                reference.partition.colors()
            );
        }
    }

    /// Hybrid (from Deblank *and* from Trivial, per §3.4): engine at
    /// every thread count == sequential reference, dense colors equal.
    #[test]
    fn hybrid_identical_to_reference((vocab, g1, g2) in arb_versions()) {
        let c = CombinedGraph::union(&vocab, &g1, &g2);
        let ref_deblank = reference_deblank(&c).partition;
        let ref_hybrid = reference_hybrid_from(&c, ref_deblank);
        let ref_via_trivial =
            reference_hybrid_from(&c, trivial_partition(&c));
        for t in THREAD_COUNTS {
            let mut engine = RefineEngine::new(Threads::Fixed(t));
            let out = hybrid_partition_with(&c, &mut engine);
            prop_assert_eq!(
                out.partition.colors(),
                ref_hybrid.partition.colors()
            );
            // The Trivial-seeded hybrid exercises a different initial
            // partition through the same engine scratch (reuse!).
            let via_trivial =
                hybrid_from_with(&c, trivial_partition(&c), &mut engine);
            prop_assert_eq!(
                via_trivial.partition.colors(),
                ref_via_trivial.partition.colors()
            );
        }
    }

    /// Determinism: the same input refined twice at 4 threads — by a
    /// fresh engine and by a reused one — yields identical colors.
    #[test]
    fn four_threads_is_deterministic((vocab, g1, g2) in arb_versions()) {
        let c = CombinedGraph::union(&vocab, &g1, &g2);
        let mut engine = RefineEngine::new(Threads::Fixed(4));
        let first = hybrid_partition_with(&c, &mut engine);
        // Same engine again (scratch warm), then a fresh engine.
        let second = hybrid_partition_with(&c, &mut engine);
        let fresh = hybrid_partition_with(
            &c,
            &mut RefineEngine::new(Threads::Fixed(4)),
        );
        prop_assert_eq!(
            first.partition.colors(),
            second.partition.colors()
        );
        prop_assert_eq!(
            first.partition.colors(),
            fresh.partition.colors()
        );
        prop_assert_eq!(first.rounds, second.rounds);
    }
}
