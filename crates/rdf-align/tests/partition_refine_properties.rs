//! Property tests for the `Partition` / refinement substrate (§2.2–§3.2):
//! the algebraic invariants behind Definition 3 (refinement order),
//! Definition 4 (stable partitions) and Proposition 1 must hold on
//! arbitrary graphs, not just the worked figures.

use proptest::prelude::*;
use rdf_align::partition::Partition;
use rdf_align::refine::{
    bisim_refine_fixpoint_mask, bisim_refine_step, bisimulation_partition,
    label_partition,
};
use rdf_model::{GraphBuilder, LabelId, NodeId, TripleGraph, Vocab};

/// A random small triple graph with a mix of blank, literal and URI
/// nodes, driven by a xorshift stream so cases are reproducible.
fn arb_graph() -> impl Strategy<Value = TripleGraph> {
    (1usize..14, 0usize..40, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut vocab = Vocab::new();
        let mut b = GraphBuilder::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let label = match next() % 4 {
                0 => LabelId::BLANK,
                1 => vocab.literal(&format!("lit{}", next() % 3)),
                _ => vocab.uri(&format!("u{}", (i as u64 + next()) % 6)),
            };
            b.add_node(label, &vocab);
        }
        for _ in 0..m {
            let s = NodeId((next() % n as u64) as u32);
            let p = NodeId((next() % n as u64) as u32);
            let o = NodeId((next() % n as u64) as u32);
            b.add_triple(s, p, o);
        }
        b.freeze()
    })
}

/// A random membership mask for the refinement subset `X`.
fn arb_mask(g: &TripleGraph, seed: u64) -> Vec<bool> {
    let mut state = seed | 1;
    (0..g.node_count())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            !state.is_multiple_of(3)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `same_class` is an equivalence relation: reflexive, symmetric and
    /// transitive on every partition the engine produces (§2.2).
    #[test]
    fn same_class_is_an_equivalence_relation(g in arb_graph()) {
        let p = bisimulation_partition(&g).partition;
        let nodes: Vec<NodeId> = g.nodes().collect();
        for &a in &nodes {
            prop_assert!(p.same_class(a, a), "reflexivity at {a:?}");
            for &b in &nodes {
                prop_assert_eq!(p.same_class(a, b), p.same_class(b, a));
                for &c in &nodes {
                    if p.same_class(a, b) && p.same_class(b, c) {
                        prop_assert!(p.same_class(a, c), "transitivity");
                    }
                }
            }
        }
    }

    /// One refinement step only ever splits classes, for any subset `X`
    /// (Definition 3: the result is finer than the input).
    #[test]
    fn refine_step_is_monotone_for_any_subset(
        g in arb_graph(),
        mask_seed in any::<u64>(),
    ) {
        let initial = label_partition(&g);
        let in_x = arb_mask(&g, mask_seed);
        let (step, changed) = bisim_refine_step(&g, &initial, &in_x);
        prop_assert!(step.finer_than(&initial));
        // `changed` is accurate: it flags exactly non-equivalence.
        prop_assert_eq!(changed, !step.equivalent(&initial));
    }

    /// The round-by-round chain is monotone: the partition after fewer
    /// rounds is coarser than (refined by) the partition after more
    /// rounds, and the fixpoint is the finest of them all.
    #[test]
    fn fewer_rounds_give_a_coarser_partition(g in arb_graph()) {
        let all = vec![true; g.node_count()];
        let mut chain = vec![label_partition(&g)];
        loop {
            let (next, changed) =
                bisim_refine_step(&g, chain.last().unwrap(), &all);
            chain.push(next);
            if !changed {
                break;
            }
        }
        for earlier in 0..chain.len() {
            for later in earlier..chain.len() {
                prop_assert!(
                    chain[later].finer_than(&chain[earlier]),
                    "round {} not finer than round {}",
                    later,
                    earlier
                );
            }
        }
        let fixpoint = bisimulation_partition(&g).partition;
        prop_assert!(fixpoint.equivalent(chain.last().unwrap()));
    }

    /// The fixpoint really is stable (Definition 4): refining it once
    /// more under the full subset changes nothing. A *partial* subset X
    /// may still split classes that straddle X (equation 1 assigns
    /// recolored nodes fresh colors), but the result is a refinement and
    /// nodes outside X keep their relative classes.
    #[test]
    fn fixpoint_is_stable_and_subsets_only_refine(
        g in arb_graph(),
        mask_seed in any::<u64>(),
    ) {
        let out = bisimulation_partition(&g);
        let all = vec![true; g.node_count()];
        let (again, changed) = bisim_refine_step(&g, &out.partition, &all);
        prop_assert!(!changed);
        prop_assert!(again.equivalent(&out.partition));
        let in_x = arb_mask(&g, mask_seed);
        let sub = bisim_refine_fixpoint_mask(&g, out.partition.clone(), &in_x);
        prop_assert!(sub.partition.finer_than(&out.partition));
        let outside: Vec<NodeId> =
            g.nodes().filter(|n| !in_x[n.index()]).collect();
        for &a in &outside {
            for &b in &outside {
                prop_assert_eq!(
                    out.partition.same_class(a, b),
                    sub.partition.same_class(a, b)
                );
            }
        }
    }

    /// Partitions stay canonical through refinement: colors are dense,
    /// numbered by first occurrence, and class sizes sum to the node
    /// count.
    #[test]
    fn refined_partitions_stay_canonical(g in arb_graph()) {
        let p = bisimulation_partition(&g).partition;
        prop_assert_eq!(p.len(), g.node_count());
        let mut max_seen: Option<u32> = None;
        for c in p.colors() {
            prop_assert!(c.0 < p.num_colors());
            // First occurrence order: a color may exceed the running
            // maximum by at most one.
            let bound = max_seen.map_or(0, |m| m + 1);
            prop_assert!(c.0 <= bound, "non-canonical color numbering");
            max_seen = Some(max_seen.map_or(c.0, |m| m.max(c.0)));
        }
        let sizes = p.class_sizes();
        prop_assert_eq!(sizes.iter().sum::<u32>() as usize, p.len());
        prop_assert!(sizes.iter().all(|&s| s > 0), "no empty classes");
    }

    /// `finer_than` is a partial order on the refinement chain, with
    /// discrete and unit partitions as bottom and top (§2.2).
    #[test]
    fn finer_than_has_discrete_bottom_and_unit_top(g in arb_graph()) {
        let p = bisimulation_partition(&g).partition;
        let n = g.node_count();
        prop_assert!(p.finer_than(&p), "reflexivity");
        prop_assert!(Partition::discrete(n).finer_than(&p));
        prop_assert!(p.finer_than(&Partition::unit(n)));
    }
}
