//! The streaming refinement path must be *invisible* in every output:
//! shard-at-a-time rounds over a [`rdf_model::GraphShards`]
//! decomposition or straight from on-disk `.rdfm` shard files produce
//! the bit-identical partitions (same dense colors, same round counts)
//! the in-RAM [`rdf_align::RefineEngine`] produces, for every shard
//! count {1, 2, 4, 8} × thread count {1, 2, 4} — the acceptance matrix
//! of the external-memory step. Corruption in any shard file surfaces
//! as the same typed store errors the stitched load reports, at every
//! thread count.

use proptest::prelude::*;
use rdf_align::pipeline::{align_streaming_with, align_with, Method};
use rdf_align::{RefineEngine, StreamError, StreamingRefineEngine, Threads};
use rdf_model::{RdfGraph, RdfGraphBuilder, ShardColumnsSource, Vocab};
use rdf_store::{save_sharded, ShardedReader, StoreError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rdf-align-streaming-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A random pair of graph versions sharing a vocabulary (same shape as
/// the parallel-refine identity suite).
fn arb_versions() -> impl Strategy<Value = (Vocab, RdfGraph, RdfGraph)> {
    (1usize..24, 1usize..24, any::<u64>()).prop_map(|(m1, m2, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut vocab = Vocab::new();
        let build = |vocab: &mut Vocab,
                     triples: usize,
                     next: &mut dyn FnMut() -> u64| {
            let mut b = RdfGraphBuilder::new(vocab);
            for _ in 0..triples {
                let s = format!("s{}", next() % 6);
                let p = format!("p{}", next() % 4);
                let o = format!("o{}", next() % 6);
                match next() % 6 {
                    0 => b.uuu(&s, &p, &o),
                    1 => b.uul(&s, &p, &o),
                    2 => b.uub(&s, &p, &o),
                    3 => b.bul(&s, &p, &o),
                    4 => b.buu(&s, &p, &o),
                    _ => b.bub(&s, &p, &o),
                }
            }
            b.finish()
        };
        let g1 = build(&mut vocab, m1, &mut next);
        let g2 = build(&mut vocab, m2, &mut next);
        (vocab, g1, g2)
    })
}

const SHARDS: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 3] = [1, 2, 4];
const METHODS: [Method; 3] =
    [Method::Trivial, Method::Deblank, Method::Hybrid];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming alignment == in-RAM alignment, shard × thread ×
    /// method: identical dense colors and §5 metrics.
    #[test]
    fn streaming_alignment_matches_in_ram(
        (vocab, g1, g2) in arb_versions()
    ) {
        for method in METHODS {
            let base =
                align_with(&vocab, &g1, &g2, method, Threads::Fixed(1));
            for shards in SHARDS {
                for t in THREADS {
                    let streamed = align_streaming_with(
                        &vocab, &g1, &g2, method,
                        Threads::Fixed(t), shards,
                    ).expect("partition methods stream");
                    prop_assert_eq!(
                        streamed.partition().colors(),
                        base.partition().colors()
                    );
                    prop_assert_eq!(
                        streamed.edges.ratio(), base.edges.ratio());
                    prop_assert_eq!(
                        streamed.edges.aligned_instances(),
                        base.edges.aligned_instances()
                    );
                    prop_assert_eq!(
                        streamed.nodes.aligned_classes,
                        base.nodes.aligned_classes
                    );
                    prop_assert_eq!(&streamed.unaligned, &base.unaligned);
                }
            }
        }
    }

    /// Maximal bisimulation streamed straight from on-disk shard files
    /// == the in-RAM engine over the stitched load, shard × thread;
    /// and the engine's residency proxy is exactly the largest shard's
    /// columns, never the whole graph's.
    #[test]
    fn store_streaming_bisimulation_matches_stitched_load(
        (vocab, g1, _g2) in arb_versions()
    ) {
        let dir = tmp();
        for shards in SHARDS {
            let manifest = dir.join(format!("g{shards}.rdfm"));
            save_sharded(&manifest, &vocab, &g1, shards).unwrap();
            let reader = ShardedReader::open(&manifest).unwrap();

            // In-RAM baseline over the stitched load.
            let (_, loaded) = reader.read_graph(Threads::Fixed(1)).unwrap();
            let base = RefineEngine::new(Threads::Fixed(1))
                .bisimulation(loaded.graph());

            let store = reader.open_streaming().unwrap();
            prop_assert_eq!(
                store.labels(), loaded.graph().labels_raw());
            let max_shard_bytes = (0..store.shard_count())
                .map(|k| store.load_shard(k).unwrap().resident_bytes())
                .max()
                .unwrap_or(0);
            for t in THREADS {
                let mut engine =
                    StreamingRefineEngine::new(Threads::Fixed(t));
                let out = engine
                    .bisimulation(&store, store.labels())
                    .unwrap();
                prop_assert_eq!(
                    out.partition.colors(),
                    base.partition.colors()
                );
                prop_assert_eq!(out.rounds, base.rounds);
                // Residency proxy: bounded by the largest single
                // shard, not the graph.
                prop_assert_eq!(
                    engine.peak_shard_bytes(), max_shard_bytes);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Shard corruption surfaces as the same typed [`StoreError`]s the
/// stitched load reports — and deterministically. `open_streaming` is
/// the single checksum pass of a streaming run: pre-existing
/// corruption fails the open itself, while damage inflicted *after*
/// the open (whose checks the trusted per-round re-reads skip) still
/// surfaces as a typed, shard-naming framing error, with the
/// lowest-indexed failing shard winning at every thread count.
#[test]
fn corrupt_shards_fail_with_typed_errors_at_every_thread_count() {
    let mut vocab = Vocab::new();
    let g = {
        let mut b = RdfGraphBuilder::new(&mut vocab);
        for i in 0..24 {
            b.uul(&format!("s{i}"), &format!("p{}", i % 3), "v");
            b.uub(&format!("s{i}"), "link", &format!("b{}", i % 5));
        }
        b.finish()
    };
    let dir = tmp();
    let manifest = dir.join("g.rdfm");
    let paths = save_sharded(&manifest, &vocab, &g, 4).unwrap();
    // Open while the files are intact: this is the one-time validation
    // pass that later rounds trust.
    let store = ShardedReader::open(&manifest)
        .unwrap()
        .open_streaming()
        .unwrap();

    // Flip one byte in shards 1 and 3. A *fresh* open runs the
    // checksum pass and must report shard 1 (deterministic
    // lowest-index error), before any refinement work starts.
    for shard in [&paths[2], &paths[4]] {
        let mut bytes = std::fs::read(shard).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(shard, bytes).unwrap();
    }
    let err = ShardedReader::open(&manifest)
        .unwrap()
        .open_streaming()
        .unwrap_err();
    match err {
        StoreError::ShardChecksumMismatch { ref shard, .. } => {
            assert!(
                shard.contains("shard-1"),
                "expected shard 1's error, got {shard:?}"
            );
        }
        other => panic!("unexpected open error {other:?}"),
    }

    // The already-open store re-reads shards trusted (no checksum
    // pass), but framing and truncation checks remain: gut shard 1 and
    // its error — naming the file — wins at every thread count.
    let bytes = std::fs::read(&paths[2]).unwrap();
    std::fs::write(&paths[2], &bytes[..bytes.len() / 2]).unwrap();
    for t in [1usize, 2, 4] {
        let err = StreamingRefineEngine::new(Threads::Fixed(t))
            .bisimulation(&store, store.labels())
            .unwrap_err();
        match err {
            StreamError::Source(StoreError::InShard {
                ref shard, ..
            }) => {
                assert!(
                    shard.contains("shard-1"),
                    "threads={t}: expected shard 1's error, got {shard:?}"
                );
            }
            other => panic!("threads={t}: unexpected error {other:?}"),
        }
    }

    // A missing shard is typed too.
    std::fs::remove_file(&paths[2]).unwrap();
    let err = StreamingRefineEngine::new(Threads::Fixed(2))
        .bisimulation(&store, store.labels())
        .unwrap_err();
    assert!(
        matches!(
            err,
            StreamError::Source(StoreError::MissingShard { ref path })
                if path.contains("shard-1")
        ),
        "unexpected error {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
