//! Reference implementation of maximal bisimulation (Definition 2).
//!
//! A direct, obviously-correct fixpoint computation of `Bisim(G)` used to
//! validate the hash-based refinement engine (Proposition 1 states the two
//! coincide). Complexity is O(n² · d²) per round — only for tests and
//! small graphs.

use crate::partition::Partition;
use rdf_model::{NodeId, TripleGraph};

/// Compute the maximal bisimulation on `G` as a boolean relation matrix.
///
/// Starts from `R₀ = {(n, m) | ℓ(n) = ℓ(m)}` and repeatedly removes pairs
/// violating the simulation conditions in either direction until a
/// fixpoint; the greatest fixpoint is the maximal bisimulation.
pub fn naive_maximal_bisimulation(g: &TripleGraph) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut rel = vec![vec![false; n]; n];
    for a in g.nodes() {
        for b in g.nodes() {
            rel[a.index()][b.index()] = g.label(a) == g.label(b);
        }
    }
    loop {
        let mut changed = false;
        for a in g.nodes() {
            for b in g.nodes() {
                if !rel[a.index()][b.index()] {
                    continue;
                }
                if !simulates(g, &rel, a, b) || !simulates(g, &rel, b, a) {
                    rel[a.index()][b.index()] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return rel;
        }
    }
}

/// Whether every out-pair of `a` is matched by some out-pair of `b`
/// under the current relation.
fn simulates(
    g: &TripleGraph,
    rel: &[Vec<bool>],
    a: NodeId,
    b: NodeId,
) -> bool {
    g.out(a).iter().all(|&(p, o)| {
        g.out(b).iter().any(|&(p2, o2)| {
            rel[p.index()][p2.index()] && rel[o.index()][o2.index()]
        })
    })
}

/// Whether two nodes are bisimilar, by the naive reference algorithm.
pub fn naive_bisimilar(g: &TripleGraph, a: NodeId, b: NodeId) -> bool {
    naive_maximal_bisimulation(g)[a.index()][b.index()]
}

/// Check that a partition induces exactly the given relation (used to
/// validate Proposition 1: `Align(λ_Bisim) = Bisim(G)` — here on the full
/// node set rather than the bipartite restriction).
pub fn partition_matches_relation(
    partition: &Partition,
    rel: &[Vec<bool>],
) -> bool {
    let n = partition.len();
    assert_eq!(rel.len(), n, "relation matrix must cover every node");
    for (a, row) in rel.iter().enumerate() {
        assert_eq!(row.len(), n, "relation matrix must be square");
        for (b, &related) in row.iter().enumerate() {
            let same =
                partition.color(NodeId(a as u32)) == partition.color(NodeId(b as u32));
            if same != related {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::bisimulation_partition;
    use rdf_model::{GraphBuilder, LabelId, Vocab};

    fn diamond() -> TripleGraph {
        // Two bisimilar blanks pointing at the same literal.
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(LabelId::BLANK, &v);
        let y = b.add_node(LabelId::BLANK, &v);
        let p = b.add_node(v.uri("p"), &v);
        let l = b.add_node(v.literal("a"), &v);
        b.add_triple(x, p, l);
        b.add_triple(y, p, l);
        b.freeze()
    }

    #[test]
    fn reflexive() {
        let g = diamond();
        let rel = naive_maximal_bisimulation(&g);
        for n in g.nodes() {
            assert!(rel[n.index()][n.index()]);
        }
    }

    #[test]
    fn symmetric() {
        let g = diamond();
        let rel = naive_maximal_bisimulation(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(rel[a.index()][b.index()], rel[b.index()][a.index()]);
            }
        }
    }

    #[test]
    fn diamond_blanks_bisimilar() {
        let g = diamond();
        assert!(naive_bisimilar(&g, NodeId(0), NodeId(1)));
        assert!(!naive_bisimilar(&g, NodeId(0), NodeId(2)));
    }

    #[test]
    fn proposition_1_on_small_graphs() {
        // The refinement engine must agree with the naive reference.
        let g = diamond();
        let rel = naive_maximal_bisimulation(&g);
        let out = bisimulation_partition(&g);
        assert!(partition_matches_relation(&out.partition, &rel));
    }

    #[test]
    fn proposition_1_with_cycles() {
        // Symmetric 2-cycle plus an asymmetric appendix.
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(LabelId::BLANK, &v);
        let y = b.add_node(LabelId::BLANK, &v);
        let z = b.add_node(LabelId::BLANK, &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        b.add_triple(x, p, y);
        b.add_triple(y, p, x);
        b.add_triple(z, p, x);
        b.add_triple(z, q, y);
        let g = b.freeze();
        let rel = naive_maximal_bisimulation(&g);
        let out = bisimulation_partition(&g);
        assert!(partition_matches_relation(&out.partition, &rel));
        assert!(rel[x.index()][y.index()], "x ~ y on symmetric cycle");
        assert!(!rel[z.index()][x.index()], "z has extra q edge");
    }
}
