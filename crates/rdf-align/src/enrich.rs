//! Enrichment of a weighted partition with newly discovered close pairs
//! (§4.4).
//!
//! Discovered pairs arrive as a weighted bipartite graph
//! `H = (A, B, M, d)` between unaligned source nodes `A` and unaligned
//! target nodes `B`. `H` is decomposed into connected components
//! `X₁ … X_k`; each component becomes a new cluster. Members receive a
//! weight consistent with the shortest-path distance `d*` in `H`
//! (computed with `⊕`): every source node takes half the maximum `d*` to
//! any target node of its component, and vice versa, which guarantees
//! `d*(a, b) ≤ w(a) ⊕ w(b)`.

use crate::partition::Partition;
use crate::weighted::WeightedPartition;
use rdf_model::{FxHashMap, NodeId};
use rdf_edit::algebra::oplus;

/// A weighted bipartite graph of newly discovered close pairs
/// (the output shape of Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct WeightedBipartite {
    /// Edges `(a ∈ A, b ∈ B, d(a, b))`; isolated nodes are not
    /// represented (the paper removes them from consideration).
    pub edges: Vec<(NodeId, NodeId, f64)>,
}

impl WeightedBipartite {
    /// Whether the graph has no edges (the Algorithm 2 stop condition).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }
}

/// Union-find over arbitrary node ids.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// The weight assignment computed for the members of `H`.
#[derive(Debug, Clone)]
pub struct EnrichedWeights {
    /// Per-node (component-member) weights.
    pub weights: FxHashMap<NodeId, f64>,
    /// Component id per member node.
    pub component: FxHashMap<NodeId, u32>,
    /// Number of components.
    pub num_components: u32,
}

/// Decompose `H` into connected components and assign weights.
pub fn component_weights(h: &WeightedBipartite) -> EnrichedWeights {
    // Compact the member node ids.
    let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut members: Vec<NodeId> = Vec::new();
    let mut is_source: Vec<bool> = Vec::new();
    for &(a, b, _) in &h.edges {
        index.entry(a).or_insert_with(|| {
            members.push(a);
            is_source.push(true);
            members.len() as u32 - 1
        });
        index.entry(b).or_insert_with(|| {
            members.push(b);
            is_source.push(false);
            members.len() as u32 - 1
        });
    }
    let n = members.len();
    let mut uf = UnionFind::new(n);
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for &(a, b, d) in &h.edges {
        let (ia, ib) = (index[&a], index[&b]);
        uf.union(ia, ib);
        adj[ia as usize].push((ib, d));
        adj[ib as usize].push((ia, d));
    }

    // Canonical component ids.
    let mut comp_of: Vec<u32> = vec![0; n];
    let mut comp_map: FxHashMap<u32, u32> = FxHashMap::default();
    for i in 0..n as u32 {
        let root = uf.find(i);
        let next = comp_map.len() as u32;
        comp_of[i as usize] = *comp_map.entry(root).or_insert(next);
    }
    let num_components = comp_map.len() as u32;

    // Per member: Dijkstra with ⊕ (saturating) path lengths to find
    // d*(v, ·), then w(v) = max over opposite-side members / 2.
    // Components are tiny in practice (near one-to-one matchings).
    let mut weights: FxHashMap<NodeId, f64> = FxHashMap::default();
    for start in 0..n {
        let dist = dijkstra_oplus(&adj, start, n);
        let mut max_opposite: f64 = 0.0;
        for other in 0..n {
            if comp_of[other] == comp_of[start]
                && is_source[other] != is_source[start]
            {
                max_opposite = max_opposite.max(dist[other]);
            }
        }
        weights.insert(members[start], max_opposite / 2.0);
    }

    let component: FxHashMap<NodeId, u32> = members
        .iter()
        .enumerate()
        .map(|(i, &m)| (m, comp_of[i]))
        .collect();
    EnrichedWeights {
        weights,
        component,
        num_components,
    }
}

/// Dijkstra with saturating `⊕` path lengths from `start`; unreachable
/// nodes get distance 1 (the paper's convention).
fn dijkstra_oplus(adj: &[Vec<(u32, f64)>], start: usize, n: usize) -> Vec<f64> {
    let mut dist = vec![1.0f64; n];
    dist[start] = 0.0;
    let mut visited = vec![false; n];
    // Small components: the O(n²) scan is simpler and cache-friendly.
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for v in 0..n {
            if !visited[v] && dist[v] < best_d {
                best = v;
                best_d = dist[v];
            }
        }
        if best == usize::MAX || best_d >= 1.0 {
            break;
        }
        visited[best] = true;
        for &(to, w) in &adj[best] {
            let nd = oplus(dist[best], w);
            if nd < dist[to as usize] {
                dist[to as usize] = nd;
            }
        }
    }
    dist
}

/// `Enrich(ξ, H)` (§4.4): members of each component of `H` move into a
/// fresh cluster per component with the consistent weights; all other
/// nodes keep their color and weight.
pub fn enrich(
    xi: &WeightedPartition,
    h: &WeightedBipartite,
) -> WeightedPartition {
    if h.is_empty() {
        return xi.clone();
    }
    let ew = component_weights(h);
    let base = xi.partition.num_colors();
    let mut raw: Vec<u32> =
        xi.partition.colors().iter().map(|c| c.0).collect();
    let mut weights = xi.weights.clone();
    for (&node, &comp) in &ew.component {
        raw[node.index()] = base + comp;
        weights[node.index()] = ew.weights[&node];
    }
    WeightedPartition::new(Partition::from_colors(&raw), weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::trivial_partition;
    use rdf_model::{CombinedGraph, RdfGraphBuilder, Vocab};

    fn h(edges: &[(u32, u32, f64)]) -> WeightedBipartite {
        WeightedBipartite {
            edges: edges
                .iter()
                .map(|&(a, b, d)| (NodeId(a), NodeId(b), d))
                .collect(),
        }
    }

    #[test]
    fn single_pair_component() {
        // One close pair at distance 1/3: both endpoints get weight 1/6,
        // so d*(a,b) = 1/3 ≤ 1/6 ⊕ 1/6. ✓
        let ew = component_weights(&h(&[(0, 10, 1.0 / 3.0)]));
        assert_eq!(ew.num_components, 1);
        assert!((ew.weights[&NodeId(0)] - 1.0 / 6.0).abs() < 1e-12);
        assert!((ew.weights[&NodeId(10)] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn star_component_uses_max() {
        // a matched to two targets at distances 0.2 and 0.4:
        // w(a) = 0.4 / 2 = 0.2; w(b1) = d*(b1→a? no—max to SOURCE) …
        let ew = component_weights(&h(&[(0, 10, 0.2), (0, 11, 0.4)]));
        assert_eq!(ew.num_components, 1);
        assert!((ew.weights[&NodeId(0)] - 0.2).abs() < 1e-12);
        // b=10: max d* to any source in component = d(10,0) = 0.2.
        assert!((ew.weights[&NodeId(10)] - 0.1).abs() < 1e-12);
        assert!((ew.weights[&NodeId(11)] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn consistency_invariant() {
        // For every edge (a,b): d(a,b) ≤ w(a) ⊕ w(b) — required by §4.4.
        let graph = h(&[
            (0, 10, 0.1),
            (1, 10, 0.3),
            (1, 11, 0.2),
            (2, 12, 0.9),
        ]);
        let ew = component_weights(&graph);
        for &(a, b, d) in &graph.edges {
            let bound = oplus(ew.weights[&a], ew.weights[&b]);
            assert!(
                d <= bound + 1e-12,
                "d({a},{b})={d} > {bound}"
            );
        }
    }

    #[test]
    fn separate_components() {
        let ew = component_weights(&h(&[(0, 10, 0.2), (1, 11, 0.4)]));
        assert_eq!(ew.num_components, 2);
        assert_ne!(ew.component[&NodeId(0)], ew.component[&NodeId(1)]);
    }

    #[test]
    fn enrich_moves_members_to_fresh_clusters() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "abc");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "ac");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let xi = WeightedPartition::zero(trivial_partition(&c));
        // "abc" is source node 2; "ac" is target node 2 → combined 5.
        let abc = NodeId(2);
        let ac = c.from_target(NodeId(2));
        assert!(!xi.partition.same_class(abc, ac));
        let out = enrich(
            &xi,
            &WeightedBipartite {
                edges: vec![(abc, ac, 1.0 / 3.0)],
            },
        );
        assert!(out.partition.same_class(abc, ac));
        assert!((out.distance(abc, ac) - 1.0 / 3.0).abs() < 1e-12);
        // Other nodes unchanged.
        assert!(out.partition.same_class(NodeId(0), c.from_target(NodeId(0))));
        assert_eq!(out.weight(NodeId(0)), 0.0);
    }

    #[test]
    fn enrich_empty_is_identity() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1.clone(), &g1);
        let xi = WeightedPartition::zero(trivial_partition(&c));
        let out = enrich(&xi, &WeightedBipartite::default());
        assert!(out.partition.equivalent(&xi.partition));
    }
}
