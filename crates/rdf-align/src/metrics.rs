//! Evaluation metrics used in §5.
//!
//! * **Aligned-edge ratio** (Fig 10): fraction of edges aligned by a
//!   partition, with "edges using precisely the same identifiers counted
//!   precisely once" — we count *edge classes* (triples of colors) and
//!   report the Jaccard ratio `|S1 ∩ S2| / |S1 ∪ S2|`.
//! * **Aligned edge instances** (Fig 11): absolute number of edges whose
//!   color triple appears on the opposite side; differences of this count
//!   between methods give the "additionally aligned edges" matrices.
//! * **Aligned node/class counts** (Fig 13) and the four-way precision
//!   breakdown exact/inclusive/missing/false against a ground truth
//!   (Figs 14, 15).

use crate::partition::Partition;
use rdf_model::{CombinedGraph, FxHashMap, FxHashSet, GroundTruth, NodeId, Side};

/// Edge-level alignment statistics for one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeStats {
    /// Distinct edge color-triples on the source side.
    pub source_classes: usize,
    /// Distinct edge color-triples on the target side.
    pub target_classes: usize,
    /// Edge color-triples present on both sides.
    pub common_classes: usize,
    /// Source edge instances whose color triple also occurs on the target.
    pub aligned_source_edges: usize,
    /// Target edge instances whose color triple also occurs on the source.
    pub aligned_target_edges: usize,
    /// Total source edge instances.
    pub total_source_edges: usize,
    /// Total target edge instances.
    pub total_target_edges: usize,
}

impl EdgeStats {
    /// Jaccard ratio of aligned edge classes: `|S1∩S2| / |S1∪S2|`
    /// (the Fig 10 measure; 1.0 on complete alignments).
    pub fn ratio(&self) -> f64 {
        let union =
            self.source_classes + self.target_classes - self.common_classes;
        if union == 0 {
            1.0
        } else {
            self.common_classes as f64 / union as f64
        }
    }

    /// Total aligned edge instances over both sides (the Fig 11 count).
    pub fn aligned_instances(&self) -> usize {
        self.aligned_source_edges + self.aligned_target_edges
    }
}

/// Compute [`EdgeStats`] for a partition over a combined graph.
pub fn edge_stats(partition: &Partition, combined: &CombinedGraph) -> EdgeStats {
    let g = combined.graph();
    let mut s1: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
    let mut s2: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
    let mut stats = EdgeStats::default();
    for t in g.triples() {
        let key = (
            partition.color(t.s).0,
            partition.color(t.p).0,
            partition.color(t.o).0,
        );
        match combined.side(t.s) {
            Side::Source => {
                s1.insert(key);
                stats.total_source_edges += 1;
            }
            Side::Target => {
                s2.insert(key);
                stats.total_target_edges += 1;
            }
        }
    }
    stats.source_classes = s1.len();
    stats.target_classes = s2.len();
    stats.common_classes = s1.intersection(&s2).count();
    for t in g.triples() {
        let key = (
            partition.color(t.s).0,
            partition.color(t.p).0,
            partition.color(t.o).0,
        );
        match combined.side(t.s) {
            Side::Source => {
                if s2.contains(&key) {
                    stats.aligned_source_edges += 1;
                }
            }
            Side::Target => {
                if s1.contains(&key) {
                    stats.aligned_target_edges += 1;
                }
            }
        }
    }
    stats
}

/// Node-level alignment counts over *non-literal* nodes (Fig 13).
///
/// Literals are excluded throughout: they align trivially by label and
/// the ground truth of §5.2 concerns URIs (and blanks), so including
/// them would drown the signal the figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeCounts {
    /// Classes populated with non-literal nodes from both sides —
    /// deduplicated aligned entities.
    pub aligned_classes: usize,
    /// Non-literal source nodes that are aligned.
    pub aligned_source_nodes: usize,
    /// Non-literal target nodes that are aligned.
    pub aligned_target_nodes: usize,
    /// Non-literal source node total.
    pub total_source_nodes: usize,
    /// Non-literal target node total.
    pub total_target_nodes: usize,
}

impl NodeCounts {
    /// Deduplicated entity total given a ground truth: nodes present in
    /// both versions are counted once (`|N1| + |N2| − |GT|`).
    pub fn total_entities(&self, truth: &GroundTruth) -> usize {
        self.total_source_nodes + self.total_target_nodes - truth.len()
    }
}

/// Compute [`NodeCounts`] for a partition over a combined graph,
/// restricted to non-literal nodes.
pub fn node_counts(partition: &Partition, combined: &CombinedGraph) -> NodeCounts {
    let g = combined.graph();
    let k = partition.num_colors() as usize;
    let mut src = vec![0u32; k];
    let mut tgt = vec![0u32; k];
    let mut counts = NodeCounts::default();
    for n in g.nodes() {
        if g.is_literal(n) {
            continue;
        }
        let c = partition.color(n).index();
        match combined.side(n) {
            Side::Source => {
                src[c] += 1;
                counts.total_source_nodes += 1;
            }
            Side::Target => {
                tgt[c] += 1;
                counts.total_target_nodes += 1;
            }
        }
    }
    for c in 0..k {
        if src[c] > 0 && tgt[c] > 0 {
            counts.aligned_classes += 1;
            counts.aligned_source_nodes += src[c] as usize;
            counts.aligned_target_nodes += tgt[c] as usize;
        }
    }
    counts
}

/// The four-way per-node classification of §5.2 (Figs 14, 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchBreakdown {
    /// Aligned to exactly the set the ground truth indicates (including
    /// correctly-unaligned nodes without a ground-truth partner).
    pub exact: usize,
    /// Aligned to a proper superset that includes the true partner.
    pub inclusive: usize,
    /// Aligned to a set not containing the true partner (possibly empty).
    pub missing: usize,
    /// Aligned to a nonempty set although the truth aligns the node to
    /// nothing.
    pub false_matches: usize,
}

impl MatchBreakdown {
    /// Total nodes classified.
    pub fn total(&self) -> usize {
        self.exact + self.inclusive + self.missing + self.false_matches
    }

    /// Fraction of exact matches.
    pub fn exact_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.exact as f64 / self.total() as f64
        }
    }
}

/// Classify every *non-literal* node of both versions against the
/// ground truth (literals align trivially by label and are excluded,
/// matching the paper's URI-centric evaluation).
///
/// For a node `n` with aligned set `A(n)` (opposite-side non-literal
/// members of its class) and true partner `gt(n)`:
/// * `gt(n)` defined, `A(n) = {gt(n)}` → exact;
/// * `gt(n)` defined, `gt(n) ∈ A(n)`, `|A(n)| > 1` → inclusive;
/// * `gt(n)` defined, `gt(n) ∉ A(n)` → missing;
/// * `gt(n)` undefined, `A(n) = ∅` → exact (correctly unaligned);
/// * `gt(n)` undefined, `A(n) ≠ ∅` → false match.
pub fn classify_matches(
    partition: &Partition,
    combined: &CombinedGraph,
    truth: &GroundTruth,
) -> MatchBreakdown {
    let g = combined.graph();
    let k = partition.num_colors() as usize;
    // Per color: count of non-literal nodes on each side.
    let mut src_count = vec![0u32; k];
    let mut tgt_count = vec![0u32; k];
    for n in g.nodes() {
        if g.is_literal(n) {
            continue;
        }
        let c = partition.color(n).index();
        match combined.side(n) {
            Side::Source => src_count[c] += 1,
            Side::Target => tgt_count[c] += 1,
        }
    }
    let mut breakdown = MatchBreakdown::default();
    for n in g.nodes() {
        if g.is_literal(n) {
            continue;
        }
        let c = partition.color(n).index();
        let (side, local) = combined.to_local(n);
        let (gt_partner, opp_count) = match side {
            Side::Source => (truth.target_of(local), tgt_count[c]),
            Side::Target => (truth.source_of(local), src_count[c]),
        };
        match gt_partner {
            None => {
                if opp_count == 0 {
                    breakdown.exact += 1;
                } else {
                    breakdown.false_matches += 1;
                }
            }
            Some(partner) => {
                let partner_global = match side {
                    Side::Source => combined.from_target(partner),
                    Side::Target => combined.from_source(partner),
                };
                let partner_in =
                    partition.color(partner_global).index() == c;
                if partner_in && opp_count == 1 {
                    breakdown.exact += 1;
                } else if partner_in {
                    breakdown.inclusive += 1;
                } else {
                    breakdown.missing += 1;
                }
            }
        }
    }
    breakdown
}

/// Counts of aligned *predicate-only* URIs that differ from the ground
/// truth — §5.1 discusses these as the main error source for EFO.
pub fn predicate_only_uris(combined: &CombinedGraph) -> Vec<NodeId> {
    let g = combined.graph();
    let mut appears_subject_or_object: FxHashMap<NodeId, bool> =
        FxHashMap::default();
    let mut appears_predicate: FxHashSet<NodeId> = FxHashSet::default();
    for t in g.triples() {
        appears_subject_or_object.insert(t.s, true);
        appears_subject_or_object.insert(t.o, true);
        appears_predicate.insert(t.p);
    }
    g.nodes()
        .filter(|n| {
            g.is_uri(*n)
                && appears_predicate.contains(n)
                && !appears_subject_or_object.contains_key(n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{deblank_partition, trivial_partition};
    use rdf_model::{RdfGraphBuilder, Vocab};

    fn versions() -> (Vocab, CombinedGraph) {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.uub("x", "q", "b1");
            b.bul("b1", "r", "rec");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.uub("x", "q", "b2");
            b.bul("b2", "r", "rec");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        (v, c)
    }

    #[test]
    fn edge_ratio_improves_with_deblank() {
        let (_, c) = versions();
        let t = trivial_partition(&c);
        let d = deblank_partition(&c).partition;
        let et = edge_stats(&t, &c);
        let ed = edge_stats(&d, &c);
        // Trivial cannot align the blank-involving edges.
        assert!(et.ratio() < 1.0);
        // Deblank aligns everything here.
        assert!((ed.ratio() - 1.0).abs() < 1e-12);
        assert!(ed.aligned_instances() > et.aligned_instances());
    }

    #[test]
    fn self_alignment_ratio_is_one_for_deblank() {
        let (v, c) = {
            let mut v = Vocab::new();
            let g = {
                let mut b = RdfGraphBuilder::new(&mut v);
                b.uub("x", "p", "b1");
                b.bul("b1", "q", "lit");
                b.finish()
            };
            let c = CombinedGraph::union(&v, &g, &g);
            (v, c)
        };
        let _ = v;
        let d = deblank_partition(&c).partition;
        assert!((edge_stats(&d, &c).ratio() - 1.0).abs() < 1e-12);
        // Trivial self-alignment < 1 because blanks stay unaligned
        // (Fig 10, left).
        let t = trivial_partition(&c);
        assert!(edge_stats(&t, &c).ratio() < 1.0);
    }

    #[test]
    fn node_counts_dedup() {
        let (_, c) = versions();
        let d = deblank_partition(&c).partition;
        let counts = node_counts(&d, &c);
        assert_eq!(counts.aligned_source_nodes, counts.total_source_nodes);
        // Non-literal entities per side: x, p, q, blank-record, r -> 5.
        assert_eq!(counts.total_source_nodes, 5);
        assert_eq!(counts.aligned_classes, 5);
        let mut gt = GroundTruth::new();
        for i in 0..5 {
            gt.insert(NodeId(i), NodeId(i));
        }
        assert_eq!(counts.total_entities(&gt), 5);
    }

    #[test]
    fn classification_all_exact_on_perfect_alignment() {
        let (_, c) = versions();
        let d = deblank_partition(&c).partition;
        // Ground truth: identical builder order on both sides.
        let mut gt = GroundTruth::new();
        for i in 0..7u32 {
            gt.insert(NodeId(i), NodeId(i));
        }
        let b = classify_matches(&d, &c, &gt);
        // 5 non-literal nodes per side, all exactly aligned.
        assert_eq!(b.exact, 10);
        assert_eq!(b.inclusive + b.missing + b.false_matches, 0);
        assert!((b.exact_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classification_missing_under_trivial() {
        let (_, c) = versions();
        let t = trivial_partition(&c);
        let mut gt = GroundTruth::new();
        for i in 0..7u32 {
            gt.insert(NodeId(i), NodeId(i));
        }
        let b = classify_matches(&t, &c, &gt);
        // The two blanks (one per side) are unaligned under Trivial but
        // have ground-truth partners: 2 missing.
        assert_eq!(b.missing, 2);
        assert_eq!(b.exact, 8);
    }

    #[test]
    fn false_matches_detected() {
        // Both sides have a node "x"; truth says they do NOT correspond.
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let t = trivial_partition(&c);
        let gt = GroundTruth::new(); // empty: nothing truly corresponds
        let b = classify_matches(&t, &c, &gt);
        assert_eq!(b.false_matches, 4); // x and p on both sides
        assert_eq!(b.exact, 0);
    }

    #[test]
    fn predicate_only_detection() {
        let (_, c) = versions();
        let preds = predicate_only_uris(&c);
        // p, q, r on each side = 6 predicate-only URIs.
        assert_eq!(preds.len(), 6);
    }
}
