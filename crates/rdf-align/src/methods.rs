//! The three partition-based alignment methods of §3:
//! Trivial (§3.1), Deblank (§3.3) and Hybrid (§3.4).
//!
//! All operate on the combined graph `G = G1 ⊎ G2` and satisfy the
//! hierarchy `Align(λ_Trivial) ⊆ Align(λ_Deblank) ⊆ Align(λ_Hybrid)`.

use crate::engine::RefineEngine;
use crate::partition::{unaligned_non_literals, ColorId, Partition};
use crate::refine::{label_partition, RefineOutcome};
use crate::stream::{StreamError, StreamingRefineEngine};
use rdf_model::{CombinedGraph, NodeId, ShardColumnsSource};

/// `λ_Trivial` (§3.1): label equality on non-blank nodes; every blank node
/// is its own class.
pub fn trivial_partition(combined: &CombinedGraph) -> Partition {
    let g = combined.graph();
    // Raw colors: (0, label) for non-blank, (1, node id) for blank.
    let raw: Vec<(u8, u32)> = g
        .nodes()
        .map(|n| {
            if g.is_blank(n) {
                (1u8, n.0)
            } else {
                (0u8, g.label(n).0)
            }
        })
        .collect();
    Partition::from_colors(&raw)
}

/// `λ_Deblank = BisimRefine*_{Blanks(G)}(ℓ_G)` (§3.3): bisimulation
/// refinement restricted to blank nodes, starting from the node-labelling
/// partition.
pub fn deblank_partition(combined: &CombinedGraph) -> RefineOutcome {
    deblank_partition_with(combined, &mut RefineEngine::auto())
}

/// As [`deblank_partition`], refining through a caller-owned engine so
/// scratch is reused across pipeline stages and the thread
/// configuration is explicit.
pub fn deblank_partition_with(
    combined: &CombinedGraph,
    engine: &mut RefineEngine,
) -> RefineOutcome {
    let g = combined.graph();
    let initial = label_partition(g);
    let in_x: Vec<bool> = g.nodes().map(|n| g.is_blank(n)).collect();
    engine.refine_fixpoint_mask(g, initial, &in_x)
}

/// As [`deblank_partition_with`], but sourcing adjacency shard-by-shard
/// through a [`StreamingRefineEngine`] instead of the combined graph's
/// resident columns. `source` must decompose exactly the combined
/// graph (same node ids); the result is bit-identical to the in-RAM
/// path at every shard count × thread count.
pub fn deblank_partition_streaming_with<S>(
    combined: &CombinedGraph,
    source: &S,
    engine: &mut StreamingRefineEngine,
) -> Result<RefineOutcome, StreamError<S::Error>>
where
    S: ShardColumnsSource + Sync,
    S::Error: Send,
{
    let g = combined.graph();
    let initial = label_partition(g);
    let in_x: Vec<bool> = g.nodes().map(|n| g.is_blank(n)).collect();
    engine.refine_fixpoint_mask(source, initial, &in_x)
}

/// `Blank(λ, X)` (equation 3): reset the color of the nodes in `X` to the
/// neutral blank color (a single fresh class).
pub fn blank_out(partition: &Partition, x: &[NodeId]) -> Partition {
    let fresh = partition.num_colors();
    let mut raw: Vec<u32> = partition.colors().iter().map(|c| c.0).collect();
    for &n in x {
        raw[n.index()] = fresh;
    }
    Partition::from_colors(&raw)
}

/// Outcome of the hybrid alignment, with intermediate stages exposed for
/// inspection.
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    /// The deblank partition the method starts from.
    pub deblank: Partition,
    /// The unaligned non-literal nodes `UN(λ_Deblank)` that were blanked
    /// and refined.
    pub unaligned: Vec<NodeId>,
    /// The final hybrid partition.
    pub partition: Partition,
    /// Refinement rounds spent in the hybrid stage.
    pub rounds: usize,
}

/// `λ_Hybrid` (§3.4): blank out `UN(λ_Deblank)` (unaligned non-literal
/// nodes) and refine exactly those nodes by bisimulation.
pub fn hybrid_partition(combined: &CombinedGraph) -> HybridOutcome {
    hybrid_partition_with(combined, &mut RefineEngine::auto())
}

/// As [`hybrid_partition`], refining through a caller-owned engine
/// (both the deblank stage and the hybrid stage reuse its scratch).
pub fn hybrid_partition_with(
    combined: &CombinedGraph,
    engine: &mut RefineEngine,
) -> HybridOutcome {
    let deblank = deblank_partition_with(combined, engine).partition;
    hybrid_from_with(combined, deblank, engine)
}

/// Hybrid construction from a given base partition (the paper notes that
/// starting from `λ_Trivial` yields the same result as `λ_Deblank`).
pub fn hybrid_from(
    combined: &CombinedGraph,
    base: Partition,
) -> HybridOutcome {
    hybrid_from_with(combined, base, &mut RefineEngine::auto())
}

/// As [`hybrid_from`], refining through a caller-owned engine.
pub fn hybrid_from_with(
    combined: &CombinedGraph,
    base: Partition,
    engine: &mut RefineEngine,
) -> HybridOutcome {
    let (unaligned, blanked, in_x) = hybrid_prep(combined, &base);
    let out =
        engine.refine_fixpoint_mask(combined.graph(), blanked, &in_x);
    HybridOutcome {
        deblank: base,
        unaligned,
        partition: out.partition,
        rounds: out.rounds,
    }
}

/// The §3.4 hybrid construction's shared preparation: blank out
/// exactly `UN(base)` (the unaligned non-literals) and build the
/// refinement mask for exactly those nodes. One implementation feeds
/// both the in-RAM and the streaming fixpoint, so the bit-identical
/// contract between them cannot be broken by the two paths drifting.
fn hybrid_prep(
    combined: &CombinedGraph,
    base: &Partition,
) -> (Vec<NodeId>, Partition, Vec<bool>) {
    let unaligned = unaligned_non_literals(base, combined);
    let blanked = blank_out(base, &unaligned);
    let mut in_x = vec![false; combined.graph().node_count()];
    for &n in &unaligned {
        in_x[n.index()] = true;
    }
    (unaligned, blanked, in_x)
}

/// As [`hybrid_partition_with`], but running both refinement fixpoints
/// (deblank, then hybrid) through a [`StreamingRefineEngine`] over a
/// shard source. Bit-identical to the in-RAM path at every shard
/// count × thread count.
pub fn hybrid_partition_streaming_with<S>(
    combined: &CombinedGraph,
    source: &S,
    engine: &mut StreamingRefineEngine,
) -> Result<HybridOutcome, StreamError<S::Error>>
where
    S: ShardColumnsSource + Sync,
    S::Error: Send,
{
    let deblank =
        deblank_partition_streaming_with(combined, source, engine)?.partition;
    let (unaligned, blanked, in_x) = hybrid_prep(combined, &deblank);
    let out = engine.refine_fixpoint_mask(source, blanked, &in_x)?;
    Ok(HybridOutcome {
        deblank,
        unaligned,
        partition: out.partition,
        rounds: out.rounds,
    })
}

/// Check the containment `Align(λ_a) ⊆ Align(λ_b)` over a combined graph:
/// every cross-side pair identified by `a` is also identified by `b`.
pub fn alignment_subset(
    a: &Partition,
    b: &Partition,
    combined: &CombinedGraph,
) -> bool {
    // Group nodes by a-color; a class induces cross pairs only when both
    // sides are present, and then all members must share one b-color.
    let k = a.num_colors() as usize;
    let mut has_source = vec![false; k];
    let mut has_target = vec![false; k];
    for n in combined.graph().nodes() {
        match combined.side(n) {
            rdf_model::Side::Source => has_source[a.color(n).index()] = true,
            rdf_model::Side::Target => has_target[a.color(n).index()] = true,
        }
    }
    let mut b_color: Vec<Option<ColorId>> = vec![None; k];
    for n in combined.graph().nodes() {
        let ac = a.color(n).index();
        if !(has_source[ac] && has_target[ac]) {
            continue;
        }
        match b_color[ac] {
            None => b_color[ac] = Some(b.color(n)),
            Some(c) => {
                if c != b.color(n) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{RdfGraphBuilder, Vocab};

    /// The two versions of Figure 3 (reconstructed to exhibit the
    /// properties stated in Examples 3 and 4).
    ///
    /// G1: w -p-> b1, w -p-> u, b1 -q-> u, b1 -q-> "a", b1 -r-> b2,
    ///     b2 -q-> "b", b3 -q-> "b", u -r-> b3, u -q-> "a"
    ///     (b2 ~ b3 bisimilar; b1's contents mention the URI u)
    /// G2: same shape with u renamed to v, b2/b3 merged into b4, and
    ///     b1 renamed (as a local identifier only) to b5.
    fn figure3() -> (Vocab, CombinedGraph) {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uub("w", "p", "b1");
            b.uuu("w", "p", "u");
            b.buu("b1", "q", "u");
            b.bul("b1", "q", "a");
            b.bub("b1", "r", "b2");
            b.bul("b2", "q", "b");
            b.bul("b3", "q", "b");
            b.uub("u", "r", "b3");
            b.uul("u", "q", "a");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uub("w", "p", "b5");
            b.uuu("w", "p", "v");
            b.buu("b5", "q", "v");
            b.bul("b5", "q", "a");
            b.bub("b5", "r", "b4");
            b.bul("b4", "q", "b");
            b.uub("v", "r", "b4");
            b.uul("v", "q", "a");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        (v, c)
    }

    /// Node ids in the combined Figure 3 graph, resolved by label text.
    fn find_uri(v: &Vocab, c: &CombinedGraph, text: &str) -> Vec<NodeId> {
        c.graph()
            .nodes()
            .filter(|&n| {
                c.graph().is_uri(n) && v.text(c.graph().label(n)) == text
            })
            .collect()
    }

    fn blank_by_name(g1_blanks: &[(&str, NodeId)], name: &str) -> NodeId {
        g1_blanks
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, id)| id)
            .unwrap_or_else(|| panic!("no blank {name}"))
    }

    /// Resolve the blanks of Figure 3 by their known positions.
    fn figure3_blanks(c: &CombinedGraph) -> Vec<(&'static str, NodeId)> {
        // Source blanks appear in creation order b1, b2, b3; target blanks
        // b5, b4 (b5 created before b4 in the builder above).
        let src: Vec<NodeId> = c
            .source_nodes()
            .filter(|&n| c.graph().is_blank(n))
            .collect();
        let tgt: Vec<NodeId> = c
            .target_nodes()
            .filter(|&n| c.graph().is_blank(n))
            .collect();
        assert_eq!(src.len(), 3);
        assert_eq!(tgt.len(), 2);
        vec![
            ("b1", src[0]),
            ("b2", src[1]),
            ("b3", src[2]),
            ("b5", tgt[0]),
            ("b4", tgt[1]),
        ]
    }

    #[test]
    fn trivial_aligns_shared_uris_only() {
        let (v, c) = figure3();
        let p = trivial_partition(&c);
        let w = find_uri(&v, &c, "w");
        assert_eq!(w.len(), 2);
        assert!(p.same_class(w[0], w[1]));
        // u and v are different URIs: not aligned.
        let u = find_uri(&v, &c, "u");
        let vv = find_uri(&v, &c, "v");
        assert_eq!((u.len(), vv.len()), (1, 1));
        assert!(!p.same_class(u[0], vv[0]));
        // Blanks are singletons under Trivial.
        let blanks = figure3_blanks(&c);
        let b2 = blank_by_name(&blanks, "b2");
        let b3 = blank_by_name(&blanks, "b3");
        assert!(!p.same_class(b2, b3));
    }

    #[test]
    fn deblank_aligns_b2_b3_to_b4_but_not_b1_b5() {
        // Figure 5: b2 and b3 get the same color as b4; b1 and b5 differ
        // (their contents mention u vs v).
        let (_, c) = figure3();
        let out = deblank_partition(&c);
        let blanks = figure3_blanks(&c);
        let b1 = blank_by_name(&blanks, "b1");
        let b2 = blank_by_name(&blanks, "b2");
        let b3 = blank_by_name(&blanks, "b3");
        let b4 = blank_by_name(&blanks, "b4");
        let b5 = blank_by_name(&blanks, "b5");
        assert!(out.partition.same_class(b2, b4));
        assert!(out.partition.same_class(b3, b4));
        assert!(!out.partition.same_class(b1, b5));
    }

    #[test]
    fn hybrid_aligns_u_v_and_b1_b5() {
        // Figure 6: Hybrid aligns u with v and b1 with b5.
        let (v, c) = figure3();
        let out = hybrid_partition(&c);
        let u = find_uri(&v, &c, "u")[0];
        let vv = find_uri(&v, &c, "v")[0];
        assert!(out.partition.same_class(u, vv), "u ~ v under Hybrid");
        let blanks = figure3_blanks(&c);
        let b1 = blank_by_name(&blanks, "b1");
        let b5 = blank_by_name(&blanks, "b5");
        assert!(out.partition.same_class(b1, b5), "b1 ~ b5 under Hybrid");
    }

    #[test]
    fn hierarchy_trivial_deblank_hybrid() {
        let (_, c) = figure3();
        let t = trivial_partition(&c);
        let d = deblank_partition(&c).partition;
        let h = hybrid_partition(&c).partition;
        assert!(alignment_subset(&t, &d, &c));
        assert!(alignment_subset(&d, &h, &c));
        // And in this example the containments are proper: Deblank aligns
        // blanks Trivial does not; Hybrid aligns u/v.
        assert!(!alignment_subset(&d, &t, &c));
        assert!(!alignment_subset(&h, &d, &c));
    }

    #[test]
    fn hybrid_from_trivial_equals_hybrid_from_deblank() {
        // §3.4: "Using λTrivial instead of λDeblank above yields the same
        // result."
        let (_, c) = figure3();
        let via_deblank = hybrid_partition(&c).partition;
        let via_trivial = hybrid_from(&c, trivial_partition(&c)).partition;
        assert!(via_deblank.equivalent(&via_trivial));
    }

    #[test]
    fn blank_out_creates_single_fresh_class() {
        let (_, c) = figure3();
        let t = trivial_partition(&c);
        let x: Vec<NodeId> = c.graph().nodes().take(3).collect();
        let b = blank_out(&t, &x);
        assert!(b.same_class(x[0], x[1]));
        assert!(b.same_class(x[1], x[2]));
    }

    #[test]
    fn self_alignment_deblank_is_complete() {
        // Aligning a version with itself: every node aligned (Fig 10
        // diagonal = 1 for Deblank).
        let mut v = Vocab::new();
        let g = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uub("x", "p", "b1");
            b.bul("b1", "q", "lit");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g, &g);
        let out = deblank_partition(&c);
        let un = crate::partition::unaligned_nodes(&out.partition, &c);
        assert!(un.is_empty(), "self-alignment must be complete: {un:?}");
    }
}
