//! One-call alignment pipeline: pick a method, get an alignment report.
//!
//! This is the "downstream user" API: wraps graph union, method
//! dispatch, and the §5 metrics into a single call.

use crate::engine::RefineEngine;
use crate::metrics::{edge_stats, node_counts, EdgeStats, NodeCounts};
use crate::methods::{
    deblank_partition_streaming_with, deblank_partition_with,
    hybrid_partition_streaming_with, hybrid_partition_with,
    trivial_partition,
};
use crate::overlap_align::{overlap_align_with, OverlapConfig};
use crate::partition::{unaligned_nodes, Partition};
use crate::stream::StreamingRefineEngine;
use crate::weighted::WeightedPartition;
use rdf_model::{CombinedGraph, GraphShards, NodeId, RdfGraph, Vocab};
use rdf_obs::Recorder;
use rdf_par::Threads;
use std::sync::Arc;

/// Which alignment method to run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Method {
    /// Label equality (§3.1).
    Trivial,
    /// Bisimulation on blank nodes (§3.3).
    Deblank,
    /// Bisimulation on unaligned non-literals (§3.4).
    #[default]
    Hybrid,
    /// Weighted partitions + overlap heuristic (§4.7), with threshold θ.
    Overlap(OverlapConfig),
}

impl Method {
    /// The default Overlap method (θ = 0.65).
    pub fn overlap() -> Self {
        Method::Overlap(OverlapConfig::default())
    }

    /// Overlap with a specific threshold.
    pub fn overlap_with_theta(theta: f64) -> Self {
        Method::Overlap(OverlapConfig {
            theta,
            ..OverlapConfig::default()
        })
    }
}

/// Result of aligning two versions.
pub struct Aligned {
    /// The combined graph the partition refers to.
    pub combined: CombinedGraph,
    /// The final (weighted) partition; weights are all zero for the
    /// partition-only methods.
    pub weighted: WeightedPartition,
    /// Edge-level statistics.
    pub edges: EdgeStats,
    /// Node-level statistics (non-literal nodes).
    pub nodes: NodeCounts,
    /// Nodes of either side left unaligned.
    pub unaligned: Vec<NodeId>,
}

impl Aligned {
    /// The plain partition.
    pub fn partition(&self) -> &Partition {
        &self.weighted.partition
    }

    /// Whether a source-local / target-local node pair is aligned.
    pub fn contains(&self, source: NodeId, target: NodeId) -> bool {
        self.weighted.partition.same_class(
            self.combined.from_source(source),
            self.combined.from_target(target),
        )
    }
}

/// Align two graph versions (sharing `vocab`) with the chosen method,
/// on the default (auto) thread configuration.
pub fn align(
    vocab: &Vocab,
    source: &RdfGraph,
    target: &RdfGraph,
    method: Method,
) -> Aligned {
    align_with(vocab, source, target, method, Threads::Auto)
}

/// Align two graph versions with an explicit thread configuration.
///
/// One [`RefineEngine`] is built here and reused across every
/// refinement stage of the chosen method; its output is bit-identical
/// for every thread count, so `threads` is purely a performance knob.
pub fn align_with(
    vocab: &Vocab,
    source: &RdfGraph,
    target: &RdfGraph,
    method: Method,
    threads: Threads,
) -> Aligned {
    align_with_recorder(
        vocab,
        source,
        target,
        method,
        threads,
        Arc::new(Recorder::disabled()),
    )
}

/// As [`align_with`], with an instrumentation recorder threaded through
/// the refinement engine (per-round spans, barrier-wait counters) and
/// the pipeline stages (`align.union`, `align.metrics` spans).
///
/// Tracing is inert: the returned alignment is bit-identical to
/// [`align_with`] for every recorder.
pub fn align_with_recorder(
    vocab: &Vocab,
    source: &RdfGraph,
    target: &RdfGraph,
    method: Method,
    threads: Threads,
    recorder: Arc<Recorder>,
) -> Aligned {
    let rec = Arc::clone(&recorder);
    let mut engine = RefineEngine::with_recorder(threads, recorder);
    let combined = {
        let mut sp = rec.span("align.union");
        let combined = CombinedGraph::union(vocab, source, target);
        if sp.enabled() {
            sp.field("nodes", combined.graph().node_count());
            sp.field("triples", combined.graph().triple_count());
        }
        combined
    };
    let weighted = match method {
        Method::Trivial => {
            WeightedPartition::zero(trivial_partition(&combined))
        }
        Method::Deblank => WeightedPartition::zero(
            deblank_partition_with(&combined, &mut engine).partition,
        ),
        Method::Hybrid => WeightedPartition::zero(
            hybrid_partition_with(&combined, &mut engine).partition,
        ),
        Method::Overlap(cfg) => {
            overlap_align_with(&combined, vocab, cfg, &mut engine).weighted
        }
    };
    let mut sp = rec.span("align.metrics");
    let edges = edge_stats(&weighted.partition, &combined);
    let nodes = node_counts(&weighted.partition, &combined);
    let unaligned = unaligned_nodes(&weighted.partition, &combined);
    if sp.enabled() {
        sp.field("unaligned", unaligned.len());
    }
    drop(sp);
    Aligned {
        combined,
        weighted,
        edges,
        nodes,
        unaligned,
    }
}

/// Default shard count for the streaming alignment path when the
/// caller has no on-disk shard structure to mirror (the CLI's
/// `align --streaming` uses it for the combined graph's range
/// decomposition). The streaming engine's output is independent of the
/// shard count, so this is purely a residency-granularity knob.
pub const DEFAULT_STREAM_SHARDS: usize = 8;

/// The requested method cannot run on the streaming refinement path.
///
/// Only the partition-only methods (Trivial, Deblank, Hybrid) stream;
/// Overlap interleaves weight propagation with refinement rounds and
/// still needs the resident engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingUnsupported;

impl std::fmt::Display for StreamingUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(
            "the overlap method is not supported on the streaming \
             refinement path (use trivial, deblank or hybrid)",
        )
    }
}

impl std::error::Error for StreamingUnsupported {}

/// As [`align_with`], but running every refinement fixpoint through the
/// shard-at-a-time [`StreamingRefineEngine`] over a `stream_shards`-way
/// decomposition of the combined graph (see
/// [`rdf_model::GraphShards::chunked`]): during refinement only the
/// dense color vector plus one shard's columns per worker are resident,
/// instead of the whole combined adjacency.
///
/// The report is **bit-identical** to [`align_with`] for every
/// `stream_shards` and every thread count. Returns
/// [`StreamingUnsupported`] for [`Method::Overlap`].
pub fn align_streaming_with(
    vocab: &Vocab,
    source: &RdfGraph,
    target: &RdfGraph,
    method: Method,
    threads: Threads,
    stream_shards: usize,
) -> Result<Aligned, StreamingUnsupported> {
    align_streaming_with_recorder(
        vocab,
        source,
        target,
        method,
        threads,
        stream_shards,
        Arc::new(Recorder::disabled()),
    )
}

/// As [`align_streaming_with`], with an instrumentation recorder
/// threaded through the streaming engine (per-round and per-shard
/// spans, the `stream.peak_shard_bytes` gauge) and the pipeline
/// stages. Tracing is inert: the returned alignment is bit-identical
/// to [`align_streaming_with`] for every recorder.
#[allow(clippy::too_many_arguments)]
pub fn align_streaming_with_recorder(
    vocab: &Vocab,
    source: &RdfGraph,
    target: &RdfGraph,
    method: Method,
    threads: Threads,
    stream_shards: usize,
    recorder: Arc<Recorder>,
) -> Result<Aligned, StreamingUnsupported> {
    let rec = Arc::clone(&recorder);
    let combined = {
        let mut sp = rec.span("align.union");
        let combined = CombinedGraph::union(vocab, source, target);
        if sp.enabled() {
            sp.field("nodes", combined.graph().node_count());
            sp.field("triples", combined.graph().triple_count());
        }
        combined
    };
    let shards = GraphShards::chunked(combined.graph(), stream_shards);
    let mut engine = StreamingRefineEngine::with_recorder(threads, recorder);
    // In-memory graph shards cannot fail to load, overlap, or point
    // outside the graph; the expect documents that invariant.
    let infallible = "in-memory graph shards are well-formed";
    let weighted = match method {
        Method::Trivial => {
            WeightedPartition::zero(trivial_partition(&combined))
        }
        Method::Deblank => WeightedPartition::zero(
            deblank_partition_streaming_with(&combined, &shards, &mut engine)
                .expect(infallible)
                .partition,
        ),
        Method::Hybrid => WeightedPartition::zero(
            hybrid_partition_streaming_with(&combined, &shards, &mut engine)
                .expect(infallible)
                .partition,
        ),
        Method::Overlap(_) => return Err(StreamingUnsupported),
    };
    let mut sp = rec.span("align.metrics");
    let edges = edge_stats(&weighted.partition, &combined);
    let nodes = node_counts(&weighted.partition, &combined);
    let unaligned = unaligned_nodes(&weighted.partition, &combined);
    if sp.enabled() {
        sp.field("unaligned", unaligned.len());
    }
    drop(sp);
    Ok(Aligned {
        combined,
        weighted,
        edges,
        nodes,
        unaligned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::RdfGraphBuilder;

    fn versions() -> (Vocab, RdfGraph, RdfGraph) {
        let mut vocab = Vocab::new();
        let v1 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("old:x", "p", "shared value one");
            b.uul("old:x", "q", "shared value two");
            b.finish()
        };
        let v2 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("new:x", "p", "shared value one");
            b.uul("new:x", "q", "shared value two");
            b.finish()
        };
        (vocab, v1, v2)
    }

    #[test]
    fn method_progression() {
        let (vocab, v1, v2) = versions();
        let t = align(&vocab, &v1, &v2, Method::Trivial);
        let h = align(&vocab, &v1, &v2, Method::Hybrid);
        assert!(t.nodes.aligned_classes < h.nodes.aligned_classes);
        assert!(t.edges.ratio() < h.edges.ratio());
        assert!(!t.unaligned.is_empty());
        // Hybrid aligns the renamed URI.
        assert!(h.contains(NodeId(0), NodeId(0)));
        assert!(!t.contains(NodeId(0), NodeId(0)));
    }

    #[test]
    fn overlap_method_runs() {
        let (vocab, v1, v2) = versions();
        let o = align(&vocab, &v1, &v2, Method::overlap());
        assert!(o.edges.ratio() >= 0.99);
        let o2 = align(&vocab, &v1, &v2, Method::overlap_with_theta(0.4));
        assert!(o2.edges.ratio() >= o.edges.ratio() - 1e-12);
    }

    #[test]
    fn default_method_is_hybrid() {
        assert_eq!(Method::default(), Method::Hybrid);
    }

    #[test]
    fn streaming_alignment_matches_in_ram_alignment() {
        let (vocab, v1, v2) = versions();
        for method in [Method::Trivial, Method::Deblank, Method::Hybrid] {
            let in_ram =
                align_with(&vocab, &v1, &v2, method, Threads::Fixed(1));
            for shards in [1usize, 2, 4, 8] {
                for threads in [1usize, 2, 4] {
                    let streamed = align_streaming_with(
                        &vocab,
                        &v1,
                        &v2,
                        method,
                        Threads::Fixed(threads),
                        shards,
                    )
                    .expect("partition methods stream");
                    assert_eq!(
                        streamed.partition().colors(),
                        in_ram.partition().colors(),
                        "{method:?} shards={shards} threads={threads}"
                    );
                    assert_eq!(streamed.edges.ratio(), in_ram.edges.ratio());
                    assert_eq!(streamed.unaligned, in_ram.unaligned);
                }
            }
        }
        let overlap = align_streaming_with(
            &vocab,
            &v1,
            &v2,
            Method::overlap(),
            Threads::Fixed(1),
            4,
        );
        assert!(matches!(overlap, Err(StreamingUnsupported)));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (vocab, v1, v2) = versions();
        for method in [Method::Trivial, Method::Deblank, Method::Hybrid] {
            let one =
                align_with(&vocab, &v1, &v2, method, Threads::Fixed(1));
            let four =
                align_with(&vocab, &v1, &v2, method, Threads::Fixed(4));
            assert_eq!(
                one.partition().colors(),
                four.partition().colors(),
                "{method:?} diverged across thread counts"
            );
            assert_eq!(one.edges.ratio(), four.edges.ratio());
            assert_eq!(one.unaligned, four.unaligned);
        }
    }
}
