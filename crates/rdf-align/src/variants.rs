//! Refinement variants proposed as future work (§6) and as the fix for
//! the predicate-only error mode observed in §5.1.
//!
//! * [`context_refine_fixpoint`] — recolor by outbound *and inbound*
//!   neighbourhoods ("better alignment could potentially be obtained by
//!   using not only the contents of a node but also its context, the
//!   nodes from which the given node can be reached");
//! * [`key_restricted_fixpoint`] — use only the outbound edges whose
//!   predicate belongs to a chosen *key* set ("variants of our approach
//!   where only selected parts of the outbound neighborhood are used,
//!   for instance specified by a notion of a key for graph databases");
//! * [`predicate_context_partition`] — color predicate-only URIs by the
//!   subject/object colors of the triples that use them (§5.1: "a better
//!   solution would identify URIs that are predominantly used as
//!   predicates and use a different refinement process").

use crate::engine::{RefineEngine, RoundKey, K1, K2};
use crate::partition::Partition;
use crate::refine::RefineOutcome;
use rdf_model::hash::mix64;
use rdf_model::{FxHashMap, FxHashSet, LabelId, NodeId, TripleGraph};

/// Inbound neighbourhoods `in(n) = {(p, s) | (s, p, n) ∈ E}` in CSR form.
struct InAdjacency {
    index: Vec<u32>,
    pairs: Vec<(NodeId, NodeId)>,
}

impl InAdjacency {
    fn build(g: &TripleGraph) -> Self {
        let n = g.node_count();
        let mut index = vec![0u32; n + 1];
        for t in g.triples() {
            index[t.o.index() + 1] += 1;
        }
        for i in 0..n {
            index[i + 1] += index[i];
        }
        let mut cursor = index.clone();
        let mut pairs = vec![(NodeId(0), NodeId(0)); g.triple_count()];
        for t in g.triples() {
            let at = cursor[t.o.index()] as usize;
            pairs[at] = (t.p, t.s);
            cursor[t.o.index()] += 1;
        }
        InAdjacency { index, pairs }
    }

    fn of(&self, n: NodeId) -> &[(NodeId, NodeId)] {
        let lo = self.index[n.index()] as usize;
        let hi = self.index[n.index() + 1] as usize;
        &self.pairs[lo..hi]
    }
}

/// Run context refinement (out- and in-neighbourhoods) to fixpoint.
pub fn context_refine_fixpoint(
    g: &TripleGraph,
    initial: Partition,
    x: &[NodeId],
) -> RefineOutcome {
    context_refine_fixpoint_with(g, initial, x, &mut RefineEngine::auto())
}

/// As [`context_refine_fixpoint`], through a caller-owned engine:
/// recolor nodes of `X` by `(λ(n), out-colors, in-colors)` each round
/// until the partition stabilises.
pub fn context_refine_fixpoint_with(
    g: &TripleGraph,
    initial: Partition,
    x: &[NodeId],
    engine: &mut RefineEngine,
) -> RefineOutcome {
    let inbound = InAdjacency::build(g);
    let mut in_x = vec![false; g.node_count()];
    for &n in x {
        in_x[n.index()] = true;
    }
    engine.refine_fixpoint_custom(g.node_count(), initial, {
        let in_x = &in_x;
        let inbound = &inbound;
        move |i, partition: &Partition, buf: &mut Vec<(u32, u32)>| {
            let node = NodeId(i as u32);
            if in_x[i] {
                let c = partition.color(node).0 as u64;
                let mut h1 = mix64(c ^ 0x5157_1057_AAAA_0001);
                let mut h2 = mix64(c ^ 0x5157_1057_BBBB_0002);
                for (salt, pairs) in
                    [(3u64, g.out(node)), (5u64, inbound.of(node))]
                {
                    buf.clear();
                    for &(p, o) in pairs {
                        buf.push((
                            partition.color(p).0,
                            partition.color(o).0,
                        ));
                    }
                    buf.sort_unstable();
                    buf.dedup();
                    h1 = (h1.rotate_left(5) ^ salt).wrapping_mul(K1);
                    h2 = (h2.rotate_left(9) ^ salt).wrapping_mul(K2);
                    for &(cp, co) in buf.iter() {
                        let x = ((cp as u64) << 32) | co as u64;
                        h1 = (h1.rotate_left(5) ^ x).wrapping_mul(K1);
                        h2 = (h2.rotate_left(9) ^ x).wrapping_mul(K2);
                    }
                }
                RoundKey::Recolored(h1, h2)
            } else {
                RoundKey::Kept(partition.color(node).0)
            }
        }
    })
}

/// A key specification: the set of predicate *labels* whose edges define
/// node identity.
#[derive(Debug, Clone, Default)]
pub struct KeySpec {
    predicates: FxHashSet<LabelId>,
}

impl KeySpec {
    /// Key over the given predicate labels.
    pub fn new(predicates: impl IntoIterator<Item = LabelId>) -> Self {
        KeySpec {
            predicates: predicates.into_iter().collect(),
        }
    }

    /// Whether a predicate label participates in the key.
    pub fn contains(&self, label: LabelId) -> bool {
        self.predicates.contains(&label)
    }
}

/// Run key-restricted refinement to fixpoint.
pub fn key_restricted_fixpoint(
    g: &TripleGraph,
    key: &KeySpec,
    initial: Partition,
    x: &[NodeId],
) -> RefineOutcome {
    key_restricted_fixpoint_with(g, key, initial, x, &mut RefineEngine::auto())
}

/// As [`key_restricted_fixpoint`], through a caller-owned engine: like
/// §3.2 but only edges whose predicate label is in the key contribute
/// to the color.
pub fn key_restricted_fixpoint_with(
    g: &TripleGraph,
    key: &KeySpec,
    initial: Partition,
    x: &[NodeId],
    engine: &mut RefineEngine,
) -> RefineOutcome {
    let mut in_x = vec![false; g.node_count()];
    for &n in x {
        in_x[n.index()] = true;
    }
    engine.refine_fixpoint_custom(g.node_count(), initial, {
        let in_x = &in_x;
        move |i, partition: &Partition, buf: &mut Vec<(u32, u32)>| {
            let node = NodeId(i as u32);
            if in_x[i] {
                buf.clear();
                for &(p, o) in g.out(node) {
                    if key.contains(g.label(p)) {
                        buf.push((
                            partition.color(p).0,
                            partition.color(o).0,
                        ));
                    }
                }
                buf.sort_unstable();
                buf.dedup();
                let c = partition.color(node).0 as u64;
                let mut h1 = mix64(c ^ 0x4B45_5952_4546_494E); // "KEYREFIN"
                let mut h2 = mix64(c ^ 0x1234_5678_9ABC_DEF0);
                for &(cp, co) in buf.iter() {
                    let x = ((cp as u64) << 32) | co as u64;
                    h1 = (h1.rotate_left(5) ^ x).wrapping_mul(K1);
                    h2 = (h2.rotate_left(9) ^ x).wrapping_mul(K2);
                }
                RoundKey::Recolored(h1, h2)
            } else {
                RoundKey::Kept(partition.color(node).0)
            }
        }
    })
}

/// URIs used *only* in predicate position, and a partition refinement for
/// them: color each by the set of (subject color, object color) pairs of
/// the triples it labels (§5.1's suggested fix; one step usually
/// suffices since predicate colors do not feed back into themselves).
pub fn predicate_context_partition(
    g: &TripleGraph,
    base: &Partition,
    predicates: &[NodeId],
) -> Partition {
    let mut groups: FxHashMap<NodeId, Vec<(u32, u32)>> = FxHashMap::default();
    for &p in predicates {
        groups.insert(p, Vec::new());
    }
    for t in g.triples() {
        if let Some(v) = groups.get_mut(&t.p) {
            v.push((base.color(t.s).0, base.color(t.o).0));
        }
    }
    let mut raw: Vec<(u8, u64, u64)> = base
        .colors()
        .iter()
        .map(|c| (0u8, c.0 as u64, 0u64))
        .collect();
    for (&p, pairs) in groups.iter_mut() {
        pairs.sort_unstable();
        pairs.dedup();
        let mut h1 = mix64(0xFEED);
        let mut h2 = mix64(0xBEEF);
        for &(cs, co) in pairs.iter() {
            let x = ((cs as u64) << 32) | co as u64;
            h1 = (h1.rotate_left(5) ^ x).wrapping_mul(K1);
            h2 = (h2.rotate_left(9) ^ x).wrapping_mul(K2);
        }
        raw[p.index()] = (1u8, h1, h2);
    }
    Partition::from_colors(&raw)
}

/// Result of usage-based predicate matching: which predicates were in
/// ambiguous classes, and how they pair up across the sides.
#[derive(Debug, Clone, Default)]
pub struct PredicateMatching {
    /// Predicates (either side) whose class was not already 1-1.
    pub ambiguous: Vec<NodeId>,
    /// Matched `(source, target, diff distance)` pairs.
    pub pairs: Vec<(NodeId, NodeId, f64)>,
}

impl PredicateMatching {
    /// Apply to a partition: every ambiguous predicate becomes a
    /// singleton class, then each matched pair shares a fresh class —
    /// *splitting* the contentless mega-class that outbound-only
    /// refinement produces (§5.1).
    pub fn apply(&self, partition: &Partition) -> Partition {
        let mut raw: Vec<(u8, u32)> =
            partition.colors().iter().map(|c| (0u8, c.0)).collect();
        let mut next = partition.num_colors();
        for &p in &self.ambiguous {
            raw[p.index()] = (1, next);
            next += 1;
        }
        for &(n, m, _) in &self.pairs {
            raw[n.index()] = (1, next);
            raw[m.index()] = (1, next);
            next += 1;
        }
        Partition::from_colors(&raw)
    }
}

/// Match unaligned predicate-only URIs across the two sides by the
/// *overlap* of their usage pairs `{(λ(s), λ(o))}` — the robust variant
/// of [`predicate_context_partition`] for evolving data, where exact
/// usage equality is too brittle (every inserted row would break it).
///
/// Returns the matching; apply it with [`PredicateMatching::apply`].
pub fn match_predicates_by_usage(
    combined: &rdf_model::CombinedGraph,
    partition: &Partition,
    theta: f64,
) -> PredicateMatching {
    use crate::overlap::{overlap_match, PrefixBound};
    use rdf_model::Side;

    let g = combined.graph();
    let counts = crate::partition::SideCounts::new(partition, combined);
    let predicates = crate::metrics::predicate_only_uris(combined);
    let mut a: Vec<NodeId> = Vec::new();
    let mut b: Vec<NodeId> = Vec::new();
    for &p in &predicates {
        // Only predicates whose class is ambiguous or unaligned need a
        // usage-based decision; 1-1 classes are already settled.
        let c = partition.color(p).index();
        let settled = counts.source[c] == 1 && counts.target[c] == 1;
        if settled {
            continue;
        }
        match combined.side(p) {
            Side::Source => a.push(p),
            Side::Target => b.push(p),
        }
    }
    let usage = |p: NodeId| -> Vec<u64> {
        let mut pairs: Vec<u64> = g
            .triples()
            .iter()
            .filter(|t| t.p == p)
            .map(|t| {
                ((partition.color(t.s).0 as u64) << 32)
                    | partition.color(t.o).0 as u64
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    };
    let char_a: Vec<Vec<u64>> = a.iter().map(|&p| usage(p)).collect();
    let char_b: Vec<Vec<u64>> = b.iter().map(|&p| usage(p)).collect();
    // Confirm with the same overlap measure (diff = 1 − overlap).
    let char_b_for_sigma = char_b.clone();
    let index_of_b: rdf_model::FxHashMap<NodeId, usize> =
        b.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let index_of_a: rdf_model::FxHashMap<NodeId, usize> =
        a.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let char_a_for_sigma = char_a.clone();
    let (h, _) = overlap_match(
        &a,
        &char_a,
        &b,
        &char_b,
        theta,
        |n, m| {
            let ca = &char_a_for_sigma[index_of_a[&n]];
            let cb = &char_b_for_sigma[index_of_b[&m]];
            crate::overlap::diff_sorted(ca, cb)
        },
        PrefixBound::Safe,
    );
    // Keep only the best mutual match per node (predicates are few; a
    // greedy pass by ascending distance suffices).
    let mut edges = h.edges;
    edges.sort_by(|x, y| x.2.total_cmp(&y.2));
    let mut used_a: FxHashSet<NodeId> = FxHashSet::default();
    let mut used_b: FxHashSet<NodeId> = FxHashSet::default();
    edges.retain(|&(n, m, _)| {
        if used_a.contains(&n) || used_b.contains(&m) {
            false
        } else {
            used_a.insert(n);
            used_b.insert(m);
            true
        }
    });
    let mut ambiguous = a;
    ambiguous.extend_from_slice(&b);
    PredicateMatching {
        ambiguous,
        pairs: edges,
    }
}

/// Merge explicit node pairs into a partition: each pair's two classes
/// become one.
pub fn merge_pairs(
    partition: &Partition,
    pairs: &[(NodeId, NodeId, f64)],
) -> Partition {
    // Union-find over colors.
    let k = partition.num_colors() as usize;
    let mut parent: Vec<u32> = (0..k as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for &(n, m, _) in pairs {
        let a = find(&mut parent, partition.color(n).0);
        let b = find(&mut parent, partition.color(m).0);
        if a != b {
            parent[a as usize] = b;
        }
    }
    let raw: Vec<u32> = partition
        .colors()
        .iter()
        .map(|c| find(&mut parent, c.0))
        .collect();
    Partition::from_colors(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::blank_out;
    use crate::partition::unaligned_non_literals;
    use crate::refine::label_partition;
    use rdf_model::{CombinedGraph, RdfGraphBuilder, Vocab};

    /// Two versions where outbound content is identical for two distinct
    /// entities, and only the *context* (who points at them) separates
    /// them.
    fn context_case() -> (Vocab, CombinedGraph) {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            // Two sinks with no content, reachable from different places.
            b.uuu("a", "p", "old:sink1");
            b.uuu("b", "q", "old:sink2");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("a", "p", "new:sink1");
            b.uuu("b", "q", "new:sink2");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        (v, c)
    }

    fn uri(v: &Vocab, c: &CombinedGraph, text: &str) -> NodeId {
        c.graph()
            .nodes()
            .find(|&n| {
                c.graph().is_uri(n) && v.text(c.graph().label(n)) == text
            })
            .unwrap()
    }

    #[test]
    fn outbound_only_hybrid_conflates_sinks() {
        // Plain hybrid cannot distinguish the two renamed sinks: both
        // have empty content.
        let (v, c) = context_case();
        let h = crate::methods::hybrid_partition(&c).partition;
        let s1 = uri(&v, &c, "old:sink1");
        let s2 = uri(&v, &c, "new:sink2");
        assert!(h.same_class(s1, s2), "outbound-only conflates sinks");
    }

    #[test]
    fn context_refinement_separates_sinks() {
        let (v, c) = context_case();
        let g = c.graph();
        let base = label_partition(g);
        let un = unaligned_non_literals(&base, &c);
        let blanked = blank_out(&base, &un);
        let out = context_refine_fixpoint(g, blanked, &un);
        let s1_old = uri(&v, &c, "old:sink1");
        let s1_new = uri(&v, &c, "new:sink1");
        let s2_old = uri(&v, &c, "old:sink2");
        let s2_new = uri(&v, &c, "new:sink2");
        assert!(out.partition.same_class(s1_old, s1_new));
        assert!(out.partition.same_class(s2_old, s2_new));
        assert!(
            !out.partition.same_class(s1_old, s2_new),
            "context separates sink1 from sink2"
        );
    }

    #[test]
    fn key_restricted_ignores_non_key_edges() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("old:x", "name", "the entity");
            b.uul("old:x", "noise", "version one junk");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("new:x", "name", "the entity");
            b.uul("new:x", "noise", "version two junk");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let g = c.graph();
        // Plain hybrid: noise differs -> unaligned.
        let h = crate::methods::hybrid_partition(&c).partition;
        let x_old = uri(&v, &c, "old:x");
        let x_new = uri(&v, &c, "new:x");
        assert!(!h.same_class(x_old, x_new));
        // Key = {name}: noise edges are ignored, identity comes from the
        // name alone.
        let key = KeySpec::new([v.find_uri("name").unwrap()]);
        let base = label_partition(g);
        let un = unaligned_non_literals(&base, &c);
        let blanked = blank_out(&base, &un);
        let out = key_restricted_fixpoint(g, &key, blanked, &un);
        assert!(out.partition.same_class(x_old, x_new));
    }

    #[test]
    fn key_spec_membership() {
        let mut v = Vocab::new();
        let name = v.uri("name");
        let other = v.uri("other");
        let key = KeySpec::new([name]);
        assert!(key.contains(name));
        assert!(!key.contains(other));
    }

    #[test]
    fn usage_matching_pairs_predicates_despite_churn() {
        // Predicates whose usage overlaps strongly but not exactly —
        // exact context coloring fails, usage matching succeeds.
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            for i in 0..6 {
                b.uul(&format!("e{i}"), "old:name", &format!("value {i}"));
            }
            b.uul("e0", "old:other", "something");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            for i in 0..5 {
                b.uul(&format!("e{i}"), "new:name", &format!("value {i}"));
            }
            b.uul("e9", "new:name", "value 9"); // one new usage
            b.uul("e0", "new:other", "something");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let h = crate::methods::hybrid_partition(&c).partition;
        let matching = match_predicates_by_usage(&c, &h, 0.5);
        let name_old = uri(&v, &c, "old:name");
        let name_new = uri(&v, &c, "new:name");
        let other_old = uri(&v, &c, "old:other");
        let other_new = uri(&v, &c, "new:other");
        assert!(
            matching
                .pairs
                .iter()
                .any(|&(n, m, _)| n == name_old && m == name_new),
            "usage matching must pair the name predicates: {matching:?}"
        );
        // Applying splits the predicate mega-class into 1-1 pairs.
        let refined = matching.apply(&h);
        assert!(refined.same_class(name_old, name_new));
        assert!(refined.same_class(other_old, other_new));
        assert!(!refined.same_class(name_old, other_new));
        // Non-predicate classes are untouched.
        for n in c.graph().nodes() {
            for m in c.graph().nodes() {
                if c.graph().is_literal(n) && h.same_class(n, m) {
                    assert!(refined.same_class(n, m));
                }
            }
        }
    }

    #[test]
    fn predicate_context_separates_predicates_by_usage() {
        // Two predicate-only URIs with identical (empty) content but
        // different usage.
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "old:p", "value a");
            b.uul("y", "old:q", "value b");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "new:p", "value a");
            b.uul("y", "new:q", "value b");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let g = c.graph();
        // Hybrid conflates all four predicate URIs (empty content).
        let h = crate::methods::hybrid_partition(&c).partition;
        let p_old = uri(&v, &c, "old:p");
        let q_new = uri(&v, &c, "new:q");
        assert!(h.same_class(p_old, q_new));
        // Predicate-context coloring separates p-usage from q-usage.
        let preds: Vec<NodeId> = crate::metrics::predicate_only_uris(&c)
            .into_iter()
            .collect();
        let refined = predicate_context_partition(g, &h, &preds);
        let p_new = uri(&v, &c, "new:p");
        assert!(refined.same_class(p_old, p_new));
        assert!(!refined.same_class(p_old, q_new));
    }
}
