//! Deltas from alignments.
//!
//! The paper's related work notes that "constructing an alignment between
//! two graphs is virtually equivalent to constructing their delta \[20\]" —
//! a description of the changes between versions. This module derives
//! that delta: once the alignment identifies corresponding nodes, every
//! triple is classified as *kept* (its color triple appears on both
//! sides), *deleted* (source-only) or *inserted* (target-only), and
//! aligned-but-renamed nodes are reported as renames.

use crate::partition::{Partition, SideCounts};
use rdf_model::{CombinedGraph, FxHashSet, NodeId, Side, Triple, Vocab};

/// The delta between two versions under an alignment.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Source triples whose class also occurs on the target side.
    pub kept: Vec<Triple>,
    /// Source triples with no corresponding target triple.
    pub deleted: Vec<Triple>,
    /// Target triples with no corresponding source triple.
    pub inserted: Vec<Triple>,
    /// Aligned node pairs whose labels differ (renamed URIs; combined
    /// graph ids, source first).
    pub renamed: Vec<(NodeId, NodeId)>,
}

impl Delta {
    /// Total number of change operations (deletions + insertions).
    pub fn change_count(&self) -> usize {
        self.deleted.len() + self.inserted.len()
    }

    /// Fraction of source triples kept.
    pub fn kept_fraction(&self) -> f64 {
        let total = self.kept.len() + self.deleted.len();
        if total == 0 {
            1.0
        } else {
            self.kept.len() as f64 / total as f64
        }
    }
}

/// Compute the delta induced by a partition over a combined graph.
pub fn delta(partition: &Partition, combined: &CombinedGraph) -> Delta {
    let g = combined.graph();
    let mut s1: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
    let mut s2: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
    for t in g.triples() {
        let key = (
            partition.color(t.s).0,
            partition.color(t.p).0,
            partition.color(t.o).0,
        );
        match combined.side(t.s) {
            Side::Source => s1.insert(key),
            Side::Target => s2.insert(key),
        };
    }
    let mut out = Delta::default();
    for t in g.triples() {
        let key = (
            partition.color(t.s).0,
            partition.color(t.p).0,
            partition.color(t.o).0,
        );
        match combined.side(t.s) {
            Side::Source => {
                if s2.contains(&key) {
                    out.kept.push(*t);
                } else {
                    out.deleted.push(*t);
                }
            }
            Side::Target => {
                if !s1.contains(&key) {
                    out.inserted.push(*t);
                }
            }
        }
    }

    // Renames: aligned classes that contain nodes with differing labels.
    let counts = SideCounts::new(partition, combined);
    let k = partition.num_colors() as usize;
    let mut source_rep: Vec<Option<NodeId>> = vec![None; k];
    for n in combined.source_nodes() {
        let c = partition.color(n).index();
        if counts.source[c] == 1 && counts.target[c] == 1 {
            source_rep[c] = Some(n);
        }
    }
    for m in combined.target_nodes() {
        let c = partition.color(m).index();
        if let Some(n) = source_rep[c] {
            if g.label(n) != g.label(m) && !g.is_blank(n) && !g.is_blank(m) {
                out.renamed.push((n, m));
            }
        }
    }
    out.renamed.sort_unstable();
    out
}

/// Render a delta as human-readable change lines.
pub fn render_delta(
    d: &Delta,
    combined: &CombinedGraph,
    vocab: &Vocab,
    limit: usize,
) -> String {
    let g = combined.graph();
    let show = |n: NodeId| -> String {
        match vocab.resolve(g.label(n)) {
            rdf_model::LabelRef::Blank => format!("_:n{}", n.0),
            other => other.to_string(),
        }
    };
    let mut out = format!(
        "delta: {} kept, {} deleted, {} inserted, {} renamed\n",
        d.kept.len(),
        d.deleted.len(),
        d.inserted.len(),
        d.renamed.len()
    );
    for t in d.deleted.iter().take(limit) {
        out.push_str(&format!("- {} {} {}\n", show(t.s), show(t.p), show(t.o)));
    }
    for t in d.inserted.iter().take(limit) {
        out.push_str(&format!("+ {} {} {}\n", show(t.s), show(t.p), show(t.o)));
    }
    for &(n, m) in d.renamed.iter().take(limit) {
        out.push_str(&format!("~ {} -> {}\n", show(n), show(m)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{hybrid_partition, trivial_partition};
    use rdf_model::RdfGraphBuilder;

    fn versions() -> (Vocab, CombinedGraph) {
        // old:x is renamed to new:x with unchanged content (hybrid can
        // align it); the churn happens on the stable URI y.
        let mut vocab = Vocab::new();
        let v1 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("old:x", "p", "stable value");
            b.uul("y", "p", "dropped value");
            b.finish()
        };
        let v2 = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uul("new:x", "p", "stable value");
            b.uul("y", "p", "added value");
            b.finish()
        };
        let c = CombinedGraph::union(&vocab, &v1, &v2);
        (vocab, c)
    }

    #[test]
    fn delta_under_hybrid_sees_through_rename() {
        let (_, c) = versions();
        let h = hybrid_partition(&c).partition;
        let d = delta(&h, &c);
        // (x, p, "stable value") is kept despite the subject rename.
        assert_eq!(d.kept.len(), 1);
        assert_eq!(d.deleted.len(), 1);
        assert_eq!(d.inserted.len(), 1);
        assert_eq!(d.renamed.len(), 1);
        assert!((d.kept_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(d.change_count(), 2);
    }

    #[test]
    fn delta_under_trivial_misses_the_rename() {
        let (_, c) = versions();
        let t = trivial_partition(&c);
        let d = delta(&t, &c);
        // Without the rename, x's triple also looks changed.
        assert_eq!(d.kept.len(), 0);
        assert_eq!(d.deleted.len(), 2);
        assert_eq!(d.inserted.len(), 2);
        assert!(d.renamed.is_empty());
    }

    #[test]
    fn render_shows_operations() {
        let (vocab, c) = versions();
        let h = hybrid_partition(&c).partition;
        let d = delta(&h, &c);
        let text = render_delta(&d, &c, &vocab, 10);
        assert!(text.contains("1 kept"));
        assert!(text.contains("~ old:x -> new:x"));
        assert!(text.contains("- y p"));
        assert!(text.contains("+ y p"));
    }

    #[test]
    fn self_delta_is_empty() {
        let mut vocab = Vocab::new();
        let v = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uub("x", "p", "rec");
            b.bul("rec", "f", "v");
            b.finish()
        };
        let c = CombinedGraph::union(&vocab, &v, &v);
        let h = hybrid_partition(&c).partition;
        let d = delta(&h, &c);
        assert!(d.deleted.is_empty());
        assert!(d.inserted.is_empty());
        assert_eq!(d.kept_fraction(), 1.0);
    }
}
