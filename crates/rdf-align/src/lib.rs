//! RDF graph alignment with bisimulation.
//!
//! Implementation of *RDF Graph Alignment with Bisimulation* (Buneman &
//! Staworko, PVLDB 9(12), 2016): given two versions of an evolving RDF
//! graph, find the pairs of nodes that denote the same entity, despite
//! blank nodes, URI renamings and small edits to literals and structure.
//!
//! The methods form a hierarchy of progressively stronger aligners:
//!
//! | method | module | handles |
//! |--------|--------|---------|
//! | Trivial | [`methods::trivial_partition`] | identical URIs/literals |
//! | Deblank | [`methods::deblank_partition`] | blank nodes, via bisimulation |
//! | Hybrid  | [`methods::hybrid_partition`]  | renamed URIs |
//! | Overlap | `overlap_align` | edited literals & structure, via weighted partitions |
//!
//! plus the expensive reference distance `σ_Edit` in the companion crate
//! `rdf-edit`, which Overlap approximates (Theorem 1).
//!
//! ```
//! use rdf_model::{Vocab, RdfGraphBuilder, CombinedGraph};
//! use rdf_align::methods::hybrid_partition;
//!
//! let mut vocab = Vocab::new();
//! let v1 = {
//!     let mut b = RdfGraphBuilder::new(&mut vocab);
//!     b.uul("ed-uni", "name", "University of Edinburgh");
//!     b.finish()
//! };
//! let v2 = {
//!     let mut b = RdfGraphBuilder::new(&mut vocab);
//!     b.uul("uoe", "name", "University of Edinburgh");
//!     b.finish()
//! };
//! let combined = CombinedGraph::union(&vocab, &v1, &v2);
//! let hybrid = hybrid_partition(&combined);
//! // The renamed university URIs end up in the same class.
//! let ed = combined.from_source(rdf_model::NodeId(0));
//! let uoe = combined.from_target(rdf_model::NodeId(0));
//! assert!(hybrid.partition.same_class(ed, uoe));
//! ```

#![deny(missing_docs)]

pub mod align;
pub mod bisim;
pub mod delta;
pub mod engine;
pub mod enrich;
pub mod metrics;
pub mod methods;
pub mod overlap;
pub mod overlap_align;
pub mod partition;
pub mod pipeline;
pub mod propagate;
pub mod refine;
pub mod stream;
pub mod variants;
pub mod weighted;

pub use align::AlignmentView;
pub use delta::{delta, Delta};
pub use engine::RefineEngine;
pub use enrich::WeightedBipartite;
pub use pipeline::{
    align, align_streaming_with, align_streaming_with_recorder, align_with,
    align_with_recorder, Aligned, Method, StreamingUnsupported,
    DEFAULT_STREAM_SHARDS,
};
pub use metrics::{EdgeStats, MatchBreakdown, NodeCounts};
pub use methods::{
    deblank_partition, deblank_partition_streaming_with,
    deblank_partition_with, hybrid_partition,
    hybrid_partition_streaming_with, hybrid_partition_with,
    trivial_partition, HybridOutcome,
};
pub use overlap::PrefixBound;
pub use overlap_align::{
    overlap_align, overlap_align_with, LiteralChar, OverlapConfig,
    OverlapOutcome,
};
pub use partition::{ColorId, Partition};
pub use propagate::{propagate, PropagateConfig};
pub use refine::{
    bisimulation_partition, label_partition, label_partition_from,
    RefineOutcome,
};
pub use stream::{StreamError, StreamingRefineEngine};
pub use weighted::WeightedPartition;
// The thread-count knob of the engine, re-exported so downstream crates
// (CLI, benches) need not depend on rdf-par directly.
pub use rdf_par::Threads;
// The instrumentation handle the engines accept, re-exported for the
// same reason.
pub use rdf_obs::Recorder;
