//! The overlap alignment — Algorithm 2 of §4.7.
//!
//! Starting from `ξ₀ = (λ_Hybrid, 0)`, the algorithm alternates:
//!
//! 1. match unaligned *literals* by word-set overlap confirmed with the
//!    normalised string edit distance `σ_Literals`;
//! 2. `Propagate(Enrich(ξ, H))` — fold the discovered pairs into the
//!    weighted partition and re-derive unaligned non-literal colors;
//! 3. match unaligned *non-literals* by the overlap of their outgoing
//!    edge colors `out-color_ξ(n) = {(λ(p), λ(o))}` confirmed with the
//!    matching-based distance `σ_ξ^NL`;
//!
//! until no new close pairs are found. Theorem 1 guarantees every pair
//! the result aligns is `σ_Edit`-close.

use crate::engine::RefineEngine;
use crate::enrich::enrich;
use crate::methods::hybrid_partition_with;
use crate::overlap::{overlap_match, OverlapMatchStats, PrefixBound};
use crate::partition::SideCounts;
use crate::propagate::{propagate_cols, PropagateConfig};
use crate::weighted::WeightedPartition;
use rdf_model::{CombinedGraph, FxHashMap, NodeId, Side, TripleGraph, Vocab};
use rdf_edit::algebra::oplus;
use rdf_edit::levenshtein::normalized_levenshtein;
use std::hash::BuildHasher;

/// How literals are characterised in Algorithm 2's round 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LiteralChar {
    /// The paper's `split`: the set of words. Blind to edits *within* a
    /// single-word literal ("Sławek" vs "Sławomir" share no word).
    #[default]
    Words,
    /// Character q-grams (padded): catches single-token edits at the
    /// cost of larger object sets. `3` is the classic choice from the
    /// entity-resolution literature the paper cites \[8\].
    Ngrams(u8),
}

/// Parameters of the overlap alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapConfig {
    /// Similarity threshold θ (Fig 15 finds 0.65 optimal on GtoPdb).
    pub theta: f64,
    /// Prefix-probing bound for Algorithm 1.
    pub prefix: PrefixBound,
    /// Literal characterisation for round 0.
    pub literal_char: LiteralChar,
    /// Weighted-refinement convergence parameters.
    pub propagate: PropagateConfig,
    /// Cap on outer iterations (each aligns ≥ 1 new pair, so this only
    /// guards pathological inputs).
    pub max_rounds: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            theta: 0.65,
            prefix: PrefixBound::Safe,
            literal_char: LiteralChar::default(),
            propagate: PropagateConfig::default(),
            max_rounds: 64,
        }
    }
}

/// Per-round diagnostics of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct OverlapRound {
    /// Whether this round matched literals (round 0) or non-literals.
    pub literal_round: bool,
    /// Unaligned source nodes considered.
    pub a_size: usize,
    /// Unaligned target nodes considered.
    pub b_size: usize,
    /// Matcher statistics.
    pub stats: OverlapMatchStats,
}

/// Result of the overlap alignment.
#[derive(Debug, Clone)]
pub struct OverlapOutcome {
    /// The final weighted partition `ξ_Overlap`.
    pub weighted: WeightedPartition,
    /// Per-round diagnostics (round 0 is the literal round).
    pub rounds: Vec<OverlapRound>,
}

/// Character q-grams of a padded string, hashed to stable object ids —
/// the alternative literal characterisation for single-token labels.
pub fn split_ngrams(text: &str, q: usize) -> Vec<u64> {
    let hasher = rdf_model::FxBuildHasher::default();
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    // Pad with q-1 sentinels on both ends so prefixes/suffixes weigh in.
    let mut padded: Vec<char> = Vec::with_capacity(chars.len() + 2 * (q - 1));
    padded.extend(std::iter::repeat_n('\u{2}', q - 1));
    padded.extend(&chars);
    padded.extend(std::iter::repeat_n('\u{3}', q - 1));
    let mut grams: Vec<u64> = padded
        .windows(q)
        .map(|w| hasher.hash_one(w))
        .collect();
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Split a literal into its word set, hashed to stable object ids
/// (the `split` characterising function of §4.7).
pub fn split_words(text: &str) -> Vec<u64> {
    let hasher = rdf_model::FxBuildHasher::default();
    let mut words: Vec<u64> = text
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| hasher.hash_one(w))
        .collect();
    words.sort_unstable();
    words.dedup();
    words
}

/// `out-color_ξ(n)`: the set of colors of outgoing edges, packed as
/// `(color(p) << 32) | color(o)`.
pub fn out_colors(
    g: &TripleGraph,
    xi: &WeightedPartition,
    n: NodeId,
) -> Vec<u64> {
    let mut cs: Vec<u64> = g
        .out(n)
        .iter()
        .map(|&(p, o)| {
            ((xi.color(p).0 as u64) << 32) | xi.color(o).0 as u64
        })
        .collect();
    cs.sort_unstable();
    cs.dedup();
    cs
}

/// The non-literal confirming distance `σ_ξ^NL` of §4.7.
///
/// Couples the outgoing edges of `n` and `m` that share an edge color,
/// pairing them by rank when ordered by edge weight `ω(p) ⊕ ω(o)` (the
/// optimal matching within one cluster needs no Hungarian search because
/// intra-cluster distances depend only on the endpoint weights). Each
/// coupled pair contributes `(σ_ξ(p1,p2) ⊕ σ_ξ(o1,o2)) / f`; the `R`
/// uncoupled edges contribute `R / f`, with
/// `f = max(|out(n)|, |out(m)|)`.
pub fn sigma_nl(
    g: &TripleGraph,
    xi: &WeightedPartition,
    n: NodeId,
    m: NodeId,
) -> f64 {
    let out_n = g.out(n);
    let out_m = g.out(m);
    let f = out_n.len().max(out_m.len());
    if f == 0 {
        return 0.0;
    }
    if out_n.is_empty() || out_m.is_empty() {
        return 1.0;
    }
    // Group edges by edge color; remember (weight(p)+weight(o) key, p, o).
    let mut groups_n: FxHashMap<u64, Vec<(f64, NodeId, NodeId)>> =
        FxHashMap::default();
    for &(p, o) in out_n {
        let key = ((xi.color(p).0 as u64) << 32) | xi.color(o).0 as u64;
        groups_n
            .entry(key)
            .or_default()
            .push((oplus(xi.weight(p), xi.weight(o)), p, o));
    }
    let mut groups_m: FxHashMap<u64, Vec<(f64, NodeId, NodeId)>> =
        FxHashMap::default();
    for &(p, o) in out_m {
        let key = ((xi.color(p).0 as u64) << 32) | xi.color(o).0 as u64;
        groups_m
            .entry(key)
            .or_default()
            .push((oplus(xi.weight(p), xi.weight(o)), p, o));
    }

    let ff = f as f64;
    let mut acc = 0.0f64;
    let mut coupled = 0usize;
    for (key, list_n) in groups_n.iter_mut() {
        let Some(list_m) = groups_m.get_mut(key) else {
            continue;
        };
        // Rank-coupling by weight: within one cluster the pair cost is
        // ω ⊕ ω, so sorting both lists and zipping is already optimal.
        list_n.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        list_m.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        for ((_, p1, o1), (_, p2, o2)) in list_n.iter().zip(list_m.iter()) {
            let d = oplus(
                oplus(xi.weight(*p1), xi.weight(*p2)),
                oplus(xi.weight(*o1), xi.weight(*o2)),
            );
            acc = oplus(acc, d / ff);
            coupled += 1;
        }
    }
    let r = (out_n.len() - coupled) + (out_m.len() - coupled);
    oplus(acc, (r as f64 / ff).min(1.0))
}

/// Run the overlap alignment (Algorithm 2) over a combined graph.
pub fn overlap_align(
    combined: &CombinedGraph,
    vocab: &Vocab,
    config: OverlapConfig,
) -> OverlapOutcome {
    overlap_align_with(combined, vocab, config, &mut RefineEngine::auto())
}

/// As [`overlap_align`], running the hybrid bootstrap and every
/// propagation round through a caller-owned refinement engine.
pub fn overlap_align_with(
    combined: &CombinedGraph,
    vocab: &Vocab,
    config: OverlapConfig,
    engine: &mut RefineEngine,
) -> OverlapOutcome {
    let g = combined.graph();
    let hybrid = hybrid_partition_with(combined, engine).partition;
    let mut xi = WeightedPartition::zero(hybrid);
    let mut rounds = Vec::new();

    // Round 0: unaligned literals, word- or q-gram-overlap + σ_Literals.
    let literal_char = |text: &str| -> Vec<u64> {
        match config.literal_char {
            LiteralChar::Words => split_words(text),
            LiteralChar::Ngrams(q) => split_ngrams(text, q.max(1) as usize),
        }
    };
    let (a0, b0) = unaligned_by_side(&xi, combined, true);
    let char_a: Vec<Vec<u64>> = a0
        .iter()
        .map(|&n| literal_char(vocab.text(g.label(n))))
        .collect();
    let char_b: Vec<Vec<u64>> = b0
        .iter()
        .map(|&n| literal_char(vocab.text(g.label(n))))
        .collect();
    let (mut h, stats) = overlap_match(
        &a0,
        &char_a,
        &b0,
        &char_b,
        config.theta,
        |n, m| {
            normalized_levenshtein(
                vocab.text(g.label(n)),
                vocab.text(g.label(m)),
            )
        },
        config.prefix,
    );
    rounds.push(OverlapRound {
        literal_round: true,
        a_size: a0.len(),
        b_size: b0.len(),
        stats,
    });

    // Non-literal rounds: enrich + propagate, then match non-literals.
    // One grouped-CSR view serves every propagation round.
    let cols = g.out_columns();
    for _ in 0..config.max_rounds {
        xi = propagate_cols(
            combined,
            &cols,
            &enrich(&xi, &h),
            config.propagate,
            engine,
        );
        let (a, b) = unaligned_by_side(&xi, combined, false);
        let char_a: Vec<Vec<u64>> =
            a.iter().map(|&n| out_colors(g, &xi, n)).collect();
        let char_b: Vec<Vec<u64>> =
            b.iter().map(|&n| out_colors(g, &xi, n)).collect();
        let (h_next, stats) = {
            let xi_ref = &xi;
            overlap_match(
                &a,
                &char_a,
                &b,
                &char_b,
                config.theta,
                |n, m| sigma_nl(g, xi_ref, n, m),
                config.prefix,
            )
        };
        rounds.push(OverlapRound {
            literal_round: false,
            a_size: a.len(),
            b_size: b.len(),
            stats,
        });
        if h_next.is_empty() {
            h = h_next;
            break;
        }
        h = h_next;
    }
    let _ = h;

    OverlapOutcome {
        weighted: xi,
        rounds,
    }
}

/// Unaligned nodes of each side, restricted to literals or non-literals.
fn unaligned_by_side(
    xi: &WeightedPartition,
    combined: &CombinedGraph,
    literals: bool,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let g = combined.graph();
    let counts = SideCounts::new(&xi.partition, combined);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for n in g.nodes() {
        if g.is_literal(n) != literals {
            continue;
        }
        let side = combined.side(n);
        if counts.is_aligned(xi.color(n), side) {
            continue;
        }
        match side {
            Side::Source => a.push(n),
            Side::Target => b.push(n),
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::hybrid_partition;
    use rdf_model::{RdfGraphBuilder, Vocab};

    #[test]
    fn ngrams_catch_single_token_edits() {
        // "Sławek" vs "Sławomir": zero shared words, but plenty of
        // shared padded trigrams.
        let w1 = split_words("Sławek");
        let w2 = split_words("Sławomir");
        assert_eq!(w1.iter().filter(|g| w2.contains(g)).count(), 0);
        let g1 = split_ngrams("Sławek", 3);
        let g2 = split_ngrams("Sławomir", 3);
        let shared = g1.iter().filter(|g| g2.contains(g)).count();
        assert!(shared >= 3, "shared trigrams: {shared}");
        assert!(split_ngrams("", 3).is_empty());
        // q=1 degenerates to the character set.
        assert_eq!(split_ngrams("aab", 1).len(), 2);
    }

    /// Single-token typo'd literals: word-split misses them entirely;
    /// trigram characterisation recovers them. (True renames like
    /// "Sławek"→"Sławomir" stay σ_Edit-only: their trigram overlap 0.33
    /// is below their edit distance 0.5, so no θ window exists — the
    /// approximation gap of §4.3.)
    #[test]
    fn ngram_literal_round_recovers_typos() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("l685", "name", "calcitonin");
            b.uul("l685", "kind", "peptide");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("l685", "name", "calcitonim"); // one-char typo
            b.uul("l685", "kind", "peptide");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let old_name = c
            .source_nodes()
            .find(|&n| v.text(c.graph().label(n)) == "calcitonin")
            .unwrap();
        let new_name = c
            .target_nodes()
            .find(|&n| v.text(c.graph().label(n)) == "calcitonim")
            .unwrap();
        // Word characterisation: single tokens share no word — missed.
        let words = overlap_align(&c, &v, OverlapConfig::default());
        assert!(!words.weighted.partition.same_class(old_name, new_name));
        // Trigram characterisation: 9 of 15 padded trigrams shared →
        // overlap 0.6 ≥ θ = 0.55, and σ_Literals = 0.1 < θ.
        let trigrams = overlap_align(
            &c,
            &v,
            OverlapConfig {
                theta: 0.55,
                literal_char: LiteralChar::Ngrams(3),
                ..OverlapConfig::default()
            },
        );
        assert!(
            trigrams.weighted.partition.same_class(old_name, new_name),
            "trigram characterisation must surface the typo'd literal"
        );
        // And the weighted distance reflects the tiny edit.
        let d = trigrams.weighted.distance(old_name, new_name);
        assert!(d <= 0.2, "distance {d}");
    }

    #[test]
    fn split_words_basic() {
        let w1 = split_words("University of Edinburgh");
        assert_eq!(w1.len(), 3);
        let w2 = split_words("University  of  Edinburgh!");
        assert_eq!(w1, w2);
        assert!(split_words("").is_empty());
        assert_eq!(split_words("dup dup dup").len(), 1);
    }

    /// Literal matching: two multi-word literals with one word edited.
    #[test]
    fn literal_round_matches_edited_literal() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("e1", "label", "experimental factor ontology term one");
            b.uul("e1", "comment", "totally different text here");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("e2", "label", "experimental factor ontology term two");
            b.uul("e2", "comment", "nothing shared with before at all");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let out = overlap_align(&c, &v, OverlapConfig::default());
        // The edited labels share 5 of 6 words: overlap 5/7? words:
        // {experimental,factor,ontology,term,one} vs {...,two}:
        // |∩|=4, |∪|=6 → 2/3 ≥ 0.65 → candidate; σ_Literals small.
        let lbl1 = c
            .source_nodes()
            .find(|&n| {
                c.graph().is_literal(n)
                    && v.text(c.graph().label(n)).starts_with("experimental")
            })
            .unwrap();
        let lbl2 = c
            .target_nodes()
            .find(|&n| {
                c.graph().is_literal(n)
                    && v.text(c.graph().label(n)).starts_with("experimental")
            })
            .unwrap();
        assert!(
            out.weighted.partition.same_class(lbl1, lbl2),
            "edited labels should be overlap-aligned"
        );
        // And the distance is consistent with the literal edit distance.
        let d = out.weighted.distance(lbl1, lbl2);
        assert!(d < 0.65, "weighted distance {d}");
    }

    /// Non-literal matching: renamed URIs with mostly-shared content,
    /// shaped like a GtoPdb tuple (many value attributes, one changed).
    #[test]
    fn nl_round_matches_renamed_uri() {
        let mut v = Vocab::new();
        let attrs = [
            ("name", "calcitonin"),
            ("type", "peptide"),
            ("species", "human"),
            ("family", "calcitonin receptor ligands"),
            ("units", "nM"),
            ("year", "1984"),
        ];
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            for (p, o) in attrs {
                b.uul("old:ligand685", p, o);
            }
            b.uul("old:ligand685", "status", "approved"); // will change
            b.uul("old:ligand9", "name", "aspirin");
            b.uul("old:ligand9", "type", "small molecule");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            for (p, o) in attrs {
                b.uul("new:ligand685", p, o);
            }
            b.uul("new:ligand685", "status", "withdrawn"); // one change
            b.uul("new:ligand9", "name", "aspirin");
            b.uul("new:ligand9", "type", "small molecule");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let l685_s = c
            .source_nodes()
            .find(|&n| v.text(c.graph().label(n)) == "old:ligand685")
            .unwrap();
        let l685_t = c
            .target_nodes()
            .find(|&n| v.text(c.graph().label(n)) == "new:ligand685")
            .unwrap();
        // Unchanged ligand9 is already aligned by Hybrid (its recolored
        // content is identical); changed ligand685 is not.
        let hybrid = hybrid_partition(&c).partition;
        assert!(!hybrid.same_class(l685_s, l685_t));
        // Overlap at the default θ=0.65: out-color overlap is 6/8 = 0.75
        // ≥ θ and σ_NL = 2/7 < θ → aligned.
        let out = overlap_align(&c, &v, OverlapConfig::default());
        assert!(
            out.weighted.partition.same_class(l685_s, l685_t),
            "changed tuple URI aligned at θ=0.65"
        );
        // The weighted distance reflects the single changed attribute.
        let d = out.weighted.distance(l685_s, l685_t);
        assert!(d > 0.0 && d < 0.65, "distance {d}");
        // At a stricter θ=0.8 the pair is missed (overlap 0.75 < θ):
        // the Fig 15 trade-off.
        let strict = overlap_align(
            &c,
            &v,
            OverlapConfig {
                theta: 0.8,
                ..OverlapConfig::default()
            },
        );
        assert!(!strict.weighted.partition.same_class(l685_s, l685_t));
    }

    #[test]
    fn sigma_nl_identical_content_is_zero() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("a", "p", "x");
            b.uul("a", "q", "y");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("b", "p", "x");
            b.uul("b", "q", "y");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let xi = WeightedPartition::zero(crate::methods::trivial_partition(&c));
        let a = c.source_nodes().next().unwrap();
        let b = c.target_nodes().next().unwrap();
        assert_eq!(sigma_nl(c.graph(), &xi, a, b), 0.0);
    }

    #[test]
    fn sigma_nl_counts_unmatched_edges() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("a", "p", "x");
            b.uul("a", "q", "y");
            b.uul("a", "r", "z");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("b", "p", "x");
            b.uul("b", "q", "y");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let xi = WeightedPartition::zero(crate::methods::trivial_partition(&c));
        let a = c.source_nodes().next().unwrap();
        let b = c.target_nodes().next().unwrap();
        // f = 3, two coupled at 0, R = 1 → 1/3.
        assert!((sigma_nl(c.graph(), &xi, a, b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_nl_no_content() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("x", "p", "sink1");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("y", "p", "sink2");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let xi = WeightedPartition::zero(crate::methods::trivial_partition(&c));
        let s1 = c
            .source_nodes()
            .find(|&n| v.text(c.graph().label(n)) == "sink1")
            .unwrap();
        let s2 = c
            .target_nodes()
            .find(|&n| v.text(c.graph().label(n)) == "sink2")
            .unwrap();
        assert_eq!(sigma_nl(c.graph(), &xi, s1, s2), 0.0);
        let x = c.source_nodes().next().unwrap();
        assert_eq!(sigma_nl(c.graph(), &xi, x, s2), 1.0);
    }

    #[test]
    fn terminates_when_nothing_to_match() {
        let mut v = Vocab::new();
        let g = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g.clone(), &g);
        let out = overlap_align(&c, &v, OverlapConfig::default());
        // Self-alignment: everything aligned by hybrid; one literal round
        // plus one empty NL round.
        assert!(out.rounds.len() <= 2);
        assert!(out
            .weighted
            .weights
            .iter()
            .all(|&w| w == 0.0));
    }
}
