//! Alignments induced by partitions (§3.1).
//!
//! `Align(λ) = {(n, m) ∈ N1 × N2 | λ(n) = λ(m)}` — pairs of source and
//! target nodes sharing a color. Alignments defined by partitions are
//! exactly the binary relations with the *crossover property*:
//! `(n,m), (n,m'), (n',m) ∈ A ⟹ (n',m') ∈ A`.

use crate::partition::Partition;
use rdf_model::{CombinedGraph, FxHashSet, NodeId, Side};

/// A read-only view of the alignment induced by a partition over a
/// combined graph. Pairs are reported in *graph-local* node ids
/// (source-local, target-local).
pub struct AlignmentView<'a> {
    partition: &'a Partition,
    combined: &'a CombinedGraph,
}

impl<'a> AlignmentView<'a> {
    /// Wrap a partition of the combined graph.
    pub fn new(partition: &'a Partition, combined: &'a CombinedGraph) -> Self {
        assert_eq!(partition.len(), combined.graph().node_count());
        AlignmentView {
            partition,
            combined,
        }
    }

    /// Whether `(source-local n, target-local m) ∈ Align(λ)`.
    pub fn contains(&self, n: NodeId, m: NodeId) -> bool {
        let s = self.combined.from_source(n);
        let t = self.combined.from_target(m);
        self.partition.same_class(s, t)
    }

    /// Number of aligned pairs `|Align(λ)|` (can be quadratic in class
    /// sizes; computed without materialising).
    pub fn pair_count(&self) -> u64 {
        let k = self.partition.num_colors() as usize;
        let mut src = vec![0u64; k];
        let mut tgt = vec![0u64; k];
        for n in self.combined.graph().nodes() {
            let c = self.partition.color(n).index();
            match self.combined.side(n) {
                Side::Source => src[c] += 1,
                Side::Target => tgt[c] += 1,
            }
        }
        src.iter().zip(&tgt).map(|(&s, &t)| s * t).sum()
    }

    /// Materialise all aligned pairs in graph-local ids. Intended for
    /// tests and small graphs; prefer [`Self::pair_count`] at scale.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let k = self.partition.num_colors() as usize;
        let mut src: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut tgt: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for n in self.combined.graph().nodes() {
            let c = self.partition.color(n).index();
            match self.combined.to_local(n) {
                (Side::Source, local) => src[c].push(local),
                (Side::Target, local) => tgt[c].push(local),
            }
        }
        let mut out = Vec::new();
        for c in 0..k {
            for &s in &src[c] {
                for &t in &tgt[c] {
                    out.push((s, t));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The set of target-local nodes aligned with a source-local node.
    pub fn targets_of(&self, n: NodeId) -> Vec<NodeId> {
        let c = self.partition.color(self.combined.from_source(n));
        self.combined
            .target_nodes()
            .filter(|&t| self.partition.color(t) == c)
            .map(|t| self.combined.to_local(t).1)
            .collect()
    }

    /// The set of source-local nodes aligned with a target-local node.
    pub fn sources_of(&self, m: NodeId) -> Vec<NodeId> {
        let c = self.partition.color(self.combined.from_target(m));
        self.combined
            .source_nodes()
            .filter(|&s| self.partition.color(s) == c)
            .collect()
    }
}

/// Check the crossover property on an explicit pair set: whenever
/// `(n,m)`, `(n,m')`, `(n',m)` are present, so is `(n',m')`. Every
/// alignment induced by a partition satisfies this (§3.1); distance-based
/// alignments need not.
pub fn has_crossover_property(pairs: &[(NodeId, NodeId)]) -> bool {
    let set: FxHashSet<(NodeId, NodeId)> = pairs.iter().copied().collect();
    for &(n, m) in pairs {
        for &(n2, m2) in pairs {
            if m2 == m && n2 != n {
                // (n,m) and (n',m): for every (n,m') require (n',m').
                for &(n3, m3) in pairs {
                    if n3 == n && !set.contains(&(n2, m3)) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::trivial_partition;
    use rdf_model::{RdfGraphBuilder, Vocab};

    fn setup() -> (Vocab, CombinedGraph) {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.uul("y", "p", "b");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.uul("z", "p", "b");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        (v, c)
    }

    #[test]
    fn pairs_and_count_agree() {
        let (_, c) = setup();
        let p = trivial_partition(&c);
        let view = AlignmentView::new(&p, &c);
        let pairs = view.pairs();
        assert_eq!(pairs.len() as u64, view.pair_count());
        // Aligned: x, p, "a", "b" — 4 label-shared nodes.
        assert_eq!(pairs.len(), 4);
        for &(s, t) in &pairs {
            assert!(view.contains(s, t));
        }
    }

    #[test]
    fn crossover_property_of_partition_alignments() {
        let (_, c) = setup();
        let p = trivial_partition(&c);
        let view = AlignmentView::new(&p, &c);
        assert!(has_crossover_property(&view.pairs()));
    }

    #[test]
    fn crossover_property_violated_by_arbitrary_relation() {
        // (0,0), (0,1), (1,0) without (1,1) violates crossover.
        let pairs = vec![
            (NodeId(0), NodeId(0)),
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(0)),
        ];
        assert!(!has_crossover_property(&pairs));
        let mut ok = pairs.clone();
        ok.push((NodeId(1), NodeId(1)));
        assert!(has_crossover_property(&ok));
    }

    #[test]
    fn targets_and_sources_of() {
        let (_, c) = setup();
        let p = trivial_partition(&c);
        let view = AlignmentView::new(&p, &c);
        // Source node 0 is "x", target node 0 is "x".
        assert_eq!(view.targets_of(NodeId(0)), vec![NodeId(0)]);
        assert_eq!(view.sources_of(NodeId(0)), vec![NodeId(0)]);
        // "y" (source node 3) has no targets.
        assert!(view.targets_of(NodeId(3)).is_empty());
    }
}
