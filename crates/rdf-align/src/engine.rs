//! The deterministic parallel partition-refinement engine.
//!
//! Every alignment method of §3 bottoms out in iterated
//! `BisimRefine*_X(λ)` rounds, and within one round the recoloring
//! `recolor_λ(n)` of equation 1 depends only on the *previous*
//! partition — rounds are embarrassingly parallel over nodes. The
//! engine runs a whole fixpoint as one SPMD gang: worker threads are
//! spawned **once per run** (not per round) on [`std::thread::scope`]
//! and advance through the rounds together, separated by
//! [`std::sync::Barrier`]s, so per-round overhead is three barrier
//! waits instead of repeated thread spawns. Each round has two phases:
//!
//! 1. **Signature phase** — every worker computes the 128-bit
//!    signatures for its chunk of the node range, reusing a per-worker
//!    pair buffer, and bins `(node, signature)` by shard (the
//!    signature's high bits);
//! 2. **Canonicalisation phase** — worker `s` interns exactly shard
//!    `s`'s keys into its private hash map (shards partition the key
//!    space, so no synchronisation is needed), recording the first
//!    node index at which each distinct key occurs; the round leader
//!    then merges the shards' first-occurrence lists into a
//!    deterministic dense renumbering ordered by first occurrence and
//!    scatters the final colors.
//!
//! Because first-occurrence numbering is exactly what the sequential
//! single-map loop produces, the output partition is **bit-identical**
//! for every thread count — `--threads 1` and `--threads 8` give the
//! same dense color vector, and all results are reproducible. Workers
//! exchange data only at barriers, through per-worker `RwLock` slots
//! that are write-locked by their owner in one phase and read by the
//! others in the next; no atomicity on shared arrays, no `unsafe`.
//!
//! On one thread the engine takes a plain sequential path whose
//! interning map and pair buffer live in the engine and are reused
//! round to round *and* run to run — the allocation-churn fix for the
//! old free-standing `bisim_refine_step` loop, which rebuilt both every
//! round. The thin [`crate::refine::bisim_refine_step`] wrapper remains
//! for API compatibility.

use crate::partition::{ColorId, Partition};
use crate::refine::RefineOutcome;
use rdf_model::hash::mix64;
use rdf_model::{FxHashMap, NodeId, OutColumns, TripleGraph};
use rdf_obs::{Recorder, SpanGuard};
use rdf_par::{chunk_ranges, Threads, TimedBarrier};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Multiplier for the primary signature stream.
pub(crate) const K1: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Multiplier for the secondary (independent) signature stream.
pub(crate) const K2: u64 = 0x9e37_79b9_7f4a_7c15;

/// Interning key for one refinement round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum RoundKey {
    /// Node kept its previous color (n ∉ X).
    Kept(u32),
    /// Node was recolored; identified by the 128-bit signature of
    /// `(previous color, sorted outbound color pairs)`.
    Recolored(u64, u64),
}

/// The 128-bit signature of `recolor_λ(n)` (equation 1): the previous
/// color mixed with the sorted, distinct outbound color pairs. Shared
/// by the engine and the sequential reference in [`crate::refine`] so
/// the two cannot drift.
#[inline]
pub(crate) fn recolor_signature(prev: u32, pairs: &[(u32, u32)]) -> (u64, u64) {
    let c = prev as u64;
    let mut h1 = mix64(c ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut h2 = mix64(c ^ 0x0123_4567_89AB_CDEF);
    for &(cp, co) in pairs {
        let x = ((cp as u64) << 32) | co as u64;
        h1 = (h1.rotate_left(5) ^ x).wrapping_mul(K1);
        h2 = (h2.rotate_left(9) ^ x).wrapping_mul(K2);
    }
    (h1, h2)
}

/// Shard owning a key: the signature's high bits reduced to the shard
/// count. A deterministic function of the key alone, so every worker
/// agrees on ownership without communication.
#[inline]
fn shard_of(key: &RoundKey, shards: usize) -> usize {
    let h = match *key {
        // Kept colors are small dense integers; mix them so the high
        // bits spread. (Kept and Recolored keys can never collide: the
        // enum discriminant is part of the key.)
        RoundKey::Kept(c) => mix64(0x4B45_5054 ^ ((c as u64) << 17)),
        RoundKey::Recolored(h1, _) => h1,
    };
    ((h >> 32) as usize) % shards
}

/// One worker's signature-phase output: for each shard, the
/// `(node, key)` pairs that shard owns, in ascending node order.
type ShardBins = Vec<Vec<(u32, RoundKey)>>;

/// Per-shard interning output, handed from the canonicalisation
/// workers to the round leader through an `RwLock` slot.
#[derive(Debug, Default)]
struct InternOut {
    /// First-occurrence node index of each distinct key, ascending.
    firsts: Vec<u32>,
    /// Local id of every binned node, in shard scan order.
    locals: Vec<u32>,
}

/// Round-to-round state shared by the worker gang.
#[derive(Debug)]
struct GangState {
    partition: Partition,
    rounds: usize,
    last_changed: bool,
    done: bool,
}

/// Reusable, deterministic, multi-threaded refinement engine.
///
/// Construct once (per pipeline, CLI invocation, or benchmark) and feed
/// it every fixpoint run. Output partitions are bit-identical for every
/// thread count (see the module docs for why).
///
/// ```
/// use rdf_align::{RefineEngine, Threads};
/// use rdf_model::{RdfGraphBuilder, Vocab};
///
/// let mut vocab = Vocab::new();
/// let g = {
///     let mut b = RdfGraphBuilder::new(&mut vocab);
///     b.uub("w", "p", "b1");   // w  -p-> _:b1
///     b.bul("b1", "q", "a");   // b1 -q-> "a"
///     b.bul("b2", "q", "a");   // b2 -q-> "a"   (bisimilar to b1)
///     b.finish()
/// };
/// let mut engine = RefineEngine::new(Threads::Fixed(2));
/// let out = engine.bisimulation(g.graph());
/// let blanks = g.graph().blanks();
/// assert!(out.partition.same_class(blanks[0], blanks[1]));
/// // Determinism: any thread count produces the identical coloring.
/// let again = RefineEngine::new(Threads::Fixed(1)).bisimulation(g.graph());
/// assert_eq!(out.partition.colors(), again.partition.colors());
/// ```
#[derive(Debug)]
pub struct RefineEngine {
    threads: usize,
    /// Instrumentation sink; [`Recorder::disabled`] by default, in
    /// which case every emission site reduces to one branch.
    recorder: Arc<Recorder>,
    /// Sequential-path interning map, reused round to round and run to
    /// run.
    seq_map: FxHashMap<RoundKey, u32>,
    /// Sequential-path pair buffer for equation 1's sorted pair set.
    seq_buf: Vec<(u32, u32)>,
}

impl RefineEngine {
    /// An engine running on the given thread configuration.
    pub fn new(threads: Threads) -> Self {
        RefineEngine {
            threads: threads.resolve(),
            recorder: Arc::new(Recorder::disabled()),
            seq_map: FxHashMap::default(),
            seq_buf: Vec::new(),
        }
    }

    /// An engine on the default (auto) thread configuration.
    pub fn auto() -> Self {
        RefineEngine::new(Threads::Auto)
    }

    /// An engine with an instrumentation recorder attached. Tracing
    /// never changes results: the emitted partition is bit-identical
    /// with any recorder (the inertness suite proves it).
    pub fn with_recorder(threads: Threads, recorder: Arc<Recorder>) -> Self {
        let mut engine = RefineEngine::new(threads);
        engine.recorder = recorder;
        engine
    }

    /// Attach (or replace) the instrumentation recorder.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run canonicalised rounds from `initial` until the class count
    /// stops changing (or `max_rounds` is hit). `sig` maps
    /// `(node, previous partition, scratch pair buffer)` to the node's
    /// [`RoundKey`] for the round; it must be a pure function of the
    /// node and partition so rounds parallelise.
    ///
    /// This is the engine's generic core; the bisimulation step and the
    /// §6 refinement variants all plug their signature function in
    /// here. Returns the final partition, the number of rounds
    /// executed, and whether the *last* round still changed the class
    /// count (false at a certified fixpoint).
    pub(crate) fn run<S>(
        &mut self,
        n: usize,
        initial: Partition,
        sig: S,
        max_rounds: Option<usize>,
    ) -> (Partition, usize, bool)
    where
        S: Fn(usize, &Partition, &mut Vec<(u32, u32)>) -> RoundKey + Sync,
    {
        debug_assert_eq!(initial.len(), n);
        if n == 0 || max_rounds == Some(0) {
            return (initial, 0, false);
        }
        let rec = Arc::clone(&self.recorder);
        let mut fix = rec.span("refine.fixpoint");
        let ranges = chunk_ranges(n, self.threads);
        let workers = ranges.len();
        let (partition, rounds, changed) = if workers == 1 {
            self.run_sequential(n, initial, sig, max_rounds, &rec)
        } else {
            run_gang(n, initial, &sig, max_rounds, &ranges, &rec)
        };
        if fix.enabled() {
            fix.field("rounds", rounds);
            fix.field("classes", partition.num_colors());
            fix.field("nodes", n);
            fix.field("threads", workers);
        }
        (partition, rounds, changed)
    }

    /// The single-worker path: one interning map, dense ids straight
    /// from insertion order (identical numbering to the parallel path
    /// by construction), scratch reused across rounds and runs.
    fn run_sequential<S>(
        &mut self,
        n: usize,
        initial: Partition,
        sig: S,
        max_rounds: Option<usize>,
        rec: &Recorder,
    ) -> (Partition, usize, bool)
    where
        S: Fn(usize, &Partition, &mut Vec<(u32, u32)>) -> RoundKey,
    {
        if rec.enabled() {
            return self.run_sequential_traced(n, initial, sig, max_rounds, rec);
        }
        let mut partition = initial;
        let mut rounds = 0;
        loop {
            let map = &mut self.seq_map;
            map.clear();
            map.reserve(partition.num_colors() as usize + 16);
            let mut colors = Vec::with_capacity(n);
            for i in 0..n {
                let key = sig(i, &partition, &mut self.seq_buf);
                let next = map.len() as u32;
                colors.push(ColorId(*map.entry(key).or_insert(next)));
            }
            let new_num = map.len() as u32;
            let changed = new_num != partition.num_colors();
            partition = Partition::from_dense(colors, new_num);
            rounds += 1;
            if !changed || Some(rounds) == max_rounds {
                return (partition, rounds, changed);
            }
        }
    }

    /// The traced twin of the sequential loop. The fused
    /// signature+intern loop above cannot time its two halves, so this
    /// path materialises the round's key sequence first and interns it
    /// second. Interning consumes the identical key sequence in the
    /// identical order, so the dense numbering — and therefore the
    /// output partition — is bit-identical to the fused loop; only the
    /// phase boundary becomes observable.
    fn run_sequential_traced<S>(
        &mut self,
        n: usize,
        initial: Partition,
        sig: S,
        max_rounds: Option<usize>,
        rec: &Recorder,
    ) -> (Partition, usize, bool)
    where
        S: Fn(usize, &Partition, &mut Vec<(u32, u32)>) -> RoundKey,
    {
        let mut partition = initial;
        let mut rounds = 0;
        let mut keys: Vec<RoundKey> = Vec::with_capacity(n);
        loop {
            let mut sp = rec.span("refine.round");
            let prev_num = partition.num_colors();
            let sig_start = Instant::now();
            keys.clear();
            for i in 0..n {
                keys.push(sig(i, &partition, &mut self.seq_buf));
            }
            let sig_us = sig_start.elapsed().as_micros() as u64;
            let canon_start = Instant::now();
            let map = &mut self.seq_map;
            map.clear();
            map.reserve(prev_num as usize + 16);
            let mut colors = Vec::with_capacity(n);
            for &key in &keys {
                let next = map.len() as u32;
                colors.push(ColorId(*map.entry(key).or_insert(next)));
            }
            let new_num = map.len() as u32;
            let canon_us = canon_start.elapsed().as_micros() as u64;
            let changed = new_num != partition.num_colors();
            partition = Partition::from_dense(colors, new_num);
            rounds += 1;
            sp.field("round", rounds);
            sp.field("classes", new_num);
            sp.field("splits", new_num.saturating_sub(prev_num));
            sp.field("sig_us", sig_us);
            sp.field("canon_us", canon_us);
            drop(sp);
            if !changed || Some(rounds) == max_rounds {
                return (partition, rounds, changed);
            }
        }
    }

    /// Apply one refinement step `BisimRefine_X(λ)` (equation 2) over a
    /// prebuilt grouped-CSR column view (the fixpoint driver builds the
    /// view once per run).
    pub fn refine_step_columns(
        &mut self,
        cols: &OutColumns<'_>,
        partition: &Partition,
        in_x: &[bool],
    ) -> (Partition, bool) {
        let n = partition.len();
        // Real asserts, not debug: a length mismatch detected inside a
        // gang worker would panic past a `Barrier` and deadlock the
        // remaining workers, so reject bad input on the calling thread
        // before any thread spawns.
        assert_eq!(in_x.len(), n, "in_x length != partition length");
        assert_eq!(cols.offsets().len(), n + 1, "column view/partition mismatch");
        let (next, _, changed) =
            self.run(n, partition.clone(), bisim_sig(cols, in_x), Some(1));
        (next, changed)
    }

    /// Apply one refinement step `BisimRefine_X(λ)` (equation 2).
    pub fn refine_step(
        &mut self,
        g: &TripleGraph,
        partition: &Partition,
        in_x: &[bool],
    ) -> (Partition, bool) {
        debug_assert_eq!(partition.len(), g.node_count());
        let cols = g.out_columns();
        self.refine_step_columns(&cols, partition, in_x)
    }

    /// Run `BisimRefine*_X(λ)` to fixpoint (Definition 4) over a
    /// prebuilt grouped-CSR column view, returning the final partition
    /// and the number of rounds executed (≥ 1; an empty graph still
    /// "certifies" its fixpoint instantly).
    pub fn refine_fixpoint_columns(
        &mut self,
        cols: &OutColumns<'_>,
        initial: Partition,
        in_x: &[bool],
    ) -> (Partition, usize) {
        let n = initial.len();
        // See refine_step_columns: validate on the calling thread so no
        // gang worker can panic mid-round and strand the barrier.
        assert_eq!(in_x.len(), n, "in_x length != partition length");
        assert_eq!(cols.offsets().len(), n + 1, "column view/partition mismatch");
        let (partition, rounds, _) =
            self.run(n, initial, bisim_sig(cols, in_x), None);
        (partition, rounds.max(1))
    }

    /// Run `BisimRefine*_X(λ)` to fixpoint (Definition 4) with a
    /// membership mask for `X`.
    pub fn refine_fixpoint_mask(
        &mut self,
        g: &TripleGraph,
        initial: Partition,
        in_x: &[bool],
    ) -> RefineOutcome {
        debug_assert_eq!(in_x.len(), g.node_count());
        let cols = g.out_columns();
        let (partition, rounds) =
            self.refine_fixpoint_columns(&cols, initial, in_x);
        RefineOutcome { partition, rounds }
    }

    /// Run `BisimRefine*_X(λ)` to fixpoint for an explicit node set.
    pub fn refine_fixpoint(
        &mut self,
        g: &TripleGraph,
        initial: Partition,
        x: &[NodeId],
    ) -> RefineOutcome {
        let mut in_x = vec![false; g.node_count()];
        for &n in x {
            in_x[n.index()] = true;
        }
        self.refine_fixpoint_mask(g, initial, &in_x)
    }

    /// Run a custom signature function to fixpoint through the engine —
    /// the entry point for the §6 refinement variants (context- and
    /// key-restricted recoloring), which share the canonicalisation
    /// machinery but hash different neighbourhoods.
    pub(crate) fn refine_fixpoint_custom<S>(
        &mut self,
        n: usize,
        initial: Partition,
        sig: S,
    ) -> RefineOutcome
    where
        S: Fn(usize, &Partition, &mut Vec<(u32, u32)>) -> RoundKey + Sync,
    {
        let (partition, rounds, _) = self.run(n, initial, sig, None);
        RefineOutcome {
            partition,
            rounds: rounds.max(1),
        }
    }

    /// `λ_Bisim = BisimRefine*_{N_G}(ℓ_G)` — the maximal bisimulation
    /// partition (Proposition 1), through this engine.
    pub fn bisimulation(&mut self, g: &TripleGraph) -> RefineOutcome {
        let all = vec![true; g.node_count()];
        self.refine_fixpoint_mask(g, crate::refine::label_partition(g), &all)
    }

    /// [`RefineEngine::bisimulation`] from bare columns: a per-node
    /// label array plus a grouped-CSR view. The entry point for sources
    /// that never materialise a [`TripleGraph`] — zero-copy store views
    /// feed their borrowed columns here. Produces the same partition,
    /// class count and round count as [`RefineEngine::bisimulation`] on
    /// the equivalent graph.
    pub fn bisimulation_columns(
        &mut self,
        labels: &[rdf_model::LabelId],
        cols: &OutColumns<'_>,
    ) -> RefineOutcome {
        let all = vec![true; labels.len()];
        let initial = crate::refine::label_partition_from(labels);
        let (partition, rounds) =
            self.refine_fixpoint_columns(cols, initial, &all);
        RefineOutcome { partition, rounds }
    }
}

impl Default for RefineEngine {
    fn default() -> Self {
        RefineEngine::auto()
    }
}

/// The equation-1 signature function over a grouped-CSR view: colors of
/// the `(pred, obj)` columns, sorted and deduplicated, hashed with the
/// previous color.
fn bisim_sig<'a>(
    cols: &'a OutColumns<'a>,
    in_x: &'a [bool],
) -> impl Fn(usize, &Partition, &mut Vec<(u32, u32)>) -> RoundKey + Sync + 'a {
    let preds = cols.preds();
    let objs = cols.objs();
    move |i, partition, buf| {
        let colors = partition.colors();
        if in_x[i] {
            buf.clear();
            for j in cols.range(NodeId(i as u32)) {
                buf.push((
                    colors[preds[j].index()].0,
                    colors[objs[j].index()].0,
                ));
            }
            // Equation (1) uses a *set* of color pairs: sort + dedup
            // gives the canonical sequence to hash.
            buf.sort_unstable();
            buf.dedup();
            let (h1, h2) = recolor_signature(colors[i].0, buf);
            RoundKey::Recolored(h1, h2)
        } else {
            RoundKey::Kept(colors[i].0)
        }
    }
}

/// The parallel fixpoint: one scoped worker gang for the whole run.
///
/// Workers proceed in lockstep through three barriers per round:
/// signatures + shard binning → shard interning → leader merge/scatter.
/// Data crosses thread boundaries only through the `RwLock` slots, each
/// write-locked by its owning worker in one phase and read-locked by
/// consumers in the next (the barriers guarantee the locks are never
/// contended).
fn run_gang<S>(
    n: usize,
    initial: Partition,
    sig: &S,
    max_rounds: Option<usize>,
    ranges: &[std::ops::Range<usize>],
    rec: &Recorder,
) -> (Partition, usize, bool)
where
    S: Fn(usize, &Partition, &mut Vec<(u32, u32)>) -> RoundKey + Sync,
{
    let workers = ranges.len();
    let shards = workers;
    let barrier = TimedBarrier::new(workers);
    // bins[w][s]: worker w's (node, key) pairs owned by shard s.
    let bins: Vec<RwLock<ShardBins>> = (0..workers)
        .map(|_| RwLock::new(vec![Vec::new(); shards]))
        .collect();
    let interns: Vec<RwLock<InternOut>> =
        (0..shards).map(|_| RwLock::new(InternOut::default())).collect();
    let state = RwLock::new(GangState {
        partition: initial,
        rounds: 0,
        last_changed: false,
        done: false,
    });

    let work = |w: usize| {
        let range = ranges[w].clone();
        let mut buf: Vec<(u32, u32)> = Vec::new();
        let mut map: FxHashMap<RoundKey, u32> = FxHashMap::default();
        // Leader-only merge scratch, reused across rounds.
        let mut merge: Vec<(u32, u32)> = Vec::new();
        let mut ranks: Vec<Vec<u32>> = vec![Vec::new(); shards];
        loop {
            // Leader-only per-round span; it must not be created when
            // the done flag is already set (no round happens then), so
            // it is hoisted out of the phase-A block and filled in
            // during phase C.
            let mut sp: Option<SpanGuard<'_>> = None;
            let mut round_start: Option<Instant> = None;
            // Phase A: signatures for this worker's node chunk, binned
            // by owning shard.
            {
                let st = state.read().expect("gang state readable");
                if st.done {
                    return;
                }
                if w == 0 {
                    let guard = rec.span("refine.round");
                    if guard.enabled() {
                        round_start = Some(Instant::now());
                    }
                    sp = Some(guard);
                }
                let mut my_bins =
                    bins[w].write().expect("own bins writable");
                for b in my_bins.iter_mut() {
                    b.clear();
                }
                for i in range.clone() {
                    let key = sig(i, &st.partition, &mut buf);
                    my_bins[shard_of(&key, shards)].push((i as u32, key));
                }
            }
            barrier.wait_timed(rec, w);
            // On the leader, wall-clock time from round start to here
            // is the gang-wide signature phase (the barrier aligns all
            // workers); the remainder of the round is canonicalisation.
            let sig_done = round_start.map(|start| {
                (start.elapsed().as_micros() as u64, Instant::now())
            });

            // Phase B: intern shard `w`. Walking the workers' bins in
            // worker order visits nodes in ascending order (chunks are
            // ascending ranges), so each key's recorded first
            // occurrence is its global first occurrence.
            {
                map.clear();
                let mut out =
                    interns[w].write().expect("own intern slot writable");
                out.firsts.clear();
                out.locals.clear();
                for slot in &bins {
                    let worker_bins = slot.read().expect("bins readable");
                    for &(i, key) in &worker_bins[w] {
                        let next = map.len() as u32;
                        let local = *map.entry(key).or_insert_with(|| {
                            out.firsts.push(i);
                            next
                        });
                        out.locals.push(local);
                    }
                }
            }
            barrier.wait_timed(rec, w);

            // Phase C: the leader renumbers densely by first occurrence
            // and scatters the colors.
            if w == 0 {
                let mut st = state.write().expect("gang state writable");
                merge.clear();
                let intern_guards: Vec<_> = interns
                    .iter()
                    .map(|s| s.read().expect("intern slots readable"))
                    .collect();
                for (s, out) in intern_guards.iter().enumerate() {
                    for &i in &out.firsts {
                        merge.push((i, s as u32));
                    }
                }
                merge.sort_unstable();
                for r in ranks.iter_mut() {
                    r.clear();
                }
                for (rank, &(_, s)) in merge.iter().enumerate() {
                    // Within one shard, first-occurrence indices ascend
                    // in insertion (local-id) order, so pushing in
                    // global sorted order fills `ranks[s]` positionally.
                    ranks[s as usize].push(rank as u32);
                }
                let new_num = merge.len() as u32;

                let mut colors = vec![ColorId(0); n];
                let bin_guards: Vec<_> = bins
                    .iter()
                    .map(|s| s.read().expect("bins readable"))
                    .collect();
                for (s, out) in intern_guards.iter().enumerate() {
                    let shard_ranks = &ranks[s];
                    let mut locals = out.locals.iter();
                    for worker_bins in &bin_guards {
                        for &(i, _) in &worker_bins[s] {
                            let local =
                                *locals.next().expect("local per node");
                            colors[i as usize] =
                                ColorId(shard_ranks[local as usize]);
                        }
                    }
                }

                let prev_num = st.partition.num_colors();
                let changed = new_num != prev_num;
                st.partition = Partition::from_dense(colors, new_num);
                st.rounds += 1;
                st.last_changed = changed;
                if !changed || Some(st.rounds) == max_rounds {
                    st.done = true;
                }
                if let Some(sp) = sp.as_mut() {
                    sp.field("round", st.rounds);
                    sp.field("classes", new_num);
                    sp.field("splits", new_num.saturating_sub(prev_num));
                    if let Some((sig_us, canon_start)) = sig_done {
                        sp.field("sig_us", sig_us);
                        sp.field(
                            "canon_us",
                            canon_start.elapsed().as_micros() as u64,
                        );
                    }
                }
            }
            // The leader's span drops (and emits) here, covering the
            // full round; it deliberately excludes the final barrier.
            drop(sp);
            barrier.wait_timed(rec, w);
        }
    };

    std::thread::scope(|scope| {
        let work = &work;
        for w in 1..workers {
            scope.spawn(move || work(w));
        }
        work(0);
    });

    let st = state.into_inner().expect("gang finished");
    (st.partition, st.rounds, st.last_changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{GraphBuilder, LabelId, Vocab};

    /// A small chain/diamond graph with blanks, literals and URIs.
    fn sample() -> TripleGraph {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let w = b.add_node(v.uri("w"), &v);
        let u = b.add_node(v.uri("u"), &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        let lit = b.add_node(v.literal("a"), &v);
        let b1 = b.add_node(LabelId::BLANK, &v);
        let b2 = b.add_node(LabelId::BLANK, &v);
        let b3 = b.add_node(LabelId::BLANK, &v);
        b.add_triple(w, p, b1);
        b.add_triple(u, p, b2);
        b.add_triple(b1, q, lit);
        b.add_triple(b2, q, lit);
        b.add_triple(b3, q, b1);
        b.freeze()
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let g = sample();
        let base = RefineEngine::new(Threads::Fixed(1)).bisimulation(&g);
        for t in [2usize, 3, 4, 8] {
            let out = RefineEngine::new(Threads::Fixed(t)).bisimulation(&g);
            assert_eq!(
                out.partition.colors(),
                base.partition.colors(),
                "threads={t} diverged"
            );
            assert_eq!(out.rounds, base.rounds);
        }
    }

    #[test]
    fn engine_reuse_is_deterministic() {
        let g = sample();
        let mut engine = RefineEngine::new(Threads::Fixed(4));
        let a = engine.bisimulation(&g);
        let b = engine.bisimulation(&g);
        assert_eq!(a.partition.colors(), b.partition.colors());
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().freeze();
        for t in [1usize, 4] {
            let out = RefineEngine::new(Threads::Fixed(t)).bisimulation(&g);
            assert_eq!(out.partition.len(), 0);
            assert_eq!(out.partition.num_colors(), 0);
        }
    }

    #[test]
    fn single_step_matches_across_threads() {
        let g = sample();
        let initial = crate::refine::label_partition(&g);
        let all = vec![true; g.node_count()];
        let (seq, seq_changed) = RefineEngine::new(Threads::Fixed(1))
            .refine_step(&g, &initial, &all);
        for t in [2usize, 4] {
            let (par, par_changed) = RefineEngine::new(Threads::Fixed(t))
                .refine_step(&g, &initial, &all);
            assert_eq!(seq.colors(), par.colors());
            assert_eq!(seq_changed, par_changed);
        }
    }

    #[test]
    fn partial_mask_matches_across_threads() {
        let g = sample();
        let in_x: Vec<bool> = g.nodes().map(|n| g.is_blank(n)).collect();
        let seq = RefineEngine::new(Threads::Fixed(1)).refine_fixpoint_mask(
            &g,
            crate::refine::label_partition(&g),
            &in_x,
        );
        let par = RefineEngine::new(Threads::Fixed(4)).refine_fixpoint_mask(
            &g,
            crate::refine::label_partition(&g),
            &in_x,
        );
        assert_eq!(seq.partition.colors(), par.partition.colors());
        assert_eq!(seq.rounds, par.rounds);
    }
}
