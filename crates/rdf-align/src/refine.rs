//! Bisimulation partition refinement (§3.2).
//!
//! One refinement step recolors a selected subset `X ⊆ N_G` of nodes with
//! `recolor_λ(n) = (λ(n), {(λ(p), λ(o)) | (p, o) ∈ out(n)})` (equation 1)
//! and leaves the rest untouched (equation 2). The step is applied
//! iteratively until the partition stabilises (Definition 4); because
//! `recolor` embeds the previous color, classes only ever split, so the
//! fixpoint test reduces to "did the number of classes change".
//!
//! Colors are interned per round. A recolored node's color is identified
//! by a 128-bit signature of its previous color and its sorted, distinct
//! outbound color pairs — the "simple hashing technique" the paper
//! describes for representing derivation-tree colors as DAGs. Collisions
//! are possible in principle but need ~2⁶⁴ distinct classes to become
//! likely; the paper-scale inputs have < 2²³ nodes.
//!
//! The heavy lifting lives in [`crate::engine::RefineEngine`], the
//! deterministic multi-threaded two-phase implementation; the functions
//! here are thin wrappers that build a throwaway engine per call, plus
//! the plainly-written sequential [`reference_refine_step`] /
//! [`reference_refine_fixpoint_mask`] that the property-test suite
//! compares the engine against, thread count by thread count.

use crate::engine::{recolor_signature, RefineEngine, RoundKey};
use crate::partition::{ColorId, Partition};
use rdf_model::{FxHashMap, NodeId, TripleGraph};
use rdf_par::Threads;

/// Result of running refinement to fixpoint.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// The stabilised partition `Λ*(λ)`.
    pub partition: Partition,
    /// Number of refinement rounds executed, including the final
    /// (non-changing) round that certified the fixpoint.
    pub rounds: usize,
}

/// Apply one refinement step `BisimRefine_X(λ)` (equation 2).
///
/// Returns the refined partition and whether it is strictly finer than
/// the input (i.e. not equivalent).
///
/// Thin compatibility wrapper: builds a throwaway single-thread
/// [`RefineEngine`] per call. Loops that refine repeatedly should hold
/// an engine (or call [`bisim_refine_fixpoint_mask`]) so the interning
/// map and pair buffers are reused round to round instead of
/// reallocated.
pub fn bisim_refine_step(
    g: &TripleGraph,
    partition: &Partition,
    in_x: &[bool],
) -> (Partition, bool) {
    RefineEngine::new(Threads::Fixed(1)).refine_step(g, partition, in_x)
}

/// Run `BisimRefine*_X(λ)`: iterate refinement steps until the
/// partition stabilises (Definition 4).
///
/// Terminates after at most `|N_G|` changing rounds because every
/// changing round strictly increases the class count.
pub fn bisim_refine_fixpoint(
    g: &TripleGraph,
    initial: Partition,
    x: &[NodeId],
) -> RefineOutcome {
    RefineEngine::auto().refine_fixpoint(g, initial, x)
}

/// As [`bisim_refine_fixpoint`] but with a precomputed membership mask.
pub fn bisim_refine_fixpoint_mask(
    g: &TripleGraph,
    initial: Partition,
    in_x: &[bool],
) -> RefineOutcome {
    RefineEngine::auto().refine_fixpoint_mask(g, initial, in_x)
}

/// The node-labelling partition `ℓ_G`: nodes grouped by label, all blank
/// nodes in a single class (the initial partition of Proposition 1).
pub fn label_partition(g: &TripleGraph) -> Partition {
    label_partition_from(g.labels_raw())
}

/// [`label_partition`] from a bare per-node label array — the entry
/// point for sources that never materialise a [`TripleGraph`] (the
/// streaming refinement path reads the label table of a sharded store
/// directly).
pub fn label_partition_from(labels: &[rdf_model::LabelId]) -> Partition {
    let raw: Vec<u32> = labels.iter().map(|l| l.0).collect();
    Partition::from_colors(&raw)
}

/// `λ_Bisim = BisimRefine*_{N_G}(ℓ_G)` — captures the maximal
/// bisimulation on `G` (Proposition 1).
pub fn bisimulation_partition(g: &TripleGraph) -> RefineOutcome {
    RefineEngine::auto().bisimulation(g)
}

/// One refinement step by the *sequential reference* algorithm: a
/// single interning map filled in node order, dense ids straight from
/// insertion order. This is the original single-threaded loop, kept —
/// deliberately separate from the engine's chunked/sharded machinery —
/// as the oracle the parallel engine must match bit-for-bit at every
/// thread count (asserted by `tests/parallel_refine_identity.rs`).
pub fn reference_refine_step(
    g: &TripleGraph,
    partition: &Partition,
    in_x: &[bool],
) -> (Partition, bool) {
    let n = g.node_count();
    debug_assert_eq!(in_x.len(), n);
    debug_assert_eq!(partition.len(), n);

    let mut map: FxHashMap<RoundKey, u32> = FxHashMap::default();
    let mut new_colors: Vec<ColorId> = Vec::with_capacity(n);
    let mut buf: Vec<(u32, u32)> = Vec::new();

    for node in g.nodes() {
        let key = if in_x[node.index()] {
            buf.clear();
            for &(p, o) in g.out(node) {
                buf.push((partition.color(p).0, partition.color(o).0));
            }
            // Equation (1) uses a *set* of color pairs: sort + dedup gives
            // the canonical sequence to hash.
            buf.sort_unstable();
            buf.dedup();
            let (h1, h2) = recolor_signature(partition.color(node).0, &buf);
            RoundKey::Recolored(h1, h2)
        } else {
            RoundKey::Kept(partition.color(node).0)
        };
        let next = map.len() as u32;
        let id = *map.entry(key).or_insert(next);
        new_colors.push(ColorId(id));
    }

    let new_num = map.len() as u32;
    // recolor embeds the previous color, so classes only split; the
    // partition changed iff the class count grew.
    let changed = new_num != partition.num_colors();
    (Partition::from_dense(new_colors, new_num), changed)
}

/// Run [`reference_refine_step`] to fixpoint: the sequential oracle for
/// [`RefineEngine::refine_fixpoint_mask`].
pub fn reference_refine_fixpoint_mask(
    g: &TripleGraph,
    initial: Partition,
    in_x: &[bool],
) -> RefineOutcome {
    let mut partition = initial;
    let mut rounds = 0;
    loop {
        let (next, changed) = reference_refine_step(g, &partition, in_x);
        rounds += 1;
        partition = next;
        if !changed {
            return RefineOutcome { partition, rounds };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{LabelId, GraphBuilder, Vocab};

    /// The graph of Figure 2: URIs `w`, `u`, literals `"a"`, `"b"`,
    /// blanks `b1 b2 b3`, predicates `p q r`.
    ///
    /// Edges encoded (one per line):
    ///   w  -p-> b1      w  -p-> u
    ///   b1 -q-> "a"     b1 -r-> b2
    ///   u  -q-> "a"     u  -r-> b3
    ///   b2 -q-> "b"     b3 -q-> "b"
    ///
    /// This exhibits the essential property stated in §2.3: b2 and b3
    /// have identical outbound structure (-q-> "b") and are bisimilar,
    /// while b1 (whose contents also reach b2) is not bisimilar to them.
    fn figure2() -> (Vocab, TripleGraph, [NodeId; 8]) {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let w = b.add_node(v.uri("w"), &v);
        let u = b.add_node(v.uri("u"), &v);
        let lit_a = b.add_node(v.literal("a"), &v);
        let lit_b = b.add_node(v.literal("b"), &v);
        let b1 = b.add_node(LabelId::BLANK, &v);
        let b2 = b.add_node(LabelId::BLANK, &v);
        let b3 = b.add_node(LabelId::BLANK, &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        let r = b.add_node(v.uri("r"), &v);
        // b2 and b3 have identical outbound structure: -q-> "b".
        b.add_triple(w, p, b1);
        b.add_triple(w, p, u);
        b.add_triple(b1, q, lit_a);
        b.add_triple(b1, r, b2);
        b.add_triple(u, r, b3);
        b.add_triple(u, q, lit_a);
        b.add_triple(b2, q, lit_b);
        b.add_triple(b3, q, lit_b);
        let g = b.freeze();
        (v, g, [w, u, lit_a, lit_b, b1, b2, b3, p])
    }

    #[test]
    fn label_partition_groups_blanks() {
        let (_, g, ids) = figure2();
        let p = label_partition(&g);
        let [_, _, _, _, b1, b2, b3, _] = ids;
        assert!(p.same_class(b1, b2));
        assert!(p.same_class(b2, b3));
        // URIs with different labels are apart.
        assert!(!p.same_class(NodeId(0), NodeId(1)));
    }

    #[test]
    fn bisimulation_splits_b1_from_b2_b3() {
        let (_, g, ids) = figure2();
        let out = bisimulation_partition(&g);
        let [_, _, _, _, b1, b2, b3, _] = ids;
        assert!(out.partition.same_class(b2, b3), "b2 ~ b3 (Fig 2)");
        assert!(!out.partition.same_class(b1, b2), "b1 !~ b2");
        assert!(!out.partition.same_class(b1, b3), "b1 !~ b3");
    }

    #[test]
    fn refinement_is_monotone() {
        let (_, g, _) = figure2();
        let initial = label_partition(&g);
        let all = vec![true; g.node_count()];
        let (step1, changed1) = bisim_refine_step(&g, &initial, &all);
        assert!(changed1);
        assert!(step1.finer_than(&initial));
        let (step2, _) = bisim_refine_step(&g, &step1, &all);
        assert!(step2.finer_than(&step1));
    }

    #[test]
    fn fixpoint_is_stable() {
        let (_, g, _) = figure2();
        let out = bisimulation_partition(&g);
        let all = vec![true; g.node_count()];
        let (again, changed) = bisim_refine_step(&g, &out.partition, &all);
        assert!(!changed);
        assert!(again.equivalent(&out.partition));
    }

    #[test]
    fn example2_two_rounds_to_stabilise() {
        // Example 2: λ2 ≡ λ1, so refinement of Fig 2's graph stabilises
        // after round 2 certifies round 1 (plus the initial splitting
        // round). Our driver counts all executed rounds.
        let (_, g, _) = figure2();
        let out = bisimulation_partition(&g);
        // One changing round, one certifying round at minimum.
        assert!(out.rounds >= 2);
    }

    #[test]
    fn refinement_restricted_to_x_keeps_others() {
        let (_, g, ids) = figure2();
        let [_, _, _, _, b1, b2, b3, _] = ids;
        let initial = label_partition(&g);
        // Refine only blank nodes (the deblanking restriction).
        let out =
            bisim_refine_fixpoint(&g, initial.clone(), &[b1, b2, b3]);
        // Non-blank nodes keep label-based classes.
        for n in g.nodes() {
            if !g.is_blank(n) {
                for m in g.nodes() {
                    if !g.is_blank(m) {
                        assert_eq!(
                            initial.same_class(n, m),
                            out.partition.same_class(n, m)
                        );
                    }
                }
            }
        }
        // Blanks still split correctly.
        assert!(out.partition.same_class(b2, b3));
        assert!(!out.partition.same_class(b1, b2));
    }

    #[test]
    fn cycle_terminates() {
        // x -p-> y, y -p-> x : refinement on a cycle must terminate.
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(LabelId::BLANK, &v);
        let y = b.add_node(LabelId::BLANK, &v);
        let p = b.add_node(v.uri("p"), &v);
        b.add_triple(x, p, y);
        b.add_triple(y, p, x);
        let g = b.freeze();
        let out = bisimulation_partition(&g);
        // x and y are bisimilar (symmetric cycle).
        assert!(out.partition.same_class(x, y));
    }

    #[test]
    fn asymmetric_cycle_splits() {
        // x -p-> y, y -q-> x with p != q: x and y are not bisimilar.
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(LabelId::BLANK, &v);
        let y = b.add_node(LabelId::BLANK, &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        b.add_triple(x, p, y);
        b.add_triple(y, q, x);
        let g = b.freeze();
        let out = bisimulation_partition(&g);
        assert!(!out.partition.same_class(x, y));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().freeze();
        let out = bisimulation_partition(&g);
        assert_eq!(out.partition.len(), 0);
    }

    #[test]
    fn out_pair_set_semantics() {
        // Two blanks, one with a duplicate-colored out pair: {a, a} = {a}.
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(LabelId::BLANK, &v);
        let y = b.add_node(LabelId::BLANK, &v);
        let p = b.add_node(v.uri("p"), &v);
        let l1 = b.add_node(LabelId::BLANK, &v); // leaf blank
        let l2 = b.add_node(LabelId::BLANK, &v); // leaf blank, bisimilar to l1
        // x has TWO edges to distinct but bisimilar leaves; y has one.
        b.add_triple(x, p, l1);
        b.add_triple(x, p, l2);
        b.add_triple(y, p, l1);
        let g = b.freeze();
        let out = bisimulation_partition(&g);
        // l1 ~ l2 so out-color sets coincide: x ~ y under bisimulation.
        assert!(out.partition.same_class(l1, l2));
        assert!(out.partition.same_class(x, y));
    }

    #[test]
    fn wrapper_equals_reference_on_figure2() {
        // The compat wrapper (engine at 1 thread) and the sequential
        // reference must agree exactly, round by round.
        let (_, g, _) = figure2();
        let all = vec![true; g.node_count()];
        let mut p_engine = label_partition(&g);
        let mut p_ref = p_engine.clone();
        loop {
            let (e, e_changed) = bisim_refine_step(&g, &p_engine, &all);
            let (r, r_changed) = reference_refine_step(&g, &p_ref, &all);
            assert_eq!(e.colors(), r.colors());
            assert_eq!(e_changed, r_changed);
            p_engine = e;
            p_ref = r;
            if !e_changed {
                break;
            }
        }
    }
}
