//! Weighted propagation (§4.5).
//!
//! After enrichment introduces newly-aligned clusters with weights, the
//! information is propagated to the remaining unaligned nodes by a
//! weighted variant of the refinement procedure: colors refine exactly as
//! in §3.2, and weights follow
//!
//! ```text
//! reweight_ω(n) = ⊕ { (ω(p) ⊕ ω(o)) / |out(n)|  |  (p, o) ∈ out(n) }
//! ```
//!
//! (nodes without outgoing edges keep their weight). The combined
//! iteration `BisimRefine*_X(ξ)` stops when the partition reaches its
//! fixpoint *and* no weight moves by more than ε; weights start at 0 on
//! `X` and only increase, so the process stabilises.
//!
//! `Propagate(ξ) = BisimRefine*_{UN(ξ)}(Blank(ξ, UN(ξ)))` re-derives the
//! identity of all unaligned non-literal nodes from the enriched
//! alignment. `Propagate((λ_Trivial, 0)) = (λ_Hybrid, 0)` — the natural
//! relationship with §3.4 noted by the paper.

use crate::engine::RefineEngine;
use crate::methods::blank_out;
use crate::partition::unaligned_non_literals;
use crate::weighted::WeightedPartition;
use rdf_model::{CombinedGraph, NodeId, TripleGraph};
use rdf_edit::algebra::oplus;

/// Convergence parameters for weighted refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagateConfig {
    /// Weight stabilisation tolerance ε.
    pub epsilon: f64,
    /// Cap on extra weight-only rounds after the partition stabilises.
    pub max_weight_rounds: usize,
}

impl Default for PropagateConfig {
    fn default() -> Self {
        PropagateConfig {
            epsilon: 1e-9,
            max_weight_rounds: 64,
        }
    }
}

/// One weight update `reweight_ω` over the selected nodes; returns the
/// maximum change.
fn reweight_step(
    g: &TripleGraph,
    weights: &mut [f64],
    in_x: &[bool],
) -> f64 {
    let prev = weights.to_vec();
    let mut delta: f64 = 0.0;
    for n in g.nodes() {
        if !in_x[n.index()] {
            continue;
        }
        let out = g.out(n);
        if out.is_empty() {
            continue; // keeps its weight
        }
        let f = out.len() as f64;
        let mut acc = 0.0;
        for &(p, o) in out {
            acc = oplus(acc, oplus(prev[p.index()], prev[o.index()]) / f);
            if acc >= 1.0 {
                break;
            }
        }
        delta = delta.max((acc - prev[n.index()]).abs());
        weights[n.index()] = acc;
    }
    delta
}

/// `BisimRefine*_X(ξ)` for weighted partitions: refine colors and weights
/// of the nodes in `X` until both stabilise.
pub fn weighted_refine_fixpoint(
    g: &TripleGraph,
    xi: WeightedPartition,
    x: &[NodeId],
    config: PropagateConfig,
) -> WeightedPartition {
    weighted_refine_fixpoint_with(g, xi, x, config, &mut RefineEngine::auto())
}

/// As [`weighted_refine_fixpoint`], refining colors through a
/// caller-owned engine over a prebuilt grouped-CSR column view.
///
/// Color rounds read only colors and weight rounds read only weights,
/// so the interleaved loop of §4.5 decouples: the whole color fixpoint
/// runs as one engine invocation (on its thread configuration, with its
/// reused scratch, no per-round partition copies), then the same number
/// of weight rounds replay before the ε check starts — producing the
/// exact color and weight sequences of the interleaved formulation.
pub(crate) fn weighted_refine_fixpoint_cols(
    g: &TripleGraph,
    cols: &rdf_model::OutColumns<'_>,
    xi: WeightedPartition,
    x: &[NodeId],
    config: PropagateConfig,
    engine: &mut RefineEngine,
) -> WeightedPartition {
    let mut in_x = vec![false; g.node_count()];
    for &n in x {
        in_x[n.index()] = true;
    }
    let WeightedPartition {
        partition,
        mut weights,
    } = xi;
    let (partition, color_rounds) =
        engine.refine_fixpoint_columns(cols, partition, &in_x);
    let mut rounds = 0;
    let mut weight_rounds = 0;
    loop {
        let delta = reweight_step(g, &mut weights, &in_x);
        rounds += 1;
        // The interleaved loop only consults ε once the color partition
        // has stabilised (round `color_rounds` onwards).
        if rounds >= color_rounds {
            weight_rounds += 1;
            if delta < config.epsilon || weight_rounds >= config.max_weight_rounds
            {
                return WeightedPartition::new(partition, weights);
            }
        }
    }
}

/// As [`weighted_refine_fixpoint`], refining colors through a
/// caller-owned engine (the grouped-CSR view is built once per call).
pub fn weighted_refine_fixpoint_with(
    g: &TripleGraph,
    xi: WeightedPartition,
    x: &[NodeId],
    config: PropagateConfig,
    engine: &mut RefineEngine,
) -> WeightedPartition {
    let cols = g.out_columns();
    weighted_refine_fixpoint_cols(g, &cols, xi, x, config, engine)
}

/// `Blank(ξ, X)` for weighted partitions: reset colors of `X` to the
/// neutral blank class and their weights to 0.
pub fn blank_out_weighted(
    xi: &WeightedPartition,
    x: &[NodeId],
) -> WeightedPartition {
    let partition = blank_out(&xi.partition, x);
    let mut weights = xi.weights.clone();
    for &n in x {
        weights[n.index()] = 0.0;
    }
    WeightedPartition::new(partition, weights)
}

/// `Propagate(ξ)` (§4.5): blank out the unaligned non-literal nodes and
/// re-derive their colors and weights by weighted refinement.
pub fn propagate(
    combined: &CombinedGraph,
    xi: &WeightedPartition,
    config: PropagateConfig,
) -> WeightedPartition {
    propagate_with(combined, xi, config, &mut RefineEngine::auto())
}

/// As [`propagate`], refining through a caller-owned engine.
pub fn propagate_with(
    combined: &CombinedGraph,
    xi: &WeightedPartition,
    config: PropagateConfig,
    engine: &mut RefineEngine,
) -> WeightedPartition {
    let cols = combined.graph().out_columns();
    propagate_cols(combined, &cols, xi, config, engine)
}

/// As [`propagate_with`], over a prebuilt grouped-CSR column view —
/// callers that propagate repeatedly on one graph (the overlap rounds
/// loop) build the view once instead of once per round.
pub(crate) fn propagate_cols(
    combined: &CombinedGraph,
    cols: &rdf_model::OutColumns<'_>,
    xi: &WeightedPartition,
    config: PropagateConfig,
    engine: &mut RefineEngine,
) -> WeightedPartition {
    let un = unaligned_non_literals(&xi.partition, combined);
    let blanked = blank_out_weighted(xi, &un);
    weighted_refine_fixpoint_cols(
        combined.graph(),
        cols,
        blanked,
        &un,
        config,
        engine,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{hybrid_partition, trivial_partition};
    use rdf_model::{RdfGraphBuilder, Vocab};

    fn renamed_pair() -> CombinedGraph {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("ed-uni", "name", "University of Edinburgh");
            b.uul("ed-uni", "city", "Edinburgh");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("uoe", "name", "University of Edinburgh");
            b.uul("uoe", "city", "Edinburgh");
            b.finish()
        };
        CombinedGraph::union(&v, &g1, &g2)
    }

    #[test]
    fn propagate_of_trivial_equals_hybrid() {
        // Propagate((λTrivial, 0)) = (λHybrid, 0) — §4.5.
        let c = renamed_pair();
        let xi = WeightedPartition::zero(trivial_partition(&c));
        let out = propagate(&c, &xi, PropagateConfig::default());
        let hybrid = hybrid_partition(&c).partition;
        assert!(out.partition.equivalent(&hybrid));
        assert!(out.weights.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn weights_propagate_from_enriched_neighbours() {
        // Give the shared literal cluster a nonzero weight on one side
        // and check the unaligned URIs absorb a fraction of it.
        let c = renamed_pair();
        let p = trivial_partition(&c);
        let mut weights = vec![0.0; p.len()];
        // Node 2 is the literal "University of Edinburgh" on the source.
        assert!(c.graph().is_literal(rdf_model::NodeId(2)));
        weights[2] = 0.4;
        let xi = WeightedPartition::new(p, weights);
        let out = propagate(&c, &xi, PropagateConfig::default());
        // ed-uni (source node 0) has out-degree 2; one of its objects
        // carries weight 0.4 → reweight = 0.4 / 2 = 0.2.
        assert!((out.weight(rdf_model::NodeId(0)) - 0.2).abs() < 1e-9);
        // The blanked URI uoe absorbed symmetric information (its literal
        // weight is 0): 0 / 2 = 0.
        let uoe = c.from_target(rdf_model::NodeId(0));
        assert!(out.weight(uoe) < 0.2);
    }

    #[test]
    fn reweight_keeps_weight_of_sinks() {
        let c = renamed_pair();
        let g = c.graph();
        let mut weights = vec![0.5; g.node_count()];
        let in_x = vec![true; g.node_count()];
        reweight_step(g, &mut weights, &in_x);
        // Literal nodes have no out-edges: weight unchanged.
        for n in g.nodes() {
            if g.out_degree(n) == 0 {
                assert_eq!(weights[n.index()], 0.5);
            }
        }
    }

    #[test]
    fn weighted_refine_terminates_on_cycles() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("x", "p", "y");
            b.uuu("y", "p", "x");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("x2", "p", "y2");
            b.uuu("y2", "p", "x2");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let xi = WeightedPartition::zero(trivial_partition(&c));
        let out = propagate(&c, &xi, PropagateConfig::default());
        // x/y align with x2/y2 modulo blanking (symmetric cycle).
        assert_eq!(out.partition.len(), c.graph().node_count());
    }
}
