//! Weighted partitions (§4.3).
//!
//! A weighted partition `ξ = (λ, ω)` pairs a partition with a weight
//! function `ω : N_G → [0, 1]` measuring each node's distance from the
//! "center" of its cluster. It induces the distance (equation 5)
//!
//! ```text
//! σ_ξ(n, m) = ω(n) ⊕ ω(m)   if λ(n) = λ(m)
//!             1              otherwise
//! ```
//!
//! and the alignment `Align_θ(ξ) = {(n, m) | λ(n) = λ(m), ω(n) ⊕ ω(m) < θ}`.

use crate::partition::{ColorId, Partition};
use rdf_model::{CombinedGraph, NodeId, Side};
use rdf_edit::algebra::oplus;

/// A weighted partition `ξ = (λ, ω)`.
#[derive(Debug, Clone)]
pub struct WeightedPartition {
    /// The underlying partition `λ`.
    pub partition: Partition,
    /// Per-node weights `ω ∈ [0, 1]`.
    pub weights: Vec<f64>,
}

impl WeightedPartition {
    /// Wrap a partition with the constant-zero weight function (the
    /// starting point `ξ₀ = (λ_Hybrid, 0)` of Algorithm 2).
    pub fn zero(partition: Partition) -> Self {
        let n = partition.len();
        WeightedPartition {
            partition,
            weights: vec![0.0; n],
        }
    }

    /// Wrap a partition with explicit weights.
    pub fn new(partition: Partition, weights: Vec<f64>) -> Self {
        assert_eq!(partition.len(), weights.len());
        debug_assert!(weights
            .iter()
            .all(|w| (0.0..=1.0 + 1e-12).contains(w)));
        WeightedPartition { partition, weights }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.partition.len()
    }

    /// Whether the weighted partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.partition.is_empty()
    }

    /// The color of a node.
    #[inline]
    pub fn color(&self, n: NodeId) -> ColorId {
        self.partition.color(n)
    }

    /// The weight of a node.
    #[inline]
    pub fn weight(&self, n: NodeId) -> f64 {
        self.weights[n.index()]
    }

    /// The induced distance `σ_ξ` (equation 5).
    pub fn distance(&self, n: NodeId, m: NodeId) -> f64 {
        if self.partition.same_class(n, m) {
            oplus(self.weight(n), self.weight(m))
        } else {
            1.0
        }
    }

    /// `Align_θ(ξ)`: cross-side pairs in the same cluster whose combined
    /// weight is below the threshold. Materialises pairs in
    /// combined-graph ids; intended for inspection and tests.
    pub fn align_threshold(
        &self,
        combined: &CombinedGraph,
        theta: f64,
    ) -> Vec<(NodeId, NodeId, f64)> {
        let k = self.partition.num_colors() as usize;
        let mut src: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut tgt: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for n in combined.graph().nodes() {
            let c = self.partition.color(n).index();
            match combined.side(n) {
                Side::Source => src[c].push(n),
                Side::Target => tgt[c].push(n),
            }
        }
        let mut out = Vec::new();
        for c in 0..k {
            for &s in &src[c] {
                for &t in &tgt[c] {
                    let d = oplus(self.weight(s), self.weight(t));
                    if d < theta {
                        out.push((s, t, d));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::trivial_partition;
    use rdf_model::{RdfGraphBuilder, Vocab};

    fn combined() -> CombinedGraph {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        CombinedGraph::union(&v, &g1, &g2)
    }

    #[test]
    fn zero_weights() {
        let c = combined();
        let w = WeightedPartition::zero(trivial_partition(&c));
        assert!(w.weights.iter().all(|&x| x == 0.0));
        assert_eq!(w.len(), 6);
        assert!(!w.is_empty());
    }

    #[test]
    fn distance_same_cluster_is_weight_sum() {
        let c = combined();
        let p = trivial_partition(&c);
        let mut weights = vec![0.0; p.len()];
        weights[0] = 0.2; // source x
        weights[3] = 0.25; // target x
        let w = WeightedPartition::new(p, weights);
        let x_src = NodeId(0);
        let x_tgt = NodeId(3);
        assert!((w.distance(x_src, x_tgt) - 0.45).abs() < 1e-12);
        // Different clusters: 1.
        assert_eq!(w.distance(NodeId(0), NodeId(4)), 1.0);
    }

    #[test]
    fn align_threshold_filters_by_weight() {
        let c = combined();
        let p = trivial_partition(&c);
        let mut weights = vec![0.0; p.len()];
        weights[0] = 0.4;
        weights[3] = 0.4;
        let w = WeightedPartition::new(p, weights);
        // x-pair has distance 0.8; p-pair and a-pair 0.0.
        let strict = w.align_threshold(&c, 0.5);
        assert_eq!(strict.len(), 2);
        let loose = w.align_threshold(&c, 0.9);
        assert_eq!(loose.len(), 3);
    }

    #[test]
    fn example6_distances() {
        // Example 6: nodes "abc" (ω=2/9) and "ac" (ω=1/9) in one cluster
        // have σ_ξ = 1/3; w (2/9) and w' (1/36) give 1/4.
        let raw: Vec<u32> = vec![0, 1, 2, 0, 1, 2];
        let p = Partition::from_colors(&raw);
        let w = WeightedPartition::new(
            p,
            vec![2.0 / 9.0, 0.0, 0.0, 1.0 / 9.0, 0.0, 0.0],
        );
        assert!((w.distance(NodeId(0), NodeId(3)) - 1.0 / 3.0).abs() < 1e-12);
    }
}
