//! Shard-at-a-time streaming refinement — the external-memory sibling
//! of [`crate::engine::RefineEngine`].
//!
//! The in-RAM engine holds the whole graph's grouped-CSR columns for
//! the entire fixpoint. Following the I/O-efficient bisimulation
//! constructions (Luo et al., Hellings et al.), this engine instead
//! keeps only the **dense color vector** resident and sources the
//! adjacency one shard at a time from a
//! [`ShardColumnsSource`] — on-disk shard files of a `.rdfm` store, or
//! an in-memory range decomposition ([`rdf_model::GraphShards`]).
//! Each round has the same two phases as the in-RAM engine:
//!
//! 1. **Signature phase** — workers walk disjoint shard-index ranges;
//!    for each shard they load its columns, compute every subject's
//!    `RoundKey` (the identical equation-1 signature the in-RAM
//!    engine hashes, via the shared `recolor_signature`), **spill**
//!    the `(node, key)` pairs into a per-shard buffer, and drop the
//!    columns before touching the next shard — so at most one shard's
//!    columns are resident per worker at any instant;
//! 2. **Canonicalisation phase** — the spilled buffers (each ascending
//!    in node id, because shard runs are subject-sorted) are k-way
//!    merged in global node order; nodes absent from every shard (no
//!    outbound edges) get their key computed inline from the color
//!    vector alone. Interning keys in ascending node order with dense
//!    ids from insertion order is *exactly* the sequential reference
//!    numbering — so the output partition is **bit-identical** to the
//!    in-RAM engine (and the sequential reference) for every shard
//!    count and every thread count.
//!
//! Shard loads may fail (disk corruption, missing files), so every
//! entry point returns a `Result`; errors are deterministic — the
//! lowest-indexed failing shard wins at every thread count, via
//! [`rdf_par::scoped_try_map`].

use crate::engine::{recolor_signature, RoundKey};
use crate::partition::{ColorId, Partition};
use crate::refine::RefineOutcome;
use rdf_model::{FxHashMap, LabelId, ShardColumns, ShardColumnsSource};
use rdf_obs::Recorder;
use rdf_par::{chunk_ranges, scoped_try_map, Threads};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Failure of a streaming refinement run.
#[derive(Debug)]
pub enum StreamError<E> {
    /// A shard failed to load; carries the source's error.
    Source(E),
    /// A node appeared as a subject in more than one shard (or a
    /// shard's subjects were not ascending) — the source violated the
    /// subject-partition contract.
    Overlap {
        /// The node that was seen twice.
        node: u32,
    },
    /// A shard referenced a node id beyond the source's node count.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The source's node count.
        nodes: usize,
    },
}

impl<E: fmt::Display> fmt::Display for StreamError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Source(e) => write!(f, "shard load failed: {e}"),
            StreamError::Overlap { node } => write!(
                f,
                "node {node} appears as a subject in more than one shard"
            ),
            StreamError::NodeOutOfRange { node, nodes } => write!(
                f,
                "shard references node {node} beyond node count {nodes}"
            ),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for StreamError<E> {}

/// One spilled signature buffer: a shard's `(node, key)` pairs in
/// ascending node order, plus the columns bytes that were resident
/// while it was produced.
type Spill = (Vec<(u32, RoundKey)>, usize);

/// Streaming refinement engine: shard-at-a-time rounds, dense color
/// vector resident, output bit-identical to [`RefineEngine`] at every
/// shard count × thread count.
///
/// Construct once per pipeline run and feed it every fixpoint, like
/// the in-RAM engine; the canonicalisation intern map is reused across
/// rounds and runs.
///
/// ```
/// use rdf_align::{RefineEngine, StreamingRefineEngine, Threads};
/// use rdf_model::{GraphShards, RdfGraphBuilder, Vocab};
///
/// let mut vocab = Vocab::new();
/// let g = {
///     let mut b = RdfGraphBuilder::new(&mut vocab);
///     b.uub("w", "p", "b1");
///     b.bul("b1", "q", "a");
///     b.bul("b2", "q", "a");
///     b.finish()
/// };
/// // Stream over a 2-shard decomposition of the resident graph …
/// let shards = GraphShards::chunked(g.graph(), 2);
/// let mut engine = StreamingRefineEngine::new(Threads::Fixed(1));
/// let streamed = engine
///     .bisimulation(&shards, g.graph().labels_raw())
///     .expect("in-memory shards cannot fail");
/// // … and get the bit-identical partition the in-RAM engine builds.
/// let in_ram = RefineEngine::new(Threads::Fixed(1)).bisimulation(g.graph());
/// assert_eq!(streamed.partition.colors(), in_ram.partition.colors());
/// assert_eq!(streamed.rounds, in_ram.rounds);
/// ```
///
/// [`RefineEngine`]: crate::engine::RefineEngine
#[derive(Debug)]
pub struct StreamingRefineEngine {
    threads: usize,
    /// Instrumentation sink; [`Recorder::disabled`] by default, in
    /// which case every emission site reduces to one branch.
    recorder: Arc<Recorder>,
    /// Canonicalisation intern map, reused round to round and run to
    /// run.
    map: FxHashMap<RoundKey, u32>,
    /// Largest single-shard columns residency observed since
    /// construction.
    peak_shard_bytes: usize,
}

impl StreamingRefineEngine {
    /// An engine running on the given thread configuration.
    pub fn new(threads: Threads) -> Self {
        StreamingRefineEngine {
            threads: threads.resolve(),
            recorder: Arc::new(Recorder::disabled()),
            map: FxHashMap::default(),
            peak_shard_bytes: 0,
        }
    }

    /// An engine on the default (auto) thread configuration.
    pub fn auto() -> Self {
        StreamingRefineEngine::new(Threads::Auto)
    }

    /// An engine with an instrumentation recorder attached. Tracing
    /// never changes results: the emitted partition is bit-identical
    /// with any recorder (the inertness suite proves it).
    pub fn with_recorder(threads: Threads, recorder: Arc<Recorder>) -> Self {
        let mut engine = StreamingRefineEngine::new(threads);
        engine.recorder = recorder;
        engine
    }

    /// Attach (or replace) the instrumentation recorder.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The largest columns residency (in bytes, per
    /// [`ShardColumns::resident_bytes`]) any single worker held at any
    /// point since this engine was built — the external-memory claim,
    /// measurable: total adjacency residency is bounded by
    /// `threads × peak_shard_bytes`, independent of total graph size.
    pub fn peak_shard_bytes(&self) -> usize {
        self.peak_shard_bytes
    }

    /// Run `BisimRefine*_X(λ)` to fixpoint (Definition 4) over a shard
    /// source, with a membership mask for `X`.
    ///
    /// Semantics, round count and output partition are bit-identical
    /// to [`crate::engine::RefineEngine::refine_fixpoint_mask`] on the
    /// stitched graph, for every shard count and thread count.
    pub fn refine_fixpoint_mask<S>(
        &mut self,
        source: &S,
        initial: Partition,
        in_x: &[bool],
    ) -> Result<RefineOutcome, StreamError<S::Error>>
    where
        S: ShardColumnsSource + Sync,
        S::Error: Send,
    {
        let n = source.node_count();
        // Validate on the calling thread before any worker spawns,
        // mirroring the in-RAM engine's entry points.
        assert_eq!(initial.len(), n, "initial partition length != node count");
        assert_eq!(in_x.len(), n, "in_x length != node count");
        if n == 0 {
            // An empty graph certifies its fixpoint instantly; the
            // in-RAM path reports one round, so we do too.
            return Ok(RefineOutcome {
                partition: initial,
                rounds: 1,
            });
        }
        let rec = Arc::clone(&self.recorder);
        let mut fix = rec.span("refine.fixpoint");
        let mut partition = initial;
        let mut rounds = 0usize;
        loop {
            let mut sp = rec.span("refine.round");
            let prev_num = partition.num_colors();
            let sig_start = sp.enabled().then(Instant::now);
            let spills = self.signature_phase(source, &partition, in_x)?;
            let sig_us =
                sig_start.map(|t| t.elapsed().as_micros() as u64);
            let canon_start = sp.enabled().then(Instant::now);
            let (colors, new_num) =
                self.canonicalise(n, &partition, in_x, spills)?;
            let changed = new_num != partition.num_colors();
            partition = Partition::from_dense(colors, new_num);
            rounds += 1;
            if sp.enabled() {
                sp.field("round", rounds);
                sp.field("classes", new_num);
                sp.field("splits", new_num.saturating_sub(prev_num));
                if let Some(us) = sig_us {
                    sp.field("sig_us", us);
                }
                if let Some(t) = canon_start {
                    sp.field(
                        "canon_us",
                        t.elapsed().as_micros() as u64,
                    );
                }
                // The external-memory claim, live: largest single-shard
                // residency any worker has held so far.
                rec.gauge("stream.peak_shard_bytes")
                    .set(self.peak_shard_bytes as u64);
            }
            drop(sp);
            if !changed {
                if fix.enabled() {
                    fix.field("rounds", rounds);
                    fix.field("classes", partition.num_colors());
                    fix.field("nodes", n);
                    fix.field("threads", self.threads);
                    fix.field("shards", source.shard_count());
                }
                return Ok(RefineOutcome { partition, rounds });
            }
        }
    }

    /// `λ_Bisim = BisimRefine*_{N_G}(ℓ_G)` — the maximal bisimulation
    /// partition (Proposition 1) over a shard source, starting from
    /// the node-labelling partition built from `labels` (the per-node
    /// label array, e.g. [`rdf_model::TripleGraph::labels_raw`] or a
    /// streaming store's node table).
    pub fn bisimulation<S>(
        &mut self,
        source: &S,
        labels: &[LabelId],
    ) -> Result<RefineOutcome, StreamError<S::Error>>
    where
        S: ShardColumnsSource + Sync,
        S::Error: Send,
    {
        assert_eq!(
            labels.len(),
            source.node_count(),
            "label array length != node count"
        );
        let initial = crate::refine::label_partition_from(labels);
        let in_x = vec![true; labels.len()];
        self.refine_fixpoint_mask(source, initial, &in_x)
    }

    /// Phase 1: load each shard once (workers own disjoint shard-index
    /// ranges), compute its subjects' round keys against the previous
    /// partition, and spill them. Returns the per-shard buffers in
    /// shard order.
    fn signature_phase<S>(
        &mut self,
        source: &S,
        partition: &Partition,
        in_x: &[bool],
    ) -> Result<Vec<Spill>, StreamError<S::Error>>
    where
        S: ShardColumnsSource + Sync,
        S::Error: Send,
    {
        let n = source.node_count();
        let shards = source.shard_count();
        if shards == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(shards).max(1);
        let ranges = chunk_ranges(shards, workers);
        let rec = Arc::clone(&self.recorder);
        let rec = &*rec;
        // One task per worker, draining a contiguous range of shard
        // indices in order; flattening per-task results in task order
        // recovers exact shard order, independent of thread count.
        // Per-shard spans are emitted once per (round, shard) — their
        // count is a pure function of the run's structure, never of
        // the thread count — and tagged with the worker index.
        let per_task: Vec<Vec<Spill>> =
            scoped_try_map(ranges, |ti, range| {
                let mut out = Vec::with_capacity(range.len());
                let mut buf: Vec<(u32, u32)> = Vec::new();
                for k in range {
                    let mut sp = rec.span("refine.shard");
                    let cols = source
                        .load_shard(k)
                        .map_err(StreamError::Source)?;
                    let spill =
                        spill_shard(&cols, partition, in_x, n, &mut buf)?;
                    if sp.enabled() {
                        sp.field("shard", k);
                        sp.field("worker", ti);
                        sp.field("keys", spill.0.len());
                        sp.field("bytes", spill.1);
                    }
                    out.push(spill);
                    // `cols` drops here: one shard resident per worker.
                }
                Ok(out)
            })?;
        let spills: Vec<Spill> =
            per_task.into_iter().flatten().collect();
        for &(_, bytes) in &spills {
            self.peak_shard_bytes = self.peak_shard_bytes.max(bytes);
        }
        Ok(spills)
    }

    /// Phase 2: k-way merge the spilled buffers in ascending node
    /// order, computing edge-less nodes' keys inline from the color
    /// vector, and intern with dense ids in first-occurrence order —
    /// the sequential reference numbering.
    fn canonicalise<E>(
        &mut self,
        n: usize,
        partition: &Partition,
        in_x: &[bool],
        spills: Vec<Spill>,
    ) -> Result<(Vec<ColorId>, u32), StreamError<E>> {
        let prev = partition.colors();
        let map = &mut self.map;
        map.clear();
        map.reserve(partition.num_colors() as usize + 16);
        let mut intern = |key: RoundKey| {
            let next = map.len() as u32;
            ColorId(*map.entry(key).or_insert(next))
        };
        // The key of a node no shard claimed: it has no outbound
        // edges, so equation 1 hashes an empty pair set.
        let gap_key = |i: usize| {
            if in_x[i] {
                let (h1, h2) = recolor_signature(prev[i].0, &[]);
                RoundKey::Recolored(h1, h2)
            } else {
                RoundKey::Kept(prev[i].0)
            }
        };

        let mut colors: Vec<ColorId> = Vec::with_capacity(n);
        let mut cursors: Vec<std::slice::Iter<'_, (u32, RoundKey)>> =
            spills.iter().map(|(buf, _)| buf.iter()).collect();
        let mut heads: Vec<Option<(u32, RoundKey)>> =
            cursors.iter_mut().map(|c| c.next().copied()).collect();
        loop {
            // Smallest head node across the spill buffers; a linear
            // scan — shard counts are small — that stays obviously
            // deterministic.
            let best = heads
                .iter()
                .enumerate()
                .filter_map(|(b, h)| h.map(|(i, _)| (i, b)))
                .min();
            let Some((node, b)) = best else {
                // No spilled entries left: the remaining nodes are all
                // edge-less.
                for i in colors.len()..n {
                    colors.push(intern(gap_key(i)));
                }
                break;
            };
            if (node as usize) < colors.len() {
                return Err(StreamError::Overlap { node });
            }
            for i in colors.len()..node as usize {
                colors.push(intern(gap_key(i)));
            }
            let (_, key) = heads[b].take().expect("selected head present");
            colors.push(intern(key));
            heads[b] = cursors[b].next().copied();
        }
        let new_num = map.len() as u32;
        Ok((colors, new_num))
    }
}

impl Default for StreamingRefineEngine {
    fn default() -> Self {
        StreamingRefineEngine::auto()
    }
}

/// Compute one shard's spill buffer: every subject's round key against
/// the previous partition — the same equation-1 signature
/// ([`recolor_signature`] over the sorted, deduplicated outbound color
/// pairs) the in-RAM engine computes, so the two paths cannot drift.
fn spill_shard<E>(
    cols: &ShardColumns,
    partition: &Partition,
    in_x: &[bool],
    n: usize,
    buf: &mut Vec<(u32, u32)>,
) -> Result<Spill, StreamError<E>> {
    if let Some(max) = cols.max_node() {
        if max.index() >= n {
            return Err(StreamError::NodeOutOfRange {
                node: max.0,
                nodes: n,
            });
        }
    }
    let colors = partition.colors();
    let preds = cols.preds();
    let objs = cols.objs();
    let mut entries = Vec::with_capacity(cols.subject_count());
    for (i, &s) in cols.subjects().iter().enumerate() {
        let key = if in_x[s.index()] {
            buf.clear();
            for j in cols.range(i) {
                buf.push((
                    colors[preds[j].index()].0,
                    colors[objs[j].index()].0,
                ));
            }
            // Equation (1) uses a *set* of color pairs: sort + dedup
            // gives the canonical sequence to hash.
            buf.sort_unstable();
            buf.dedup();
            let (h1, h2) = recolor_signature(colors[s.index()].0, buf);
            RoundKey::Recolored(h1, h2)
        } else {
            RoundKey::Kept(colors[s.index()].0)
        };
        entries.push((s.0, key));
    }
    Ok((entries, cols.resident_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RefineEngine;
    use crate::refine::label_partition;
    use rdf_model::{GraphBuilder, GraphShards, LabelId, TripleGraph, Vocab};

    fn sample() -> TripleGraph {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let w = b.add_node(v.uri("w"), &v);
        let u = b.add_node(v.uri("u"), &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        let lit = b.add_node(v.literal("a"), &v);
        let b1 = b.add_node(LabelId::BLANK, &v);
        let b2 = b.add_node(LabelId::BLANK, &v);
        let b3 = b.add_node(LabelId::BLANK, &v);
        b.add_triple(w, p, b1);
        b.add_triple(u, p, b2);
        b.add_triple(b1, q, lit);
        b.add_triple(b2, q, lit);
        b.add_triple(b3, q, b1);
        b.freeze()
    }

    #[test]
    fn matches_in_ram_engine_at_every_shard_and_thread_count() {
        let g = sample();
        let base = RefineEngine::new(Threads::Fixed(1)).bisimulation(&g);
        for shards in [1usize, 2, 3, 4, 8] {
            let src = GraphShards::chunked(&g, shards);
            for threads in [1usize, 2, 4] {
                let mut engine =
                    StreamingRefineEngine::new(Threads::Fixed(threads));
                let out = engine
                    .bisimulation(&src, g.labels_raw())
                    .expect("in-memory shards");
                assert_eq!(
                    out.partition.colors(),
                    base.partition.colors(),
                    "shards={shards} threads={threads}"
                );
                assert_eq!(out.rounds, base.rounds);
                assert!(engine.peak_shard_bytes() > 0);
            }
        }
    }

    #[test]
    fn partial_mask_matches_in_ram_engine() {
        let g = sample();
        let in_x: Vec<bool> = g.nodes().map(|n| g.is_blank(n)).collect();
        let base = RefineEngine::new(Threads::Fixed(1)).refine_fixpoint_mask(
            &g,
            label_partition(&g),
            &in_x,
        );
        for shards in [1usize, 3, 8] {
            let src = GraphShards::chunked(&g, shards);
            let out = StreamingRefineEngine::new(Threads::Fixed(2))
                .refine_fixpoint_mask(&src, label_partition(&g), &in_x)
                .expect("in-memory shards");
            assert_eq!(out.partition.colors(), base.partition.colors());
            assert_eq!(out.rounds, base.rounds);
        }
    }

    #[test]
    fn engine_reuse_is_deterministic() {
        let g = sample();
        let src = GraphShards::chunked(&g, 3);
        let mut engine = StreamingRefineEngine::new(Threads::Fixed(2));
        let a = engine.bisimulation(&src, g.labels_raw()).unwrap();
        let b = engine.bisimulation(&src, g.labels_raw()).unwrap();
        assert_eq!(a.partition.colors(), b.partition.colors());
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().freeze();
        let src = GraphShards::chunked(&g, 4);
        let out = StreamingRefineEngine::auto()
            .bisimulation(&src, g.labels_raw())
            .unwrap();
        assert_eq!(out.partition.len(), 0);
        assert_eq!(out.rounds, 1);
        let in_ram = RefineEngine::auto().bisimulation(&g);
        assert_eq!(out.rounds, in_ram.rounds);
    }

    /// A source that hands the same shard out twice — the engine must
    /// return the typed overlap error, not a wrong partition.
    struct Overlapping<'g>(&'g TripleGraph);

    impl ShardColumnsSource for Overlapping<'_> {
        type Error = std::convert::Infallible;
        fn node_count(&self) -> usize {
            self.0.node_count()
        }
        fn shard_count(&self) -> usize {
            2
        }
        fn load_shard(
            &self,
            _k: usize,
        ) -> Result<ShardColumns, Self::Error> {
            Ok(ShardColumns::from_sorted_triples(self.0.triples()))
        }
    }

    #[test]
    fn overlapping_shards_are_a_typed_error() {
        let g = sample();
        let err = StreamingRefineEngine::new(Threads::Fixed(1))
            .bisimulation(&Overlapping(&g), g.labels_raw())
            .unwrap_err();
        assert!(matches!(err, StreamError::Overlap { .. }), "{err:?}");
    }

    /// A source whose shard references a node beyond the node count.
    struct OutOfRange;

    impl ShardColumnsSource for OutOfRange {
        type Error = std::convert::Infallible;
        fn node_count(&self) -> usize {
            2
        }
        fn shard_count(&self) -> usize {
            1
        }
        fn load_shard(
            &self,
            _k: usize,
        ) -> Result<ShardColumns, Self::Error> {
            use rdf_model::{NodeId, Triple};
            Ok(ShardColumns::from_sorted_triples(&[Triple::new(
                NodeId(0),
                NodeId(1),
                NodeId(9),
            )]))
        }
    }

    #[test]
    fn out_of_range_nodes_are_a_typed_error() {
        let labels = vec![LabelId::BLANK; 2];
        let err = StreamingRefineEngine::new(Threads::Fixed(1))
            .bisimulation(&OutOfRange, &labels)
            .unwrap_err();
        assert!(
            matches!(err, StreamError::NodeOutOfRange { node: 9, nodes: 2 }),
            "{err:?}"
        );
    }
}
