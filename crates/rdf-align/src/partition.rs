//! Partitions of the combined graph (§2.2).
//!
//! A partition assigns every node a *color*; the equivalence classes are
//! the sets of nodes with the same color. We keep colors dense
//! (`0..num_colors`) and canonical (numbered by first occurrence), which
//! makes partition equivalence (`λ1 ≡ λ2`, i.e. `R_{λ1} = R_{λ2}`) a simple
//! recoloring check and makes per-class counting array-indexed.

use rdf_model::{CombinedGraph, FxHashMap, NodeId, Side, TripleGraph};

/// Dense color identifier within one [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColorId(pub u32);

impl ColorId {
    /// The color as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A partition `λ : N_G → C` of the nodes of one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    colors: Vec<ColorId>,
    num_colors: u32,
}

impl Partition {
    /// Build from raw color assignments, canonicalising to dense colors
    /// numbered by first occurrence.
    pub fn from_colors<T: std::hash::Hash + Eq>(raw: &[T]) -> Self {
        let mut map: FxHashMap<&T, u32> = FxHashMap::default();
        let mut colors = Vec::with_capacity(raw.len());
        for c in raw {
            let next = map.len() as u32;
            let id = *map.entry(c).or_insert(next);
            colors.push(ColorId(id));
        }
        Partition {
            colors,
            num_colors: map.len() as u32,
        }
    }

    /// The discrete partition: every node its own class.
    pub fn discrete(n: usize) -> Self {
        Partition {
            colors: (0..n as u32).map(ColorId).collect(),
            num_colors: n as u32,
        }
    }

    /// The unit partition: all nodes in one class.
    pub fn unit(n: usize) -> Self {
        Partition {
            colors: vec![ColorId(0); n],
            num_colors: if n == 0 { 0 } else { 1 },
        }
    }

    /// Construct from already-dense canonical colors (internal use).
    pub(crate) fn from_dense(colors: Vec<ColorId>, num_colors: u32) -> Self {
        debug_assert!(colors.iter().all(|c| c.0 < num_colors));
        Partition { colors, num_colors }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Number of equivalence classes.
    #[inline]
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// The color of a node.
    #[inline]
    pub fn color(&self, n: NodeId) -> ColorId {
        self.colors[n.index()]
    }

    /// Raw color slice.
    #[inline]
    pub fn colors(&self) -> &[ColorId] {
        &self.colors
    }

    /// Whether two nodes are in the same class.
    #[inline]
    pub fn same_class(&self, n: NodeId, m: NodeId) -> bool {
        self.color(n) == self.color(m)
    }

    /// Partition equivalence `λ1 ≡ λ2` (Definition in §2.2): identical
    /// induced equivalence relations. Because both partitions are
    /// canonical (colors numbered by first occurrence), equivalence is
    /// exact equality of the color vectors.
    pub fn equivalent(&self, other: &Partition) -> bool {
        self.num_colors == other.num_colors && self.colors == other.colors
    }

    /// Whether `self` is finer than (or equivalent to) `other`:
    /// `R_self ⊆ R_other`.
    pub fn finer_than(&self, other: &Partition) -> bool {
        if self.len() != other.len() {
            return false;
        }
        // self finer than other iff each self-class is contained in one
        // other-class, i.e. the map self-color -> other-color is a function.
        let mut map: Vec<Option<ColorId>> = vec![None; self.num_colors as usize];
        for i in 0..self.len() {
            let sc = self.colors[i].index();
            match map[sc] {
                None => map[sc] = Some(other.colors[i]),
                Some(oc) => {
                    if oc != other.colors[i] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Group nodes by class; classes ordered by color id.
    pub fn classes(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_colors as usize];
        for (i, c) in self.colors.iter().enumerate() {
            out[c.index()].push(NodeId(i as u32));
        }
        out
    }

    /// Sizes of all classes, indexed by color.
    pub fn class_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.num_colors as usize];
        for c in &self.colors {
            sizes[c.index()] += 1;
        }
        sizes
    }
}

/// Per-side class occupancy of a partition over a combined graph, the
/// basis of the aligned/unaligned distinction of §3.1.
#[derive(Debug, Clone)]
pub struct SideCounts {
    /// Number of source-side nodes per color.
    pub source: Vec<u32>,
    /// Number of target-side nodes per color.
    pub target: Vec<u32>,
}

impl SideCounts {
    /// Count class occupancy per side.
    pub fn new(partition: &Partition, combined: &CombinedGraph) -> Self {
        let k = partition.num_colors() as usize;
        let mut source = vec![0u32; k];
        let mut target = vec![0u32; k];
        for n in combined.graph().nodes() {
            let c = partition.color(n).index();
            match combined.side(n) {
                Side::Source => source[c] += 1,
                Side::Target => target[c] += 1,
            }
        }
        SideCounts { source, target }
    }

    /// Whether a node of the given side is aligned (its class contains at
    /// least one node of the opposite side).
    #[inline]
    pub fn is_aligned(&self, color: ColorId, side: Side) -> bool {
        match side {
            Side::Source => self.target[color.index()] > 0,
            Side::Target => self.source[color.index()] > 0,
        }
    }

    /// Number of classes populated from both sides.
    pub fn aligned_classes(&self) -> usize {
        self.source
            .iter()
            .zip(&self.target)
            .filter(|(&s, &t)| s > 0 && t > 0)
            .count()
    }
}

/// `Unaligned(λ)` (§3.1): nodes whose class contains no node of the
/// opposite graph. Returned in ascending node order.
pub fn unaligned_nodes(
    partition: &Partition,
    combined: &CombinedGraph,
) -> Vec<NodeId> {
    let counts = SideCounts::new(partition, combined);
    combined
        .graph()
        .nodes()
        .filter(|&n| !counts.is_aligned(partition.color(n), combined.side(n)))
        .collect()
}

/// `UN(λ)` (equation 4): unaligned nodes that are not literals.
pub fn unaligned_non_literals(
    partition: &Partition,
    combined: &CombinedGraph,
) -> Vec<NodeId> {
    let counts = SideCounts::new(partition, combined);
    let g: &TripleGraph = combined.graph();
    g.nodes()
        .filter(|&n| {
            !g.is_literal(n)
                && !counts.is_aligned(partition.color(n), combined.side(n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{RdfGraphBuilder, Vocab};

    #[test]
    fn canonicalisation_by_first_occurrence() {
        let p = Partition::from_colors(&[7u32, 3, 7, 9, 3]);
        assert_eq!(p.num_colors(), 3);
        assert_eq!(
            p.colors(),
            &[ColorId(0), ColorId(1), ColorId(0), ColorId(2), ColorId(1)]
        );
    }

    #[test]
    fn equivalence_ignores_representation() {
        let p1 = Partition::from_colors(&["a", "b", "a"]);
        let p2 = Partition::from_colors(&[10u32, 20, 10]);
        assert!(p1.equivalent(&p2));
        let p3 = Partition::from_colors(&[10u32, 20, 20]);
        assert!(!p1.equivalent(&p3));
    }

    #[test]
    fn finer_than() {
        let coarse = Partition::from_colors(&[0u32, 0, 1, 1]);
        let fine = Partition::from_colors(&[0u32, 1, 2, 2]);
        assert!(fine.finer_than(&coarse));
        assert!(!coarse.finer_than(&fine));
        // Every partition is finer than itself.
        assert!(coarse.finer_than(&coarse));
        // Discrete is finer than everything; unit coarser.
        assert!(Partition::discrete(4).finer_than(&coarse));
        assert!(coarse.finer_than(&Partition::unit(4)));
    }

    #[test]
    fn classes_and_sizes() {
        let p = Partition::from_colors(&[0u32, 1, 0, 1, 1]);
        let classes = p.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![NodeId(0), NodeId(2)]);
        assert_eq!(classes[1], vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(p.class_sizes(), vec![2, 3]);
    }

    #[test]
    fn unaligned_detection() {
        // G1: x --p--> "a"; G2: x --p--> "b". Color nodes by label.
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "b");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let labels: Vec<u32> =
            c.graph().nodes().map(|n| c.graph().label(n).0).collect();
        let p = Partition::from_colors(&labels);
        let un = unaligned_nodes(&p, &c);
        // "a" (source node 2) and "b" (target node 5) are unaligned.
        assert_eq!(un, vec![NodeId(2), NodeId(5)]);
        // Both are literals, so UN is empty.
        assert!(unaligned_non_literals(&p, &c).is_empty());
        let counts = SideCounts::new(&p, &c);
        assert_eq!(counts.aligned_classes(), 2); // x and p
    }

    #[test]
    fn discrete_and_unit() {
        let d = Partition::discrete(3);
        assert_eq!(d.num_colors(), 3);
        let u = Partition::unit(3);
        assert_eq!(u.num_colors(), 1);
        assert!(d.finer_than(&u));
        let empty = Partition::unit(0);
        assert_eq!(empty.num_colors(), 0);
        assert!(empty.is_empty());
    }
}
