//! Property tests for the data-model substrate: builder determinism,
//! CSR adjacency consistency, union arithmetic.

use proptest::prelude::*;
use rdf_model::{
    CombinedGraph, GraphBuilder, LabelId, NodeId, RdfGraphBuilder, Side,
    Triple, Vocab,
};

fn arb_spec() -> impl Strategy<Value = (usize, Vec<(u8, u8, u8)>)> {
    (1usize..12).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(
                (0u8..n as u8, 0u8..n as u8, 0u8..n as u8),
                0..40,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSR adjacency agrees with the raw triple list.
    #[test]
    fn out_neighbourhood_consistent((n, triples) in arb_spec()) {
        let mut vocab = Vocab::new();
        let mut b = GraphBuilder::new();
        for i in 0..n {
            let l = if i % 3 == 0 {
                LabelId::BLANK
            } else {
                vocab.uri(&format!("u{i}"))
            };
            b.add_node(l, &vocab);
        }
        for &(s, p, o) in &triples {
            b.add_triple(NodeId(s as u32), NodeId(p as u32), NodeId(o as u32));
        }
        let g = b.freeze();
        // Every triple is visible through out(); degrees sum to the
        // triple count.
        let mut total = 0;
        for node in g.nodes() {
            let out = g.out(node);
            total += out.len();
            prop_assert!(out.windows(2).all(|w| w[0] <= w[1]), "sorted");
            for &(p, o) in out {
                prop_assert!(g.has_triple(node, p, o));
            }
        }
        prop_assert_eq!(total, g.triple_count());
        // Deduplication: triple list is strictly increasing.
        prop_assert!(g
            .triples()
            .windows(2)
            .all(|w| w[0] < w[1]));
    }

    /// Union bookkeeping: side, locals, and triple counts add up.
    #[test]
    fn union_arithmetic(
        (n1, t1) in arb_spec(),
        (n2, t2) in arb_spec(),
    ) {
        let mut vocab = Vocab::new();
        let build = |vocab: &mut Vocab, n: usize, ts: &[(u8, u8, u8)]| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                let l = vocab.uri(&format!("u{i}"));
                b.add_node(l, vocab);
            }
            for &(s, p, o) in ts {
                b.add_triple(
                    NodeId(s as u32),
                    NodeId(p as u32),
                    NodeId(o as u32),
                );
            }
            b.freeze()
        };
        let g1 = build(&mut vocab, n1, &t1);
        let g2 = build(&mut vocab, n2, &t2);
        let c = CombinedGraph::union_graphs(&vocab, &g1, &g2);
        prop_assert_eq!(c.graph().node_count(), n1 + n2);
        prop_assert_eq!(
            c.graph().triple_count(),
            g1.triple_count() + g2.triple_count()
        );
        for n in c.graph().nodes() {
            let (side, local) = c.to_local(n);
            match side {
                Side::Source => {
                    prop_assert_eq!(c.from_source(local), n);
                    prop_assert_eq!(c.graph().label(n), g1.label(local));
                }
                Side::Target => {
                    prop_assert_eq!(c.from_target(local), n);
                    prop_assert_eq!(c.graph().label(n), g2.label(local));
                }
            }
        }
        // No cross-side triples.
        for t in c.graph().triples() {
            prop_assert_eq!(c.side(t.s), c.side(t.p));
            prop_assert_eq!(c.side(t.s), c.side(t.o));
        }
    }

    /// The RDF builder produces one node per distinct URI/literal and
    /// maintains invariants over arbitrary term sequences.
    #[test]
    fn rdf_builder_dedup(
        uris in proptest::collection::vec(0u8..6, 1..30),
    ) {
        let mut vocab = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut vocab);
        for (i, &u) in uris.iter().enumerate() {
            b.uul(&format!("u{u}"), "p", &format!("value {}", i % 4));
        }
        let g = b.finish();
        let distinct_subjects: std::collections::HashSet<u8> =
            uris.iter().copied().collect();
        // subjects + predicate "p" + ≤4 literal values
        let expected_min = distinct_subjects.len() + 1;
        prop_assert!(g.node_count() >= expected_min);
        prop_assert!(g.node_count() <= expected_min + 4);
    }
}

#[test]
fn triple_ordering_is_lexicographic() {
    let a = Triple::new(NodeId(0), NodeId(1), NodeId(2));
    let b = Triple::new(NodeId(0), NodeId(1), NodeId(3));
    let c = Triple::new(NodeId(1), NodeId(0), NodeId(0));
    assert!(a < b);
    assert!(b < c);
}
