//! Borrowed graph views: a [`TripleGraph`]-shaped read surface whose
//! columns may borrow from an external byte buffer instead of owning
//! copies — the model half of the zero-copy store load path.
//!
//! The fixed-width `.rdfb` layout (layout v2, `docs/FORMAT.md` §7)
//! stores the `NODE` label array and the `TRPL` subject/predicate/
//! object columns as padded little-endian fixed-width arrays. When a
//! column is 4 bytes wide and the buffer is aligned, the reader hands
//! it out as a `&[NodeId]`/`&[LabelId]` slice *borrowing the file
//! bytes* (see the cast helpers below); narrower columns are widened
//! into owned vectors — still without any varint decode. Either way
//! the result is a [`TripleGraphView`], which serves the same
//! [`OutColumns`] the refinement engine consumes from a resident
//! graph, so `info --bisim` can run straight off the buffer.
//!
//! The casts rely on two invariants, both stated at the type
//! definitions: [`NodeId`] and [`LabelId`] are `repr(transparent)`
//! over `u32`, and the reinterpretation is only offered on
//! little-endian targets (big-endian callers get `None` and fall back
//! to widening).

use crate::graph::{NodeId, OutColumns, RawPartsError, Triple, TripleGraph};
use crate::label::{LabelId, LabelKind};
use std::borrow::Cow;

/// Reinterpret little-endian bytes as a `u32` slice without copying.
///
/// Returns `None` — callers fall back to an owned widening copy — when
/// the target is big-endian, the length is not a multiple of 4, or the
/// buffer is not 4-byte aligned.
pub fn u32s_from_le_bytes(bytes: &[u8]) -> Option<&[u32]> {
    if cfg!(target_endian = "big") || !bytes.len().is_multiple_of(4) {
        return None;
    }
    // SAFETY: u32 has no invalid bit patterns, the length is a multiple
    // of the element size, and `align_to` returns a non-empty prefix or
    // suffix exactly when the buffer is misaligned — which we reject.
    #[allow(unsafe_code)]
    let (prefix, mid, suffix) = unsafe { bytes.align_to::<u32>() };
    (prefix.is_empty() && suffix.is_empty()).then_some(mid)
}

/// Reinterpret little-endian bytes as a [`NodeId`] slice without
/// copying. Same conditions as [`u32s_from_le_bytes`]; sound because
/// `NodeId` is `repr(transparent)` over `u32`.
pub fn node_ids_from_le_bytes(bytes: &[u8]) -> Option<&[NodeId]> {
    let ids = u32s_from_le_bytes(bytes)?;
    // SAFETY: NodeId is repr(transparent) over u32, so the slice types
    // have identical layout and validity.
    #[allow(unsafe_code)]
    Some(unsafe {
        std::slice::from_raw_parts(ids.as_ptr().cast::<NodeId>(), ids.len())
    })
}

/// Reinterpret little-endian bytes as a [`LabelId`] slice without
/// copying. Same conditions as [`u32s_from_le_bytes`]; sound because
/// `LabelId` is `repr(transparent)` over `u32`.
pub fn label_ids_from_le_bytes(bytes: &[u8]) -> Option<&[LabelId]> {
    let ids = u32s_from_le_bytes(bytes)?;
    // SAFETY: LabelId is repr(transparent) over u32, so the slice types
    // have identical layout and validity.
    #[allow(unsafe_code)]
    Some(unsafe {
        std::slice::from_raw_parts(ids.as_ptr().cast::<LabelId>(), ids.len())
    })
}

/// A read-only triple graph whose label and triple columns may borrow
/// from an external buffer (a mapped or owned store image) instead of
/// owning copies.
///
/// Compared to a resident [`TripleGraph`] the view keeps no
/// `Vec<Triple>` and no `(p, o)` pair array: the columns *are* the
/// adjacency, and the only always-owned pieces are the `n + 1` CSR
/// offsets (rebuilt in one counting pass over the subject column) and
/// the per-node kind array. [`TripleGraphView::out_columns`] serves
/// the refinement engine without further copying.
#[derive(Debug)]
pub struct TripleGraphView<'a> {
    labels: Cow<'a, [LabelId]>,
    kinds: Vec<LabelKind>,
    offsets: Vec<u32>,
    subjects: Cow<'a, [NodeId]>,
    preds: Cow<'a, [NodeId]>,
    objs: Cow<'a, [NodeId]>,
}

impl<'a> TripleGraphView<'a> {
    /// Assemble a view from per-node labels/kinds and the three triple
    /// columns of a store, validating exactly what
    /// [`TripleGraph::from_raw_parts`] would: equal column lengths,
    /// node ids in range, and the `(s, p, o)` sequence strictly
    /// ascending (sorted *and* duplicate-free — the on-disk contract).
    pub fn from_sorted_columns(
        labels: Cow<'a, [LabelId]>,
        kinds: Vec<LabelKind>,
        subjects: Cow<'a, [NodeId]>,
        preds: Cow<'a, [NodeId]>,
        objs: Cow<'a, [NodeId]>,
    ) -> Result<TripleGraphView<'a>, ViewError> {
        if labels.len() != kinds.len() {
            return Err(ViewError::Raw(RawPartsError::LengthMismatch {
                labels: labels.len(),
                kinds: kinds.len(),
            }));
        }
        let e = subjects.len();
        if preds.len() != e || objs.len() != e {
            return Err(ViewError::ColumnLengthMismatch {
                subjects: e,
                preds: preds.len(),
                objs: objs.len(),
            });
        }
        let n = labels.len() as u32;
        for j in 0..e {
            for node in [subjects[j], preds[j], objs[j]] {
                if node.0 >= n {
                    return Err(ViewError::Raw(
                        RawPartsError::NodeOutOfRange {
                            node: node.0,
                            nodes: n,
                        },
                    ));
                }
            }
            if j > 0 {
                let prev = (subjects[j - 1], preds[j - 1], objs[j - 1]);
                let cur = (subjects[j], preds[j], objs[j]);
                if prev >= cur {
                    return Err(ViewError::Unsorted { at: j });
                }
            }
        }
        let mut offsets = vec![0u32; labels.len() + 1];
        for &s in subjects.iter() {
            offsets[s.index() + 1] += 1;
        }
        for i in 0..labels.len() {
            offsets[i + 1] += offsets[i];
        }
        Ok(TripleGraphView {
            labels,
            kinds,
            offsets,
            subjects,
            preds,
            objs,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of triples.
    #[inline]
    pub fn triple_count(&self) -> usize {
        self.subjects.len()
    }

    /// The per-node label array (index = node id).
    #[inline]
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// The per-node label-kind array (index = node id).
    #[inline]
    pub fn kinds(&self) -> &[LabelKind] {
        &self.kinds
    }

    /// The subject column, indexed by triple.
    #[inline]
    pub fn subjects(&self) -> &[NodeId] {
        &self.subjects
    }

    /// The predicate column, indexed by triple.
    #[inline]
    pub fn preds(&self) -> &[NodeId] {
        &self.preds
    }

    /// The object column, indexed by triple.
    #[inline]
    pub fn objs(&self) -> &[NodeId] {
        &self.objs
    }

    /// Triple `j` of the sorted sequence.
    #[inline]
    pub fn triple(&self, j: usize) -> Triple {
        Triple::new(self.subjects[j], self.preds[j], self.objs[j])
    }

    /// Whether every triple column (subjects, predicates, objects)
    /// borrows from the external buffer — true exactly when the store
    /// columns were 4 bytes wide and aligned on a little-endian target.
    pub fn columns_borrowed(&self) -> bool {
        matches!(self.subjects, Cow::Borrowed(_))
            && matches!(self.preds, Cow::Borrowed(_))
            && matches!(self.objs, Cow::Borrowed(_))
    }

    /// The grouped-CSR outbound view the refinement engine consumes.
    /// Predicate/object columns are handed through without copying
    /// (the triple sort order groups each subject's edges contiguously
    /// and sorted — exactly the [`TripleGraph::out_columns`] layout).
    pub fn out_columns(&self) -> OutColumns<'_> {
        OutColumns::from_parts(
            Cow::Borrowed(self.offsets.as_slice()),
            Cow::Borrowed(&*self.preds),
            Cow::Borrowed(&*self.objs),
        )
        .expect("view CSR validated on construction")
    }

    /// Heap bytes the view keeps resident (owned columns, kinds and
    /// offsets; borrowed columns cost nothing here) — the bytes the
    /// zero-copy path saves show up as the gap between this and
    /// [`TripleGraphView::to_graph`]'s materialisation.
    pub fn resident_bytes(&self) -> usize {
        #[allow(clippy::ptr_arg)]
        fn cow_bytes<T: Clone>(c: &Cow<'_, [T]>) -> usize {
            match c {
                Cow::Borrowed(_) => 0,
                Cow::Owned(v) => std::mem::size_of::<T>() * v.len(),
            }
        }
        cow_bytes(&self.labels)
            + self.kinds.len()
            + 4 * self.offsets.len()
            + cow_bytes(&self.subjects)
            + cow_bytes(&self.preds)
            + cow_bytes(&self.objs)
    }

    /// Materialise a resident [`TripleGraph`] — bit-identical to
    /// loading the same store through the owned decode path.
    pub fn to_graph(&self) -> TripleGraph {
        let triples: Vec<Triple> =
            (0..self.triple_count()).map(|j| self.triple(j)).collect();
        TripleGraph::from_raw_parts(
            self.labels.to_vec(),
            self.kinds.clone(),
            triples,
        )
        .expect("view columns validated on construction")
    }
}

/// Inconsistency detected by [`TripleGraphView::from_sorted_columns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewError {
    /// A violation [`TripleGraph::from_raw_parts`] also detects.
    Raw(RawPartsError),
    /// The three triple columns have different lengths.
    ColumnLengthMismatch {
        /// Length of the subject column.
        subjects: usize,
        /// Length of the predicate column.
        preds: usize,
        /// Length of the object column.
        objs: usize,
    },
    /// The `(s, p, o)` sequence is not strictly ascending at index
    /// `at` (unsorted or duplicate triples).
    Unsorted {
        /// First triple index violating the order.
        at: usize,
    },
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::Raw(e) => e.fmt(f),
            ViewError::ColumnLengthMismatch {
                subjects,
                preds,
                objs,
            } => write!(
                f,
                "triple columns disagree: {subjects} subjects, \
                 {preds} predicates, {objs} objects"
            ),
            ViewError::Unsorted { at } => write!(
                f,
                "triple columns not strictly ascending at triple {at}"
            ),
        }
    }
}

impl std::error::Error for ViewError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::label::Vocab;

    fn sample() -> TripleGraph {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..9)
            .map(|i| b.add_node(v.uri(&format!("n{i}")), &v))
            .collect();
        for i in 0..9usize {
            for j in 0..9usize {
                if (i * 5 + j) % 3 == 0 && i != j {
                    b.add_triple(nodes[i], nodes[(i + j) % 9], nodes[j]);
                }
            }
        }
        b.freeze()
    }

    fn view_of(g: &TripleGraph) -> TripleGraphView<'static> {
        let (s, p, o): (Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) = (
            g.triples().iter().map(|t| t.s).collect(),
            g.triples().iter().map(|t| t.p).collect(),
            g.triples().iter().map(|t| t.o).collect(),
        );
        TripleGraphView::from_sorted_columns(
            Cow::Owned(g.labels_raw().to_vec()),
            g.kinds_raw().to_vec(),
            Cow::Owned(s),
            Cow::Owned(p),
            Cow::Owned(o),
        )
        .unwrap()
    }

    #[test]
    fn cast_helpers_round_trip_and_reject_misalignment() {
        let vals: Vec<u32> =
            (0..16u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        if cfg!(target_endian = "little") {
            // The Vec<u8> may or may not be 4-aligned; copy into an
            // aligned backing to make the positive case deterministic.
            let mut aligned = vec![0u64; bytes.len() / 8];
            let dst: &mut [u8] = {
                let n = bytes.len();
                // SAFETY: u8 view of initialised u64 storage, same span.
                #[allow(unsafe_code)]
                unsafe {
                    std::slice::from_raw_parts_mut(
                        aligned.as_mut_ptr().cast::<u8>(),
                        n,
                    )
                }
            };
            dst.copy_from_slice(&bytes);
            assert_eq!(u32s_from_le_bytes(dst).unwrap(), vals.as_slice());
            let n: &[NodeId] = node_ids_from_le_bytes(dst).unwrap();
            assert_eq!(n[3], NodeId(vals[3]));
            let l: &[LabelId] = label_ids_from_le_bytes(dst).unwrap();
            assert_eq!(l[5], LabelId(vals[5]));
            // Off-by-one start is misaligned: must refuse, not skew.
            assert!(u32s_from_le_bytes(&dst[1..5]).is_none());
        }
        // A non-multiple-of-4 length is always refused.
        assert!(u32s_from_le_bytes(&bytes[..6]).is_none());
    }

    #[test]
    fn view_serves_graph_identical_columns() {
        let g = sample();
        let v = view_of(&g);
        assert_eq!(v.node_count(), g.node_count());
        assert_eq!(v.triple_count(), g.triple_count());
        assert_eq!(v.labels(), g.labels_raw());
        assert_eq!(v.kinds(), g.kinds_raw());
        for (j, t) in g.triples().iter().enumerate() {
            assert_eq!(v.triple(j), *t);
        }
        // The CSR view agrees edge for edge with the resident graph's.
        let vc = v.out_columns();
        let gc = g.out_columns();
        assert_eq!(vc.offsets(), gc.offsets());
        assert_eq!(vc.preds(), gc.preds());
        assert_eq!(vc.objs(), gc.objs());
        assert!(vc.is_fully_borrowed());
        assert!(!gc.is_fully_borrowed());
        // Materialisation rebuilds the identical graph.
        let g2 = v.to_graph();
        assert_eq!(g2.triples(), g.triples());
        assert_eq!(g2.labels_raw(), g.labels_raw());
        assert!(v.resident_bytes() > 0);
    }

    #[test]
    fn view_rejects_malformed_columns() {
        let g = sample();
        // Unsorted (first and last subject swapped breaks the order).
        let mut s: Vec<NodeId> = g.triples().iter().map(|t| t.s).collect();
        let p: Vec<NodeId> = g.triples().iter().map(|t| t.p).collect();
        let o: Vec<NodeId> = g.triples().iter().map(|t| t.o).collect();
        let last = s.len() - 1;
        s.swap(0, last);
        let err = TripleGraphView::from_sorted_columns(
            Cow::Owned(g.labels_raw().to_vec()),
            g.kinds_raw().to_vec(),
            Cow::Owned(s.clone()),
            Cow::Owned(p.clone()),
            Cow::Owned(o.clone()),
        );
        assert!(matches!(
            err,
            Err(ViewError::Unsorted { .. }) | Err(ViewError::Raw(_))
        ));
        // Length mismatch.
        let err = TripleGraphView::from_sorted_columns(
            Cow::Owned(g.labels_raw().to_vec()),
            g.kinds_raw().to_vec(),
            Cow::Owned(vec![NodeId(0)]),
            Cow::Owned(p.clone()),
            Cow::Owned(o.clone()),
        );
        assert!(matches!(
            err,
            Err(ViewError::ColumnLengthMismatch { .. })
        ));
        // Out-of-range node id.
        let err = TripleGraphView::from_sorted_columns(
            Cow::Owned(g.labels_raw().to_vec()),
            g.kinds_raw().to_vec(),
            Cow::Owned(vec![NodeId(u32::MAX)]),
            Cow::Owned(vec![NodeId(0)]),
            Cow::Owned(vec![NodeId(0)]),
        );
        assert!(matches!(
            err,
            Err(ViewError::Raw(RawPartsError::NodeOutOfRange { .. }))
        ));
    }

    #[test]
    fn empty_view() {
        let v = TripleGraphView::from_sorted_columns(
            Cow::Owned(Vec::new()),
            Vec::new(),
            Cow::Owned(Vec::new()),
            Cow::Owned(Vec::new()),
            Cow::Owned(Vec::new()),
        )
        .unwrap();
        assert_eq!(v.node_count(), 0);
        assert_eq!(v.triple_count(), 0);
        assert!(v.out_columns().is_empty());
        assert_eq!(v.to_graph().triple_count(), 0);
    }
}
