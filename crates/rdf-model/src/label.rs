//! Node labels and the label vocabulary.
//!
//! Section 2.1 of the paper: the label set is `I = U ∪ L ∪ {⊥b}` where `U`
//! are URI labels, `L` literal values, and `⊥b` a single special value
//! shared by all blank nodes. Labels are interned into dense [`LabelId`]s so
//! that label equality — the basis of the trivial alignment — is an integer
//! comparison, and so that two graph versions built against the same
//! [`Vocab`] can be combined without string comparisons.

use crate::hash::FxHashMap;
use std::fmt;

/// The three syntactic categories of RDF node labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelKind {
    /// A URI reference (also used for predicates).
    Uri,
    /// A literal value; in this model the lexical form, datatype and
    /// language tag are folded into one interned string.
    Literal,
    /// The unique blank label `⊥b`.
    Blank,
}

/// Dense identifier of an interned label. `LabelId::BLANK` (= 0) is the
/// shared blank label; all other ids denote URIs or literals.
///
/// `repr(transparent)` over `u32` is a guarantee, not an accident: the
/// zero-copy store readers ([`crate::view`]) reinterpret aligned
/// little-endian byte columns as `&[LabelId]` without a decode pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The single blank label `⊥b`. Every vocabulary reserves id 0 for it.
    pub const BLANK: LabelId = LabelId(0);

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the blank label.
    #[inline]
    pub fn is_blank(self) -> bool {
        self == Self::BLANK
    }
}

/// A borrowed view of a resolved label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelRef<'a> {
    /// URI label with its text.
    Uri(&'a str),
    /// Literal label with its lexical text.
    Literal(&'a str),
    /// The blank label.
    Blank,
}

impl<'a> LabelRef<'a> {
    /// The syntactic category of this label.
    pub fn kind(&self) -> LabelKind {
        match self {
            LabelRef::Uri(_) => LabelKind::Uri,
            LabelRef::Literal(_) => LabelKind::Literal,
            LabelRef::Blank => LabelKind::Blank,
        }
    }

    /// The label text; blank labels have none.
    pub fn text(&self) -> Option<&'a str> {
        match self {
            LabelRef::Uri(s) | LabelRef::Literal(s) => Some(s),
            LabelRef::Blank => None,
        }
    }
}

impl fmt::Display for LabelRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelRef::Uri(s) => write!(f, "{s}"),
            LabelRef::Literal(s) => write!(f, "{s:?}"),
            LabelRef::Blank => write!(f, "_:b"),
        }
    }
}

/// Interning vocabulary shared by all graph versions under alignment.
///
/// URIs and literals live in disjoint namespaces (per §2.1, `U` and `L`
/// are disjoint), so the URI `"x"` and the literal `"x"` receive distinct
/// ids. Interning is append-only; ids are stable for the life of the vocab.
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    kinds: Vec<LabelKind>,
    texts: Vec<String>,
    uri_map: FxHashMap<String, LabelId>,
    literal_map: FxHashMap<String, LabelId>,
}

impl Vocab {
    /// Create a vocabulary containing only the blank label.
    pub fn new() -> Self {
        let mut v = Vocab {
            kinds: Vec::new(),
            texts: Vec::new(),
            uri_map: FxHashMap::default(),
            literal_map: FxHashMap::default(),
        };
        // Reserve id 0 for the blank label.
        v.kinds.push(LabelKind::Blank);
        v.texts.push(String::new());
        v
    }

    /// Number of interned labels, including the blank label.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the vocabulary holds only the blank label.
    pub fn is_empty(&self) -> bool {
        self.kinds.len() <= 1
    }

    /// Intern a URI label.
    pub fn uri(&mut self, text: &str) -> LabelId {
        if let Some(&id) = self.uri_map.get(text) {
            return id;
        }
        let id = LabelId(self.kinds.len() as u32);
        self.kinds.push(LabelKind::Uri);
        self.texts.push(text.to_owned());
        self.uri_map.insert(text.to_owned(), id);
        id
    }

    /// Intern a literal label.
    pub fn literal(&mut self, text: &str) -> LabelId {
        if let Some(&id) = self.literal_map.get(text) {
            return id;
        }
        let id = LabelId(self.kinds.len() as u32);
        self.kinds.push(LabelKind::Literal);
        self.texts.push(text.to_owned());
        self.literal_map.insert(text.to_owned(), id);
        id
    }

    /// Look up an already-interned URI without interning.
    pub fn find_uri(&self, text: &str) -> Option<LabelId> {
        self.uri_map.get(text).copied()
    }

    /// Look up an already-interned literal without interning.
    pub fn find_literal(&self, text: &str) -> Option<LabelId> {
        self.literal_map.get(text).copied()
    }

    /// The syntactic category of a label.
    #[inline]
    pub fn kind(&self, id: LabelId) -> LabelKind {
        self.kinds[id.index()]
    }

    /// Resolve an id to a borrowed label view.
    #[inline]
    pub fn resolve(&self, id: LabelId) -> LabelRef<'_> {
        match self.kinds[id.index()] {
            LabelKind::Uri => LabelRef::Uri(&self.texts[id.index()]),
            LabelKind::Literal => LabelRef::Literal(&self.texts[id.index()]),
            LabelKind::Blank => LabelRef::Blank,
        }
    }

    /// The raw text of a label (empty for the blank label).
    #[inline]
    pub fn text(&self, id: LabelId) -> &str {
        &self.texts[id.index()]
    }

    /// Rebuild a vocabulary from parallel kind/text arrays, as read back
    /// from an on-disk dictionary.
    ///
    /// The intern maps are repopulated in one pass over the dictionary —
    /// `O(|dictionary|)` string hashes, independent of how many nodes or
    /// triples reference the labels — so a store load never hashes per
    /// triple. Entry 0 must be the blank label; URI/literal texts must be
    /// unique within their namespace (a duplicate would make ids ambiguous
    /// for later interning).
    pub fn from_raw_parts(
        kinds: Vec<LabelKind>,
        texts: Vec<String>,
    ) -> Result<Vocab, &'static str> {
        if kinds.len() != texts.len() {
            return Err("kind and text arrays differ in length");
        }
        if kinds.first() != Some(&LabelKind::Blank) {
            return Err("dictionary entry 0 must be the blank label");
        }
        let mut uri_map = FxHashMap::default();
        let mut literal_map = FxHashMap::default();
        for (i, (kind, text)) in kinds.iter().zip(&texts).enumerate() {
            let id = LabelId(i as u32);
            let clash = match kind {
                LabelKind::Blank if i == 0 => None,
                LabelKind::Blank => {
                    return Err("blank label appears after entry 0")
                }
                LabelKind::Uri => uri_map.insert(text.clone(), id),
                LabelKind::Literal => literal_map.insert(text.clone(), id),
            };
            if clash.is_some() {
                return Err("duplicate label text within a namespace");
            }
        }
        Ok(Vocab {
            kinds,
            texts,
            uri_map,
            literal_map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_is_reserved() {
        let v = Vocab::new();
        assert_eq!(v.kind(LabelId::BLANK), LabelKind::Blank);
        assert_eq!(v.resolve(LabelId::BLANK), LabelRef::Blank);
        assert!(LabelId::BLANK.is_blank());
        assert_eq!(v.len(), 1);
        assert!(v.is_empty());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.uri("http://example.org/a");
        let b = v.uri("http://example.org/a");
        assert_eq!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn uri_and_literal_namespaces_are_disjoint() {
        let mut v = Vocab::new();
        let u = v.uri("x");
        let l = v.literal("x");
        assert_ne!(u, l);
        assert_eq!(v.kind(u), LabelKind::Uri);
        assert_eq!(v.kind(l), LabelKind::Literal);
        assert_eq!(v.text(u), "x");
        assert_eq!(v.text(l), "x");
    }

    #[test]
    fn find_does_not_intern() {
        let mut v = Vocab::new();
        assert_eq!(v.find_uri("u"), None);
        let id = v.uri("u");
        assert_eq!(v.find_uri("u"), Some(id));
        assert_eq!(v.find_literal("u"), None);
    }

    #[test]
    fn resolve_round_trips() {
        let mut v = Vocab::new();
        let u = v.uri("http://e.org/x");
        let l = v.literal("A literal with spaces");
        assert_eq!(v.resolve(u), LabelRef::Uri("http://e.org/x"));
        assert_eq!(v.resolve(l), LabelRef::Literal("A literal with spaces"));
        assert_eq!(v.resolve(u).text(), Some("http://e.org/x"));
        assert_eq!(v.resolve(LabelId::BLANK).text(), None);
    }

    #[test]
    fn raw_parts_rebuild_intern_maps() {
        let mut v = Vocab::new();
        let u = v.uri("u:x");
        let l = v.literal("x");
        let kinds: Vec<LabelKind> =
            (0..v.len()).map(|i| v.kind(LabelId(i as u32))).collect();
        let texts: Vec<String> = (0..v.len())
            .map(|i| v.text(LabelId(i as u32)).to_owned())
            .collect();
        let mut v2 = Vocab::from_raw_parts(kinds, texts).unwrap();
        assert_eq!(v2.find_uri("u:x"), Some(u));
        assert_eq!(v2.find_literal("x"), Some(l));
        // Further interning continues from the rebuilt state.
        assert_eq!(v2.uri("u:x"), u);
        assert_eq!(v2.uri("u:new"), LabelId(v.len() as u32));
    }

    #[test]
    fn raw_parts_reject_bad_dictionaries() {
        assert!(Vocab::from_raw_parts(vec![LabelKind::Blank], vec![]).is_err());
        assert!(Vocab::from_raw_parts(
            vec![LabelKind::Uri],
            vec!["x".into()]
        )
        .is_err());
        assert!(Vocab::from_raw_parts(
            vec![LabelKind::Blank, LabelKind::Blank],
            vec![String::new(), String::new()]
        )
        .is_err());
        assert!(Vocab::from_raw_parts(
            vec![LabelKind::Blank, LabelKind::Uri, LabelKind::Uri],
            vec![String::new(), "dup".into(), "dup".into()]
        )
        .is_err());
    }

    #[test]
    fn display_formats() {
        let mut v = Vocab::new();
        let u = v.uri("u:x");
        let l = v.literal("lit");
        assert_eq!(format!("{}", v.resolve(u)), "u:x");
        assert_eq!(format!("{}", v.resolve(l)), "\"lit\"");
        assert_eq!(format!("{}", v.resolve(LabelId::BLANK)), "_:b");
    }
}
