//! Disjoint union `G = G1 ⊎ G2` of a source and a target version (§2.1/§3).
//!
//! Node identifiers of the two versions are made disjoint by offsetting the
//! target's ids by `|N1|`. The union remembers which side every node came
//! from, which the alignment machinery needs to decide "unaligned" status
//! (a node of one graph whose class contains no node of the opposite graph).

use crate::graph::{GraphBuilder, NodeId, TripleGraph};
use crate::label::Vocab;
use crate::rdf::RdfGraph;

/// Which version a node of the combined graph originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The source version `G1`.
    Source,
    /// The target version `G2`.
    Target,
}

impl Side {
    /// The opposite side.
    pub fn opposite(self) -> Side {
        match self {
            Side::Source => Side::Target,
            Side::Target => Side::Source,
        }
    }
}

/// The combined graph `G1 ⊎ G2` with provenance.
#[derive(Debug, Clone)]
pub struct CombinedGraph {
    graph: TripleGraph,
    /// Number of nodes contributed by the source version; nodes
    /// `0..n1` are source, `n1..` are target.
    n1: u32,
}

impl CombinedGraph {
    /// Build the disjoint union of two RDF graphs. Both must have been
    /// built against the same [`Vocab`] so that label ids agree.
    pub fn union(vocab: &Vocab, g1: &RdfGraph, g2: &RdfGraph) -> Self {
        Self::union_graphs(vocab, g1.graph(), g2.graph())
    }

    /// Disjoint union of raw triple graphs sharing a vocabulary.
    pub fn union_graphs(
        vocab: &Vocab,
        g1: &TripleGraph,
        g2: &TripleGraph,
    ) -> Self {
        let n1 = g1.node_count() as u32;
        let mut b = GraphBuilder::with_capacity(
            g1.node_count() + g2.node_count(),
            g1.triple_count() + g2.triple_count(),
        );
        for n in g1.nodes() {
            b.add_node(g1.label(n), vocab);
        }
        for n in g2.nodes() {
            b.add_node(g2.label(n), vocab);
        }
        for t in g1.triples() {
            b.add_triple(t.s, t.p, t.o);
        }
        for t in g2.triples() {
            b.add_triple(
                NodeId(t.s.0 + n1),
                NodeId(t.p.0 + n1),
                NodeId(t.o.0 + n1),
            );
        }
        CombinedGraph {
            graph: b.freeze(),
            n1,
        }
    }

    /// The combined triple graph.
    #[inline]
    pub fn graph(&self) -> &TripleGraph {
        &self.graph
    }

    /// Which version a node came from.
    #[inline]
    pub fn side(&self, n: NodeId) -> Side {
        if n.0 < self.n1 {
            Side::Source
        } else {
            Side::Target
        }
    }

    /// Number of source nodes.
    #[inline]
    pub fn source_len(&self) -> usize {
        self.n1 as usize
    }

    /// Number of target nodes.
    #[inline]
    pub fn target_len(&self) -> usize {
        self.graph.node_count() - self.n1 as usize
    }

    /// Iterator over source-side node ids.
    pub fn source_nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.n1).map(NodeId)
    }

    /// Iterator over target-side node ids.
    pub fn target_nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (self.n1..self.graph.node_count() as u32).map(NodeId)
    }

    /// Map a node id of `G1` into the combined graph (identity).
    #[inline]
    pub fn from_source(&self, n: NodeId) -> NodeId {
        debug_assert!(n.0 < self.n1);
        n
    }

    /// Map a node id of `G2` into the combined graph (offset by `|N1|`).
    #[inline]
    pub fn from_target(&self, n: NodeId) -> NodeId {
        NodeId(n.0 + self.n1)
    }

    /// Map a combined-graph node back to its original graph-local id.
    #[inline]
    pub fn to_local(&self, n: NodeId) -> (Side, NodeId) {
        if n.0 < self.n1 {
            (Side::Source, n)
        } else {
            (Side::Target, NodeId(n.0 - self.n1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdf::RdfGraphBuilder;

    fn two_versions() -> (Vocab, RdfGraph, RdfGraph) {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "a");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("x", "p", "b");
            b.finish()
        };
        (v, g1, g2)
    }

    #[test]
    fn union_offsets_target_ids() {
        let (v, g1, g2) = two_versions();
        let c = CombinedGraph::union(&v, &g1, &g2);
        assert_eq!(c.graph().node_count(), 6);
        assert_eq!(c.graph().triple_count(), 2);
        assert_eq!(c.source_len(), 3);
        assert_eq!(c.target_len(), 3);
        assert_eq!(c.side(NodeId(0)), Side::Source);
        assert_eq!(c.side(NodeId(3)), Side::Target);
        assert_eq!(c.to_local(NodeId(4)), (Side::Target, NodeId(1)));
        assert_eq!(c.from_target(NodeId(1)), NodeId(4));
    }

    #[test]
    fn labels_shared_across_versions() {
        let (v, g1, g2) = two_versions();
        let c = CombinedGraph::union(&v, &g1, &g2);
        // "x" in both versions has the same label id, different node ids.
        let x1 = NodeId(0);
        let x2 = c.from_target(NodeId(0));
        assert_ne!(x1, x2);
        assert_eq!(c.graph().label(x1), c.graph().label(x2));
        // "a" and "b" differ.
        let a = NodeId(2);
        let b = c.from_target(NodeId(2));
        assert_ne!(c.graph().label(a), c.graph().label(b));
    }

    #[test]
    fn triples_preserved_per_side() {
        let (v, g1, g2) = two_versions();
        let c = CombinedGraph::union(&v, &g1, &g2);
        // x --p--> "a" on source side.
        assert!(c.graph().has_triple(NodeId(0), NodeId(1), NodeId(2)));
        // x --p--> "b" on target side (offset by 3).
        assert!(c.graph().has_triple(NodeId(3), NodeId(4), NodeId(5)));
        // No cross-side triples.
        assert!(!c.graph().has_triple(NodeId(0), NodeId(1), NodeId(5)));
    }

    #[test]
    fn opposite_side() {
        assert_eq!(Side::Source.opposite(), Side::Target);
        assert_eq!(Side::Target.opposite(), Side::Source);
    }

    #[test]
    fn self_union() {
        let (v, g1, _) = two_versions();
        let c = CombinedGraph::union(&v, &g1, &g1);
        assert_eq!(c.source_len(), c.target_len());
        assert_eq!(c.graph().triple_count(), 2);
    }
}
