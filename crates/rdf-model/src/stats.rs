//! Per-version graph statistics, as reported in Figures 9 and 12.

use crate::graph::TripleGraph;
use crate::label::LabelKind;

/// Node/edge counts of one graph version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphStats {
    /// Total node count.
    pub nodes: usize,
    /// Nodes labelled with URIs.
    pub uris: usize,
    /// Nodes labelled with literals.
    pub literals: usize,
    /// Blank nodes.
    pub blanks: usize,
    /// Number of (distinct) triples.
    pub edges: usize,
}

impl GraphStats {
    /// Compute statistics for a graph.
    pub fn of(g: &TripleGraph) -> Self {
        let mut s = GraphStats {
            nodes: g.node_count(),
            edges: g.triple_count(),
            ..Default::default()
        };
        for n in g.nodes() {
            match g.kind(n) {
                LabelKind::Uri => s.uris += 1,
                LabelKind::Literal => s.literals += 1,
                LabelKind::Blank => s.blanks += 1,
            }
        }
        s
    }

    /// Fraction of nodes that are literals (the paper reports >75 % for
    /// EFO).
    pub fn literal_fraction(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.literals as f64 / self.nodes as f64
        }
    }

    /// Fraction of nodes that are blank.
    pub fn blank_fraction(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.blanks as f64 / self.nodes as f64
        }
    }

    /// Fraction of nodes that are URIs.
    pub fn uri_fraction(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.uris as f64 / self.nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Vocab;
    use crate::rdf::RdfGraphBuilder;

    #[test]
    fn counts_by_kind() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        b.uub("x", "p", "b1");
        b.bul("b1", "q", "lit1");
        b.bul("b1", "q2", "lit2");
        let g = b.finish();
        let s = GraphStats::of(g.graph());
        assert_eq!(s.nodes, 7); // x, p, b1, q, lit1, q2, lit2
        assert_eq!(s.uris, 4);
        assert_eq!(s.blanks, 1);
        assert_eq!(s.literals, 2);
        assert_eq!(s.edges, 3);
    }

    #[test]
    fn fractions() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        b.uul("x", "p", "a");
        b.uul("x", "p", "b");
        let g = b.finish();
        let s = GraphStats::of(g.graph());
        assert_eq!(s.nodes, 4);
        assert!((s.literal_fraction() - 0.5).abs() < 1e-12);
        assert!((s.uri_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.blank_fraction(), 0.0);
    }

    #[test]
    fn empty_graph_fractions_are_zero() {
        let s = GraphStats::default();
        assert_eq!(s.literal_fraction(), 0.0);
        assert_eq!(s.uri_fraction(), 0.0);
        assert_eq!(s.blank_fraction(), 0.0);
    }
}
