//! Ground-truth correspondences between two graph versions.
//!
//! The GtoPdb experiment (§5.2) derives a precise alignment from persistent
//! primary keys: every node of one version corresponds to *at most one*
//! node of the other. This module is the carrier type for such truths,
//! produced by the data generators and consumed by the precision metrics.

use crate::graph::NodeId;
use crate::hash::FxHashMap;

/// A (partial) one-to-one correspondence between source and target nodes,
/// in graph-local node ids.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    pairs: Vec<(NodeId, NodeId)>,
    by_source: FxHashMap<NodeId, NodeId>,
    by_target: FxHashMap<NodeId, NodeId>,
}

impl GroundTruth {
    /// Empty truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pairs; panics on duplicate source or target entries
    /// (the truth must be one-to-one).
    pub fn from_pairs(pairs: Vec<(NodeId, NodeId)>) -> Self {
        let mut by_source = FxHashMap::default();
        let mut by_target = FxHashMap::default();
        for &(s, t) in &pairs {
            assert!(
                by_source.insert(s, t).is_none(),
                "duplicate source node {s} in ground truth"
            );
            assert!(
                by_target.insert(t, s).is_none(),
                "duplicate target node {t} in ground truth"
            );
        }
        GroundTruth {
            pairs,
            by_source,
            by_target,
        }
    }

    /// Record a correspondence.
    pub fn insert(&mut self, source: NodeId, target: NodeId) {
        assert!(
            self.by_source.insert(source, target).is_none(),
            "duplicate source node {source} in ground truth"
        );
        assert!(
            self.by_target.insert(target, source).is_none(),
            "duplicate target node {target} in ground truth"
        );
        self.pairs.push((source, target));
    }

    /// All pairs, in insertion order.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of matched entities.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the truth is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The target matched to a source node, if any.
    pub fn target_of(&self, source: NodeId) -> Option<NodeId> {
        self.by_source.get(&source).copied()
    }

    /// The source matched to a target node, if any.
    pub fn source_of(&self, target: NodeId) -> Option<NodeId> {
        self.by_target.get(&target).copied()
    }

    /// Whether the pair is in the truth.
    pub fn contains(&self, source: NodeId, target: NodeId) -> bool {
        self.target_of(source) == Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_both_directions() {
        let gt = GroundTruth::from_pairs(vec![
            (NodeId(0), NodeId(10)),
            (NodeId(1), NodeId(11)),
        ]);
        assert_eq!(gt.len(), 2);
        assert_eq!(gt.target_of(NodeId(0)), Some(NodeId(10)));
        assert_eq!(gt.source_of(NodeId(11)), Some(NodeId(1)));
        assert_eq!(gt.target_of(NodeId(5)), None);
        assert!(gt.contains(NodeId(0), NodeId(10)));
        assert!(!gt.contains(NodeId(0), NodeId(11)));
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn duplicate_source_panics() {
        GroundTruth::from_pairs(vec![
            (NodeId(0), NodeId(10)),
            (NodeId(0), NodeId(11)),
        ]);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_target_panics() {
        let mut gt = GroundTruth::new();
        gt.insert(NodeId(0), NodeId(10));
        gt.insert(NodeId(1), NodeId(10));
    }

    #[test]
    fn empty() {
        let gt = GroundTruth::new();
        assert!(gt.is_empty());
        assert_eq!(gt.pairs(), &[]);
    }
}
