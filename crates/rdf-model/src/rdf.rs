//! RDF graphs: triple graphs satisfying the RDF conventions of §2.1.
//!
//! An RDF graph is a triple graph in which
//! * no two nodes carry the same URI or literal label,
//! * literal labels occur only in object position, and
//! * predicates are never blank.
//!
//! [`RdfGraphBuilder`] offers the familiar term-level API (URIs, literals,
//! locally named blank nodes) and enforces those invariants, producing an
//! [`RdfGraph`] that owns the underlying [`TripleGraph`].

use crate::graph::{GraphBuilder, NodeId, TripleGraph};
use crate::hash::FxHashMap;
use crate::label::{LabelId, LabelKind, Vocab};
use std::fmt;

/// A term as written in RDF source: the builder-facing view of a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// URI reference.
    Uri(String),
    /// Literal value.
    Literal(String),
    /// Blank node with a document-local name (e.g. `_:b1`). The name
    /// scopes node identity inside one graph only and is *not* a label.
    Blank(String),
}

impl Term {
    /// Convenience constructor for URI terms.
    pub fn uri(s: impl Into<String>) -> Self {
        Term::Uri(s.into())
    }

    /// Convenience constructor for literal terms.
    pub fn literal(s: impl Into<String>) -> Self {
        Term::Literal(s.into())
    }

    /// Convenience constructor for blank terms.
    pub fn blank(s: impl Into<String>) -> Self {
        Term::Blank(s.into())
    }
}

/// Errors raised when a triple violates the RDF conventions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A literal was used as subject.
    LiteralSubject(String),
    /// A literal was used as predicate.
    LiteralPredicate(String),
    /// A blank node was used as predicate.
    BlankPredicate(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::LiteralSubject(l) => {
                write!(f, "literal {l:?} used in subject position")
            }
            RdfError::LiteralPredicate(l) => {
                write!(f, "literal {l:?} used in predicate position")
            }
            RdfError::BlankPredicate(b) => {
                write!(f, "blank node _:{b} used in predicate position")
            }
        }
    }
}

impl std::error::Error for RdfError {}

/// An immutable RDF graph (one *version* in the alignment problem).
#[derive(Debug, Clone)]
pub struct RdfGraph {
    graph: TripleGraph,
    /// Local blank-node names, parallel to the blank nodes of the graph,
    /// kept for round-tripping and debugging (blank names are not labels).
    blank_names: FxHashMap<NodeId, String>,
}

impl RdfGraph {
    /// Assemble an RDF graph from an already-built triple graph and its
    /// blank-node names (deserialisation path; the builder invariants are
    /// assumed to have held when the graph was first built).
    pub fn from_raw_parts(
        graph: TripleGraph,
        blank_names: FxHashMap<NodeId, String>,
    ) -> Self {
        RdfGraph { graph, blank_names }
    }

    /// All recorded blank-node names, keyed by node id.
    pub fn blank_names(&self) -> &FxHashMap<NodeId, String> {
        &self.blank_names
    }

    /// The underlying triple graph.
    #[inline]
    pub fn graph(&self) -> &TripleGraph {
        &self.graph
    }

    /// The document-local name of a blank node, if it was built with one.
    pub fn blank_name(&self, n: NodeId) -> Option<&str> {
        self.blank_names.get(&n).map(String::as_str)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of triples.
    pub fn triple_count(&self) -> usize {
        self.graph.triple_count()
    }
}

/// Re-express `graph`'s labels in `vocab`, interning each distinct label
/// of `from` at most once — `O(|dictionary|)` string work, nothing per
/// node or per triple.
///
/// This is how a graph deserialised against its own store dictionary
/// joins a shared session vocabulary (the alignment pipeline requires
/// both versions to share one [`Vocab`]). Node ids, triples and blank
/// names are preserved verbatim; only label ids are rewritten.
pub fn rebase_into(
    vocab: &mut Vocab,
    from: &Vocab,
    graph: &RdfGraph,
) -> RdfGraph {
    let mut map = vec![LabelId::BLANK; from.len()];
    for (i, slot) in map.iter_mut().enumerate() {
        let id = LabelId(i as u32);
        *slot = match from.kind(id) {
            LabelKind::Blank => LabelId::BLANK,
            LabelKind::Uri => vocab.uri(from.text(id)),
            LabelKind::Literal => vocab.literal(from.text(id)),
        };
    }
    let labels: Vec<LabelId> = graph
        .graph()
        .labels_raw()
        .iter()
        .map(|l| map[l.index()])
        .collect();
    let rebased = TripleGraph::from_raw_parts(
        labels,
        graph.graph().kinds_raw().to_vec(),
        graph.graph().triples().to_vec(),
    )
    .expect("rebased graph preserves structure");
    RdfGraph::from_raw_parts(rebased, graph.blank_names().clone())
}

/// Builder enforcing RDF invariants; terms are deduplicated so that each
/// URI/literal label yields exactly one node.
pub struct RdfGraphBuilder<'v> {
    vocab: &'v mut Vocab,
    builder: GraphBuilder,
    by_label: FxHashMap<LabelId, NodeId>,
    by_blank_name: FxHashMap<String, NodeId>,
    blank_names: FxHashMap<NodeId, String>,
}

impl<'v> RdfGraphBuilder<'v> {
    /// New builder interning into (and sharing) `vocab`.
    pub fn new(vocab: &'v mut Vocab) -> Self {
        RdfGraphBuilder {
            vocab,
            builder: GraphBuilder::new(),
            by_label: FxHashMap::default(),
            by_blank_name: FxHashMap::default(),
            blank_names: FxHashMap::default(),
        }
    }

    /// Node for a URI, reusing an existing node with the same label.
    pub fn uri_node(&mut self, text: &str) -> NodeId {
        let label = self.vocab.uri(text);
        if let Some(&n) = self.by_label.get(&label) {
            return n;
        }
        let n = self.builder.add_node(label, self.vocab);
        self.by_label.insert(label, n);
        n
    }

    /// Node for a literal, reusing an existing node with the same label.
    pub fn literal_node(&mut self, text: &str) -> NodeId {
        let label = self.vocab.literal(text);
        if let Some(&n) = self.by_label.get(&label) {
            return n;
        }
        let n = self.builder.add_node(label, self.vocab);
        self.by_label.insert(label, n);
        n
    }

    /// Node for a locally named blank node; the same name maps to the same
    /// node within this builder.
    pub fn blank_node(&mut self, name: &str) -> NodeId {
        if let Some(&n) = self.by_blank_name.get(name) {
            return n;
        }
        let n = self.builder.add_node(LabelId::BLANK, self.vocab);
        self.by_blank_name.insert(name.to_owned(), n);
        self.blank_names.insert(n, name.to_owned());
        n
    }

    /// A fresh anonymous blank node (never merged with any other).
    pub fn fresh_blank(&mut self) -> NodeId {
        self.builder.add_node(LabelId::BLANK, self.vocab)
    }

    /// Resolve a [`Term`] to a node id, interning as necessary.
    pub fn term_node(&mut self, term: &Term) -> NodeId {
        match term {
            Term::Uri(u) => self.uri_node(u),
            Term::Literal(l) => self.literal_node(l),
            Term::Blank(b) => self.blank_node(b),
        }
    }

    /// Add a triple of already-resolved node ids, checking invariants.
    pub fn add_triple_ids(
        &mut self,
        s: NodeId,
        p: NodeId,
        o: NodeId,
    ) -> Result<(), RdfError> {
        use LabelKind::*;
        if self.kind_of(s) == Literal {
            return Err(RdfError::LiteralSubject(self.describe(s)));
        }
        match self.kind_of(p) {
            Literal => {
                return Err(RdfError::LiteralPredicate(self.describe(p)));
            }
            Blank => {
                return Err(RdfError::BlankPredicate(self.describe(p)));
            }
            Uri => {}
        }
        self.builder.add_triple(s, p, o);
        Ok(())
    }

    /// Add a triple of terms, interning as necessary and checking
    /// invariants.
    pub fn add_triple(
        &mut self,
        s: &Term,
        p: &Term,
        o: &Term,
    ) -> Result<(), RdfError> {
        // Validate before interning nodes so a rejected triple does not
        // leave orphan nodes behind.
        if let Term::Literal(l) = s { return Err(RdfError::LiteralSubject(l.clone())) }
        match p {
            Term::Literal(l) => {
                return Err(RdfError::LiteralPredicate(l.clone()))
            }
            Term::Blank(b) => return Err(RdfError::BlankPredicate(b.clone())),
            Term::Uri(_) => {}
        }
        let s = self.term_node(s);
        let p = self.term_node(p);
        let o = self.term_node(o);
        self.builder.add_triple(s, p, o);
        Ok(())
    }

    /// Shorthand: add `(uri, uri, uri)`.
    pub fn uuu(&mut self, s: &str, p: &str, o: &str) {
        let s = self.uri_node(s);
        let p = self.uri_node(p);
        let o = self.uri_node(o);
        self.builder.add_triple(s, p, o);
    }

    /// Shorthand: add `(uri, uri, literal)`.
    pub fn uul(&mut self, s: &str, p: &str, o: &str) {
        let s = self.uri_node(s);
        let p = self.uri_node(p);
        let o = self.literal_node(o);
        self.builder.add_triple(s, p, o);
    }

    /// Shorthand: add `(uri, uri, blank)`.
    pub fn uub(&mut self, s: &str, p: &str, o: &str) {
        let s = self.uri_node(s);
        let p = self.uri_node(p);
        let o = self.blank_node(o);
        self.builder.add_triple(s, p, o);
    }

    /// Shorthand: add `(blank, uri, literal)`.
    pub fn bul(&mut self, s: &str, p: &str, o: &str) {
        let s = self.blank_node(s);
        let p = self.uri_node(p);
        let o = self.literal_node(o);
        self.builder.add_triple(s, p, o);
    }

    /// Shorthand: add `(blank, uri, uri)`.
    pub fn buu(&mut self, s: &str, p: &str, o: &str) {
        let s = self.blank_node(s);
        let p = self.uri_node(p);
        let o = self.uri_node(o);
        self.builder.add_triple(s, p, o);
    }

    /// Shorthand: add `(blank, uri, blank)`.
    pub fn bub(&mut self, s: &str, p: &str, o: &str) {
        let s = self.blank_node(s);
        let p = self.uri_node(p);
        let o = self.blank_node(o);
        self.builder.add_triple(s, p, o);
    }

    fn kind_of(&self, n: NodeId) -> LabelKind {
        self.builder.kind(n)
    }

    fn describe(&self, n: NodeId) -> String {
        if let Some(name) = self.blank_names.get(&n) {
            return name.clone();
        }
        self.vocab.text(self.builder.label(n)).to_owned()
    }

    /// Freeze into an [`RdfGraph`].
    pub fn finish(self) -> RdfGraph {
        RdfGraph {
            graph: self.builder.freeze(),
            blank_names: self.blank_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_deduplicate() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        let n1 = b.uri_node("x");
        let n2 = b.uri_node("x");
        assert_eq!(n1, n2);
        let l1 = b.literal_node("a");
        let l2 = b.literal_node("a");
        assert_eq!(l1, l2);
        let bl1 = b.blank_node("b1");
        let bl2 = b.blank_node("b1");
        let bl3 = b.blank_node("b2");
        assert_eq!(bl1, bl2);
        assert_ne!(bl1, bl3);
    }

    #[test]
    fn fresh_blanks_are_distinct() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        let x = b.fresh_blank();
        let y = b.fresh_blank();
        assert_ne!(x, y);
    }

    #[test]
    fn literal_subject_rejected() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        let err = b
            .add_triple(&Term::literal("x"), &Term::uri("p"), &Term::uri("y"))
            .unwrap_err();
        assert_eq!(err, RdfError::LiteralSubject("x".into()));
    }

    #[test]
    fn blank_predicate_rejected() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        let err = b
            .add_triple(&Term::uri("x"), &Term::blank("p"), &Term::uri("y"))
            .unwrap_err();
        assert_eq!(err, RdfError::BlankPredicate("p".into()));
    }

    #[test]
    fn literal_predicate_rejected() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        let err = b
            .add_triple(&Term::uri("x"), &Term::literal("p"), &Term::uri("y"))
            .unwrap_err();
        assert_eq!(err, RdfError::LiteralPredicate("p".into()));
    }

    #[test]
    fn rejected_triple_leaves_no_orphan_nodes() {
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        b.add_triple(&Term::uri("s"), &Term::blank("p"), &Term::uri("o"))
            .unwrap_err();
        let g = b.finish();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn rebase_preserves_structure_and_shares_labels() {
        // Build a graph against its own vocab (as a store load does)…
        let mut own = Vocab::new();
        let g = {
            let mut b = RdfGraphBuilder::new(&mut own);
            b.uub("ss", "address", "b1");
            b.bul("b1", "zip", "EH8");
            b.finish()
        };
        // …then rebase it into a session vocab that already holds some
        // of the labels at different ids.
        let mut session = Vocab::new();
        session.uri("unrelated");
        let zip = session.uri("zip");
        let rebased = rebase_into(&mut session, &own, &g);
        assert_eq!(rebased.node_count(), g.node_count());
        assert_eq!(rebased.graph().triples(), g.graph().triples());
        assert_eq!(rebased.graph().kinds_raw(), g.graph().kinds_raw());
        assert_eq!(rebased.blank_names(), g.blank_names());
        // The shared label resolves to the session's existing id.
        let zip_node = g
            .graph()
            .nodes()
            .find(|&n| own.text(g.graph().label(n)) == "zip")
            .unwrap();
        assert_eq!(rebased.graph().label(zip_node), zip);
        // Rebasing into a fresh vocab twice is idempotent on label text.
        for n in g.graph().nodes() {
            assert_eq!(
                session.text(rebased.graph().label(n)),
                own.text(g.graph().label(n))
            );
        }
    }

    #[test]
    fn figure1_version1_shape() {
        // The version-1 graph of Figure 1.
        let mut v = Vocab::new();
        let mut b = RdfGraphBuilder::new(&mut v);
        b.uub("ss", "address", "b1");
        b.uuu("ss", "employer", "ed-uni");
        b.uub("ss", "name", "b2");
        b.bul("b1", "zip", "EH8");
        b.bul("b1", "city", "Edinburgh");
        b.uul("ed-uni", "name", "University of Edinburgh");
        b.uul("ed-uni", "city", "Edinburgh");
        b.bul("b2", "first", "Slawek");
        b.bul("b2", "middle", "Pawel");
        b.bul("b2", "last", "Staworko");
        let g = b.finish();
        // Nodes: ss, address, b1, employer, ed-uni, name, b2, zip, "EH8",
        // city, "Edinburgh", "University of Edinburgh", first, "Slawek",
        // middle, "Pawel", last, "Staworko" = 18
        assert_eq!(g.node_count(), 18);
        assert_eq!(g.triple_count(), 10);
        assert_eq!(g.graph().blanks().len(), 2);
        assert_eq!(g.graph().literals().len(), 6);
        assert_eq!(g.blank_name(g.graph().blanks()[0]), Some("b1"));
    }
}
