//! Shard-local column views for streaming refinement.
//!
//! The I/O-efficient bisimulation constructions (Luo et al., Hellings
//! et al.) run each refinement round *partition-at-a-time*: only the
//! dense color vector stays resident while the adjacency of one
//! partition (here: one shard of a subject-partitioned store) is
//! loaded, consumed and dropped. This module provides the graph-side
//! vocabulary for that loop:
//!
//! * [`ShardColumns`] — the grouped-CSR `(predicate, object)` columns
//!   of the subjects present in *one* shard, the unit of residency;
//! * [`ShardColumnsSource`] — anything that can produce the columns of
//!   shard `k` on demand (an on-disk sharded store, or an in-memory
//!   decomposition of a [`TripleGraph`]);
//! * [`GraphShards`] — the in-memory source: a contiguous
//!   subject-range decomposition of a resident graph, used to run the
//!   streaming engine over graphs that were never sharded on disk
//!   (e.g. the combined alignment graph) and to test equivalence.
//!
//! Because every subject's full out-neighbourhood lives in exactly one
//! shard (shards partition subjects), a consumer that visits each
//! shard once sees each node's `out(n)` exactly once — which is all a
//! refinement signature phase needs.

use crate::graph::{NodeId, Triple, TripleGraph};
use std::convert::Infallible;
use std::ops::Range;

/// The grouped-CSR outbound columns of one shard: the `(pred, obj)`
/// pairs of every subject the shard holds, subjects ascending.
///
/// Unlike [`crate::OutColumns`], which spans every node of a graph,
/// a `ShardColumns` covers only the subjects present in its shard;
/// subjects with no outbound edges appear in *no* shard. Edge `j` of
/// local subject `i` is `(preds()[j], objs()[j])` for `j` in
/// `range(i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardColumns {
    subjects: Vec<NodeId>,
    /// Per-subject offsets into the columns; `subjects.len() + 1` long.
    offsets: Vec<u32>,
    preds: Vec<NodeId>,
    objs: Vec<NodeId>,
    /// Largest node id referenced anywhere (subject, predicate or
    /// object); `None` when the shard is empty.
    max_node: Option<NodeId>,
}

impl ShardColumns {
    /// Group a shard's triple run into columns.
    ///
    /// The run must be grouped by subject with subjects in ascending
    /// order — which every sorted `(s, p, o)` run (the on-disk shard
    /// format, and any sorted slice of [`TripleGraph::triples`]) is.
    /// A malformed run (a subject appearing in two groups) is not
    /// detected here; it surfaces as a typed overlap error in the
    /// streaming consumer, which sees the subject twice.
    pub fn from_sorted_triples(triples: &[Triple]) -> ShardColumns {
        Self::from_sorted_iter(triples.iter().copied())
    }

    /// Group a streamed shard run into columns without requiring an
    /// intermediate `Vec<Triple>` — the zero-copy fixed-width loader
    /// feeds decoded columns straight through this. Same grouped-by-
    /// ascending-subject contract as
    /// [`ShardColumns::from_sorted_triples`].
    pub fn from_sorted_iter(
        triples: impl Iterator<Item = Triple>,
    ) -> ShardColumns {
        let (lo, _) = triples.size_hint();
        let mut subjects: Vec<NodeId> = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut preds: Vec<NodeId> = Vec::with_capacity(lo);
        let mut objs: Vec<NodeId> = Vec::with_capacity(lo);
        let mut max_node: Option<NodeId> = None;
        for t in triples {
            if subjects.last() != Some(&t.s) {
                subjects.push(t.s);
                offsets.push(preds.len() as u32);
            }
            preds.push(t.p);
            objs.push(t.o);
            let m = t.s.max(t.p).max(t.o);
            max_node = Some(max_node.map_or(m, |prev| prev.max(m)));
        }
        offsets.push(preds.len() as u32);
        ShardColumns {
            subjects,
            offsets,
            preds,
            objs,
            max_node,
        }
    }

    /// The subjects present in this shard, ascending.
    #[inline]
    pub fn subjects(&self) -> &[NodeId] {
        &self.subjects
    }

    /// Number of subjects in the shard.
    #[inline]
    pub fn subject_count(&self) -> usize {
        self.subjects.len()
    }

    /// The edge-index range of local subject `i` (an index into
    /// [`ShardColumns::subjects`], not a node id).
    #[inline]
    pub fn range(&self, i: usize) -> Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// The predicate column, indexed by edge.
    #[inline]
    pub fn preds(&self) -> &[NodeId] {
        &self.preds
    }

    /// The object column, indexed by edge.
    #[inline]
    pub fn objs(&self) -> &[NodeId] {
        &self.objs
    }

    /// Number of edges (triples) in the shard.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the shard holds no edges.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Largest node id referenced by any triple of the shard, or
    /// `None` for an empty shard. Streaming consumers check this once
    /// per shard instead of bounds-checking every edge.
    #[inline]
    pub fn max_node(&self) -> Option<NodeId> {
        self.max_node
    }

    /// Heap bytes this view keeps resident — the streaming engine's
    /// peak-memory proxy (`4` bytes per subject, offset, predicate and
    /// object entry).
    pub fn resident_bytes(&self) -> usize {
        4 * (self.subjects.len()
            + self.offsets.len()
            + self.preds.len()
            + self.objs.len())
    }
}

/// A source of per-shard column views: the abstraction the streaming
/// refinement engine consumes.
///
/// Contract: the shards partition the *subjects* of one graph — every
/// node with at least one outbound edge appears as a subject in
/// exactly one shard, with its complete out-neighbourhood. Nodes
/// without outbound edges appear in no shard. `load_shard` may be
/// called repeatedly for the same index (once per refinement round)
/// and from multiple threads for distinct indices.
pub trait ShardColumnsSource {
    /// Error produced by a failed shard load ([`Infallible`] for
    /// in-memory sources).
    type Error;

    /// Total node count of the underlying graph (the length of the
    /// color vector the consumer keeps resident).
    fn node_count(&self) -> usize;

    /// Number of shards.
    fn shard_count(&self) -> usize;

    /// Produce the columns of shard `k` (`k < shard_count()`). The
    /// caller drops the result before requesting another shard, so
    /// implementations should build the view fresh rather than cache
    /// it.
    fn load_shard(&self, k: usize) -> Result<ShardColumns, Self::Error>;
}

/// An in-memory [`ShardColumnsSource`]: a resident [`TripleGraph`]
/// decomposed into contiguous subject ranges.
///
/// The streaming engine's output is independent of *how* subjects are
/// grouped into shards (any disjoint cover gives the same result), so
/// the simplest deterministic decomposition — near-even contiguous
/// node ranges — serves both the in-RAM streaming path (refining a
/// combined alignment graph shard-at-a-time) and the equivalence test
/// suite.
#[derive(Debug)]
pub struct GraphShards<'g> {
    graph: &'g TripleGraph,
    ranges: Vec<Range<u32>>,
}

impl<'g> GraphShards<'g> {
    /// Decompose `graph` into at most `shards` contiguous, non-empty,
    /// near-even subject ranges (fewer when the graph has fewer nodes
    /// than `shards`).
    pub fn chunked(graph: &'g TripleGraph, shards: usize) -> Self {
        let n = graph.node_count();
        let parts = shards.max(1).min(n);
        let mut ranges = Vec::with_capacity(parts);
        if let (Some(base), Some(rem)) =
            (n.checked_div(parts), n.checked_rem(parts))
        {
            let mut start = 0u32;
            for i in 0..parts {
                let size = (base + usize::from(i < rem)) as u32;
                ranges.push(start..start + size);
                start += size;
            }
        }
        GraphShards { graph, ranges }
    }
}

impl ShardColumnsSource for GraphShards<'_> {
    type Error = Infallible;

    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    fn load_shard(&self, k: usize) -> Result<ShardColumns, Infallible> {
        let range = self.ranges[k].clone();
        let mut subjects = Vec::new();
        let mut offsets = Vec::new();
        let mut preds = Vec::new();
        let mut objs = Vec::new();
        let mut max_node: Option<NodeId> = None;
        for id in range {
            let s = NodeId(id);
            let out = self.graph.out(s);
            if out.is_empty() {
                continue;
            }
            subjects.push(s);
            offsets.push(preds.len() as u32);
            let mut m = s;
            for &(p, o) in out {
                preds.push(p);
                objs.push(o);
                m = m.max(p).max(o);
            }
            max_node = Some(max_node.map_or(m, |prev| prev.max(m)));
        }
        offsets.push(preds.len() as u32);
        Ok(ShardColumns {
            subjects,
            offsets,
            preds,
            objs,
            max_node,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::label::Vocab;

    fn sample() -> TripleGraph {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..7)
            .map(|i| b.add_node(v.uri(&format!("n{i}")), &v))
            .collect();
        for i in 0..7usize {
            for j in 0..7usize {
                if (i * 5 + j) % 3 == 0 && i != j {
                    b.add_triple(nodes[i], nodes[(i + j) % 7], nodes[j]);
                }
            }
        }
        b.freeze()
    }

    #[test]
    fn from_sorted_triples_groups_by_subject() {
        let g = sample();
        let cols = ShardColumns::from_sorted_triples(g.triples());
        assert_eq!(cols.len(), g.triple_count());
        // Every subject with out-edges appears once, ascending, with
        // exactly its out(n) pairs.
        let mut seen = 0usize;
        for (i, &s) in cols.subjects().iter().enumerate() {
            if i > 0 {
                assert!(cols.subjects()[i - 1] < s, "subjects ascend");
            }
            let pairs: Vec<(NodeId, NodeId)> = cols
                .range(i)
                .map(|j| (cols.preds()[j], cols.objs()[j]))
                .collect();
            assert_eq!(pairs.as_slice(), g.out(s));
            seen += pairs.len();
        }
        assert_eq!(seen, g.triple_count());
        assert!(cols.max_node().is_some());
        assert!(cols.resident_bytes() > 0);

        let empty = ShardColumns::from_sorted_triples(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.subject_count(), 0);
        assert_eq!(empty.max_node(), None);
    }

    #[test]
    fn graph_shards_cover_every_edge_once() {
        let g = sample();
        for shards in [1usize, 2, 3, 8, 100] {
            let src = GraphShards::chunked(&g, shards);
            assert!(src.shard_count() >= 1);
            assert!(src.shard_count() <= shards.max(1));
            assert_eq!(src.node_count(), g.node_count());
            let mut total = 0usize;
            let mut subjects: Vec<NodeId> = Vec::new();
            for k in 0..src.shard_count() {
                let cols = src.load_shard(k).unwrap();
                for (i, &s) in cols.subjects().iter().enumerate() {
                    subjects.push(s);
                    let pairs: Vec<(NodeId, NodeId)> = cols
                        .range(i)
                        .map(|j| (cols.preds()[j], cols.objs()[j]))
                        .collect();
                    assert_eq!(pairs.as_slice(), g.out(s));
                    total += pairs.len();
                }
            }
            assert_eq!(total, g.triple_count(), "shards={shards}");
            // Disjoint cover: no subject appears twice.
            let mut dedup = subjects.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), subjects.len());
        }
    }

    #[test]
    fn empty_graph_decomposes_to_no_shards() {
        let g = GraphBuilder::new().freeze();
        let src = GraphShards::chunked(&g, 4);
        assert_eq!(src.shard_count(), 0);
        assert_eq!(src.node_count(), 0);
    }
}
