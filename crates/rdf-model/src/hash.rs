//! A fast, non-cryptographic hasher in the style of `rustc-hash` (FxHash).
//!
//! The alignment algorithms intern colors and labels on every refinement
//! round, so hashing dominates several hot loops. SipHash (the standard
//! library default) is needlessly defensive for data we generate ourselves;
//! the multiply-xor scheme below is the one rustc itself uses and is
//! 2-5x faster on small integer keys. Implemented locally because the
//! offline dependency set does not include `rustc-hash` (see DESIGN.md).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the 64-bit FxHash scheme.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher. Not HashDoS resistant; do not expose to
/// untrusted keys in adversarial settings.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the remainder length so "a" and "a\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single `u64` to a `u64` (used to mix color signatures without
/// materialising a hasher at the call site).
#[inline]
pub fn mix64(i: u64) -> u64 {
    // splitmix64 finalizer: strong avalanche for sequential ids.
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn distinguishes_close_values() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_ne!(hash_of(""), hash_of("\0"));
    }

    #[test]
    fn remainder_length_matters() {
        // Same byte content up to padding must not collide trivially.
        assert_ne!(hash_of(&b"ab"[..]), hash_of(&b"ab\0"[..]));
        assert_ne!(hash_of(&b"abcdefgh"[..]), hash_of(&b"abcdefg"[..]));
    }

    #[test]
    fn map_usable() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn mix64_bijective_sample() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }
}
