//! Triple-graph data model for RDF alignment.
//!
//! This crate implements §2.1 of *RDF Graph Alignment with Bisimulation*
//! (Buneman & Staworko, PVLDB 9(12), 2016): triple graphs whose nodes are
//! dense identifiers and whose labels `I = U ∪ L ∪ {⊥b}` are interned in a
//! shared [`Vocab`], RDF-convention enforcement, disjoint unions of two
//! versions, and per-version statistics.
//!
//! # Quick tour
//!
//! ```
//! use rdf_model::{Vocab, RdfGraphBuilder, CombinedGraph, GraphStats};
//!
//! let mut vocab = Vocab::new();
//! let v1 = {
//!     let mut b = RdfGraphBuilder::new(&mut vocab);
//!     b.uub("ss", "address", "b1");
//!     b.bul("b1", "zip", "EH8");
//!     b.finish()
//! };
//! let v2 = {
//!     let mut b = RdfGraphBuilder::new(&mut vocab);
//!     b.uub("ss", "address", "b3");
//!     b.bul("b3", "zip", "EH8");
//!     b.finish()
//! };
//! let combined = CombinedGraph::union(&vocab, &v1, &v2);
//! assert_eq!(combined.graph().node_count(), 10);
//! let stats = GraphStats::of(v1.graph());
//! assert_eq!(stats.blanks, 1);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod hash;
pub mod label;
pub mod rdf;
pub mod shard;
pub mod stats;
pub mod truth;
pub mod union;
pub mod view;

pub use graph::{
    GraphBuilder, NodeId, OutColumns, RawPartsError, Triple, TripleGraph,
};
pub use view::{
    label_ids_from_le_bytes, node_ids_from_le_bytes, u32s_from_le_bytes,
    TripleGraphView, ViewError,
};
pub use shard::{GraphShards, ShardColumns, ShardColumnsSource};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use label::{LabelId, LabelKind, LabelRef, Vocab};
pub use rdf::{rebase_into, RdfError, RdfGraph, RdfGraphBuilder, Term};
pub use stats::GraphStats;
pub use truth::GroundTruth;
pub use union::{CombinedGraph, Side};
