//! The triple-graph data model (Definition 1).
//!
//! A triple graph is `G = (N_G, E_G, ℓ_G)`: a finite node set, a set of
//! node *triples* `E_G ⊆ N_G × N_G × N_G` (subject, predicate, object —
//! the predicate is itself a node), and a node labelling `ℓ_G : N_G → I`.
//!
//! Nodes are dense `u32` identifiers local to one graph. The outbound
//! neighbourhood `out(n) = {(p, o) | (n, p, o) ∈ E_G}` of §2.3 is stored in
//! CSR form so refinement rounds iterate it without allocation.

use crate::label::{LabelId, LabelKind, Vocab};
use std::fmt;

/// Dense node identifier, local to one [`TripleGraph`].
///
/// `repr(transparent)` over `u32` is a guarantee, not an accident: the
/// zero-copy store readers ([`crate::view`]) reinterpret aligned
/// little-endian byte columns as `&[NodeId]` without a decode pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A subject–predicate–object triple of node identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject node.
    pub s: NodeId,
    /// Predicate node (a first-class node, per §2.3).
    pub p: NodeId,
    /// Object node.
    pub o: NodeId,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub fn new(s: NodeId, p: NodeId, o: NodeId) -> Self {
        Triple { s, p, o }
    }
}

/// An immutable triple graph with CSR outbound adjacency.
///
/// Build one through [`GraphBuilder`]; the freeze step sorts and
/// deduplicates triples (edge *sets*, not multisets) and lays out
/// `out(n)` contiguously.
#[derive(Debug, Clone)]
pub struct TripleGraph {
    labels: Vec<LabelId>,
    kinds: Vec<LabelKind>,
    triples: Vec<Triple>,
    /// CSR offsets: out-edges of node `n` are
    /// `out_pairs[out_index[n] .. out_index[n + 1]]`.
    out_index: Vec<u32>,
    /// Flattened `(p, o)` pairs, grouped by subject, sorted within group.
    out_pairs: Vec<(NodeId, NodeId)>,
}

impl TripleGraph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of (distinct) triples.
    #[inline]
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// All triples, sorted by (s, p, o).
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The label of a node.
    #[inline]
    pub fn label(&self, n: NodeId) -> LabelId {
        self.labels[n.index()]
    }

    /// The label kind of a node (cached; avoids a vocab lookup).
    #[inline]
    pub fn kind(&self, n: NodeId) -> LabelKind {
        self.kinds[n.index()]
    }

    /// Whether the node is a literal.
    #[inline]
    pub fn is_literal(&self, n: NodeId) -> bool {
        self.kinds[n.index()] == LabelKind::Literal
    }

    /// Whether the node is blank.
    #[inline]
    pub fn is_blank(&self, n: NodeId) -> bool {
        self.kinds[n.index()] == LabelKind::Blank
    }

    /// Whether the node is a URI.
    #[inline]
    pub fn is_uri(&self, n: NodeId) -> bool {
        self.kinds[n.index()] == LabelKind::Uri
    }

    /// The outbound neighbourhood `out(n)` as `(predicate, object)` pairs,
    /// sorted lexicographically.
    #[inline]
    pub fn out(&self, n: NodeId) -> &[(NodeId, NodeId)] {
        let lo = self.out_index[n.index()] as usize;
        let hi = self.out_index[n.index() + 1] as usize;
        &self.out_pairs[lo..hi]
    }

    /// Out-degree `|out(n)|`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        (self.out_index[n.index() + 1] - self.out_index[n.index()]) as usize
    }

    /// Materialise the grouped-CSR (struct-of-arrays) form of the
    /// outbound adjacency: the predicate and object columns of every
    /// `out(n)`, copied into two parallel arrays (`O(E)` work and
    /// allocation) sharing this graph's per-node offsets. Hot loops
    /// that touch every out-edge of every node (the refinement
    /// signature phase) stream two contiguous `u32` columns instead of
    /// chasing per-node `out(n)` pair slices — build the columns once
    /// per graph and reuse them across rounds and fixpoint runs.
    pub fn out_columns(&self) -> OutColumns<'_> {
        OutColumns {
            offsets: std::borrow::Cow::Borrowed(&self.out_index),
            preds: self.out_pairs.iter().map(|&(p, _)| p).collect(),
            objs: self.out_pairs.iter().map(|&(_, o)| o).collect(),
        }
    }

    /// Ids of all nodes with the given kind.
    pub fn nodes_of_kind(&self, kind: LabelKind) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.kind(n) == kind).collect()
    }

    /// `URIs(G)` — nodes labelled with a URI.
    pub fn uris(&self) -> Vec<NodeId> {
        self.nodes_of_kind(LabelKind::Uri)
    }

    /// `Literals(G)` — nodes labelled with a literal.
    pub fn literals(&self) -> Vec<NodeId> {
        self.nodes_of_kind(LabelKind::Literal)
    }

    /// `Blanks(G)` — blank nodes.
    pub fn blanks(&self) -> Vec<NodeId> {
        self.nodes_of_kind(LabelKind::Blank)
    }

    /// Whether the triple `(s, p, o)` is present.
    pub fn has_triple(&self, s: NodeId, p: NodeId, o: NodeId) -> bool {
        self.out(s).binary_search(&(p, o)).is_ok()
    }

    /// The per-node label array (index = node id).
    ///
    /// Raw view for serialisers; pairs with [`TripleGraph::from_raw_parts`].
    #[inline]
    pub fn labels_raw(&self) -> &[LabelId] {
        &self.labels
    }

    /// The per-node label-kind array (index = node id).
    #[inline]
    pub fn kinds_raw(&self) -> &[LabelKind] {
        &self.kinds
    }

    /// Rebuild a graph from its raw parts without consulting a [`Vocab`]:
    /// per-node labels, per-node kinds (must agree with the vocabulary the
    /// labels were interned in), and the triple list.
    ///
    /// This is the deserialisation path of the on-disk store: label ids are
    /// taken at face value, so no string hashing or interning happens per
    /// node or per triple. Triples may arrive in any order; they are sorted
    /// and deduplicated exactly as [`GraphBuilder::freeze`] would, so the
    /// result is byte-identical to a fresh build from the same parts.
    ///
    /// Returns an error (not a panic) if the arrays are inconsistent:
    /// `labels` and `kinds` lengths differ, or a triple references a node
    /// id out of range.
    pub fn from_raw_parts(
        labels: Vec<LabelId>,
        kinds: Vec<LabelKind>,
        mut triples: Vec<Triple>,
    ) -> Result<TripleGraph, RawPartsError> {
        if labels.len() != kinds.len() {
            return Err(RawPartsError::LengthMismatch {
                labels: labels.len(),
                kinds: kinds.len(),
            });
        }
        let n = labels.len() as u32;
        for t in &triples {
            for node in [t.s, t.p, t.o] {
                if node.0 >= n {
                    return Err(RawPartsError::NodeOutOfRange {
                        node: node.0,
                        nodes: n,
                    });
                }
            }
        }
        // Already-sorted input (the common case when loading a store that
        // was written from a frozen graph) skips the sort.
        if !triples.windows(2).all(|w| w[0] < w[1]) {
            triples.sort_unstable();
            triples.dedup();
        }
        let n = labels.len();
        let mut out_index = vec![0u32; n + 1];
        for t in &triples {
            out_index[t.s.index() + 1] += 1;
        }
        for i in 0..n {
            out_index[i + 1] += out_index[i];
        }
        let out_pairs: Vec<(NodeId, NodeId)> =
            triples.iter().map(|t| (t.p, t.o)).collect();
        Ok(TripleGraph {
            labels,
            kinds,
            triples,
            out_index,
            out_pairs,
        })
    }

    /// Stitch a graph together from several *runs* of triples — the
    /// deserialisation path of a sharded store, where each shard holds a
    /// sorted slice of the triple set partitioned by subject hash.
    ///
    /// Runs that are individually sorted (as every well-formed shard is)
    /// are merged in `O(total · runs)` head-comparison work without a
    /// global re-sort, so the stitched triple vector — and therefore the
    /// CSR arrays built from it — is **bit-identical** to
    /// [`TripleGraph::from_raw_parts`] over the concatenation of all
    /// runs, which in turn matches a single-file load of the same graph.
    /// An unsorted run degrades gracefully: the merged vector falls back
    /// to the sort-and-dedup path inside `from_raw_parts`.
    pub fn from_sorted_runs(
        labels: Vec<LabelId>,
        kinds: Vec<LabelKind>,
        runs: Vec<Vec<Triple>>,
    ) -> Result<TripleGraph, RawPartsError> {
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total);
        // Iterate each run front to back; repeatedly take the smallest
        // head. Run counts are small (shard counts), so a linear scan of
        // the heads beats a heap in practice and stays obviously
        // deterministic.
        let mut heads: Vec<std::iter::Peekable<std::vec::IntoIter<Triple>>> =
            runs.into_iter().map(|r| r.into_iter().peekable()).collect();
        loop {
            let mut best: Option<(usize, Triple)> = None;
            for (i, it) in heads.iter_mut().enumerate() {
                if let Some(&t) = it.peek() {
                    if best.is_none_or(|(_, b)| t < b) {
                        best = Some((i, t));
                    }
                }
            }
            match best {
                Some((i, _)) => {
                    merged.push(heads[i].next().expect("peeked head"))
                }
                None => break,
            }
        }
        TripleGraph::from_raw_parts(labels, kinds, merged)
    }
}

/// Grouped-CSR form of a graph's outbound adjacency (see
/// [`TripleGraph::out_columns`], which copies the columns out of the
/// graph's pair storage): `(pred, obj)` column slices with per-node
/// offsets. Edge `j` of node `n` is `(preds()[j], objs()[j])` for `j`
/// in `range(n)`, in the same sorted order as [`TripleGraph::out`].
///
/// Every column is a [`Cow`](std::borrow::Cow): a view built from a
/// resident graph owns
/// its copies, while a view served by the zero-copy store path
/// ([`crate::view::TripleGraphView::out_columns`]) borrows columns
/// straight from the store buffer. Consumers (the refinement engine's
/// signature phase) hoist the slices once per round, so the `Cow`
/// indirection never appears in a hot loop.
#[derive(Debug, Clone)]
pub struct OutColumns<'g> {
    offsets: std::borrow::Cow<'g, [u32]>,
    preds: std::borrow::Cow<'g, [NodeId]>,
    objs: std::borrow::Cow<'g, [NodeId]>,
}

impl<'g> OutColumns<'g> {
    /// Assemble a view from raw columns — the zero-copy entry point.
    ///
    /// Validates the CSR shape once (`O(nodes + edges)` comparisons,
    /// no allocation): offsets must be non-empty and non-decreasing,
    /// and the final offset must equal both column lengths. Returns
    /// `None` on any violation; a malformed view would otherwise
    /// surface as an index panic inside a refinement worker.
    pub fn from_parts(
        offsets: std::borrow::Cow<'g, [u32]>,
        preds: std::borrow::Cow<'g, [NodeId]>,
        objs: std::borrow::Cow<'g, [NodeId]>,
    ) -> Option<OutColumns<'g>> {
        let last = *offsets.last()?;
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if preds.len() != last as usize || objs.len() != last as usize {
            return None;
        }
        Some(OutColumns {
            offsets,
            preds,
            objs,
        })
    }

    /// The edge-index range of node `n`'s outbound edges.
    #[inline]
    pub fn range(&self, n: NodeId) -> std::ops::Range<usize> {
        self.offsets[n.index()] as usize
            ..self.offsets[n.index() + 1] as usize
    }

    /// The predicate column, indexed by edge.
    #[inline]
    pub fn preds(&self) -> &[NodeId] {
        &self.preds
    }

    /// The object column, indexed by edge.
    #[inline]
    pub fn objs(&self) -> &[NodeId] {
        &self.objs
    }

    /// The per-node offsets (length `node_count + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Total number of edges in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the view holds no edges.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Whether every column (offsets, predicates, objects) borrows from
    /// an external buffer rather than owning a copy — true only on the
    /// zero-copy store path over width-4 fixed columns.
    pub fn is_fully_borrowed(&self) -> bool {
        use std::borrow::Cow;
        matches!(self.offsets, Cow::Borrowed(_))
            && matches!(self.preds, Cow::Borrowed(_))
            && matches!(self.objs, Cow::Borrowed(_))
    }
}

/// Inconsistency detected by [`TripleGraph::from_raw_parts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawPartsError {
    /// The label and kind arrays have different lengths.
    LengthMismatch {
        /// Length of the label array.
        labels: usize,
        /// Length of the kind array.
        kinds: usize,
    },
    /// A triple references a node id beyond the node count.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The number of nodes.
        nodes: u32,
    },
}

impl fmt::Display for RawPartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawPartsError::LengthMismatch { labels, kinds } => write!(
                f,
                "label array has {labels} entries but kind array has {kinds}"
            ),
            RawPartsError::NodeOutOfRange { node, nodes } => {
                write!(f, "triple references node {node} of {nodes}")
            }
        }
    }
}

impl std::error::Error for RawPartsError {}

/// Mutable builder for [`TripleGraph`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<LabelId>,
    kinds: Vec<LabelKind>,
    triples: Vec<Triple>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with node/triple capacity hints.
    pub fn with_capacity(nodes: usize, triples: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(nodes),
            kinds: Vec::with_capacity(nodes),
            triples: Vec::with_capacity(triples),
        }
    }

    /// Current number of nodes added.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Label of an already-added node.
    #[inline]
    pub fn label(&self, n: NodeId) -> LabelId {
        self.labels[n.index()]
    }

    /// Label kind of an already-added node.
    #[inline]
    pub fn kind(&self, n: NodeId) -> LabelKind {
        self.kinds[n.index()]
    }

    /// Add a node with the given label; returns its id.
    pub fn add_node(&mut self, label: LabelId, vocab: &Vocab) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.kinds.push(vocab.kind(label));
        id
    }

    /// Add a triple between existing node ids.
    pub fn add_triple(&mut self, s: NodeId, p: NodeId, o: NodeId) {
        debug_assert!(s.index() < self.labels.len());
        debug_assert!(p.index() < self.labels.len());
        debug_assert!(o.index() < self.labels.len());
        self.triples.push(Triple::new(s, p, o));
    }

    /// Freeze into an immutable graph: sorts triples, removes duplicates,
    /// and builds the CSR adjacency.
    pub fn freeze(mut self) -> TripleGraph {
        self.triples.sort_unstable();
        self.triples.dedup();
        let n = self.labels.len();
        let mut out_index = vec![0u32; n + 1];
        for t in &self.triples {
            out_index[t.s.index() + 1] += 1;
        }
        for i in 0..n {
            out_index[i + 1] += out_index[i];
        }
        // Triples are sorted by (s, p, o), so (p, o) pairs for each subject
        // are already contiguous and sorted.
        let out_pairs: Vec<(NodeId, NodeId)> =
            self.triples.iter().map(|t| (t.p, t.o)).collect();
        TripleGraph {
            labels: self.labels,
            kinds: self.kinds,
            triples: self.triples,
            out_index,
            out_pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Vocab, TripleGraph) {
        // w --p--> b1, b1 --q--> "a"  (p, q are predicate URI nodes)
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let w = b.add_node(v.uri("w"), &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        let b1 = b.add_node(LabelId::BLANK, &v);
        let a = b.add_node(v.literal("a"), &v);
        b.add_triple(w, p, b1);
        b.add_triple(b1, q, a);
        (v, b.freeze())
    }

    #[test]
    fn counts() {
        let (_, g) = tiny();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.triple_count(), 2);
    }

    #[test]
    fn out_neighbourhoods() {
        let (_, g) = tiny();
        let w = NodeId(0);
        let p = NodeId(1);
        let q = NodeId(2);
        let b1 = NodeId(3);
        let a = NodeId(4);
        assert_eq!(g.out(w), &[(p, b1)]);
        assert_eq!(g.out(b1), &[(q, a)]);
        assert_eq!(g.out(a), &[]);
        assert_eq!(g.out_degree(w), 1);
        assert_eq!(g.out_degree(q), 0);
    }

    #[test]
    fn kinds_partition_nodes() {
        let (_, g) = tiny();
        assert_eq!(g.uris().len(), 3);
        assert_eq!(g.blanks(), vec![NodeId(3)]);
        assert_eq!(g.literals(), vec![NodeId(4)]);
        assert!(g.is_blank(NodeId(3)));
        assert!(g.is_literal(NodeId(4)));
        assert!(g.is_uri(NodeId(0)));
    }

    #[test]
    fn duplicate_triples_removed() {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(v.uri("x"), &v);
        let p = b.add_node(v.uri("p"), &v);
        b.add_triple(x, p, x);
        b.add_triple(x, p, x);
        let g = b.freeze();
        assert_eq!(g.triple_count(), 1);
        assert!(g.has_triple(x, p, x));
        assert!(!g.has_triple(p, x, p));
    }

    #[test]
    fn out_pairs_sorted() {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(v.uri("x"), &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        let y = b.add_node(v.uri("y"), &v);
        // Insert in scrambled order.
        b.add_triple(x, q, y);
        b.add_triple(x, p, y);
        b.add_triple(x, p, q);
        let g = b.freeze();
        assert_eq!(g.out(x), &[(p, q), (p, y), (q, y)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().freeze();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.triple_count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn out_columns_agree_with_out_pairs() {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let x = b.add_node(v.uri("x"), &v);
        let p = b.add_node(v.uri("p"), &v);
        let q = b.add_node(v.uri("q"), &v);
        let y = b.add_node(v.uri("y"), &v);
        b.add_triple(x, q, y);
        b.add_triple(x, p, y);
        b.add_triple(y, p, x);
        let g = b.freeze();
        let cols = g.out_columns();
        assert_eq!(cols.len(), g.triple_count());
        assert_eq!(cols.offsets().len(), g.node_count() + 1);
        for n in g.nodes() {
            let pairs: Vec<(NodeId, NodeId)> = cols
                .range(n)
                .map(|j| (cols.preds()[j], cols.objs()[j]))
                .collect();
            assert_eq!(pairs.as_slice(), g.out(n));
        }
        let empty = GraphBuilder::new().freeze();
        assert!(empty.out_columns().is_empty());
    }

    #[test]
    fn raw_parts_round_trip() {
        let (_, g) = tiny();
        let g2 = TripleGraph::from_raw_parts(
            g.labels_raw().to_vec(),
            g.kinds_raw().to_vec(),
            g.triples().to_vec(),
        )
        .unwrap();
        assert_eq!(g.labels_raw(), g2.labels_raw());
        assert_eq!(g.kinds_raw(), g2.kinds_raw());
        assert_eq!(g.triples(), g2.triples());
        for n in g.nodes() {
            assert_eq!(g.out(n), g2.out(n));
        }
    }

    #[test]
    fn raw_parts_sorts_and_dedups_unsorted_input() {
        let (_, g) = tiny();
        let mut scrambled = g.triples().to_vec();
        scrambled.reverse();
        scrambled.push(scrambled[0]);
        let g2 = TripleGraph::from_raw_parts(
            g.labels_raw().to_vec(),
            g.kinds_raw().to_vec(),
            scrambled,
        )
        .unwrap();
        assert_eq!(g.triples(), g2.triples());
    }

    #[test]
    fn sorted_runs_stitch_identically_to_raw_parts() {
        let mut v = Vocab::new();
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(v.uri(&format!("n{i}")), &v))
            .collect();
        for i in 0..6usize {
            for j in 0..6usize {
                if (i * 7 + j) % 3 != 0 {
                    b.add_triple(nodes[i], nodes[(i + j) % 6], nodes[j]);
                }
            }
        }
        let g = b.freeze();
        // Partition the sorted triples by a subject hash into 3 runs —
        // each run stays sorted, subjects interleave across runs.
        let mut runs: Vec<Vec<Triple>> = vec![Vec::new(); 3];
        for &t in g.triples() {
            runs[(t.s.0 as usize * 2654435761) % 3].push(t);
        }
        let stitched = TripleGraph::from_sorted_runs(
            g.labels_raw().to_vec(),
            g.kinds_raw().to_vec(),
            runs,
        )
        .unwrap();
        assert_eq!(stitched.triples(), g.triples());
        assert_eq!(stitched.labels_raw(), g.labels_raw());
        for n in g.nodes() {
            assert_eq!(stitched.out(n), g.out(n));
        }
        // Degenerate shapes: no runs, and empty runs among real ones.
        let empty = TripleGraph::from_sorted_runs(
            g.labels_raw().to_vec(),
            g.kinds_raw().to_vec(),
            vec![Vec::new(), g.triples().to_vec(), Vec::new()],
        )
        .unwrap();
        assert_eq!(empty.triples(), g.triples());
    }

    #[test]
    fn unsorted_runs_still_build_the_sorted_graph() {
        let (_, g) = tiny();
        let mut backwards = g.triples().to_vec();
        backwards.reverse();
        let stitched = TripleGraph::from_sorted_runs(
            g.labels_raw().to_vec(),
            g.kinds_raw().to_vec(),
            vec![backwards],
        )
        .unwrap();
        assert_eq!(stitched.triples(), g.triples());
    }

    #[test]
    fn raw_parts_rejects_inconsistencies() {
        let (_, g) = tiny();
        let err = TripleGraph::from_raw_parts(
            g.labels_raw().to_vec(),
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, RawPartsError::LengthMismatch { .. }));
        let err = TripleGraph::from_raw_parts(
            g.labels_raw().to_vec(),
            g.kinds_raw().to_vec(),
            vec![Triple::new(NodeId(0), NodeId(1), NodeId(99))],
        )
        .unwrap_err();
        assert!(matches!(err, RawPartsError::NodeOutOfRange { .. }));
    }
}
