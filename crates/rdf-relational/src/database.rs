//! In-memory relational database with integrity checking.
//!
//! Rows are stored per table; inserts validate column types, NULLability,
//! primary-key uniqueness, and foreign-key existence. Deletes can
//! restrict or cascade through referencing rows — the evolution engine
//! uses cascade to model entity removal between GtoPdb releases.

use crate::schema::{ColumnType, Schema};
use rdf_model::FxHashMap;
use std::fmt;

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Text.
    Text(String),
    /// Float.
    Float(f64),
}

impl Value {
    /// Lexical form used by the direct mapping (and key encoding).
    pub fn lexical(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Text(t) => t.clone(),
            Value::Float(x) => format!("{x}"),
        }
    }

    fn matches(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Int(_), ColumnType::Int)
                | (Value::Text(_), ColumnType::Text)
                | (Value::Float(_), ColumnType::Float)
        )
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// A row: one value per column.
pub type Row = Vec<Value>;

/// Integrity violations.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Unknown table name.
    NoSuchTable(String),
    /// Row arity does not match the table.
    Arity { /** table */ table: String, /** expected */ expected: usize, /** got */ got: usize },
    /// Value type does not match the column.
    TypeMismatch(String),
    /// NULL in a non-nullable column.
    NullViolation(String),
    /// Duplicate primary key.
    DuplicateKey(String),
    /// Foreign key references a missing row.
    ForeignKeyViolation(String),
    /// Row with the given key not found.
    NoSuchRow(String),
    /// Delete would orphan referencing rows (restrict mode).
    RestrictViolation(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table {t}"),
            DbError::Arity {
                table,
                expected,
                got,
            } => write!(f, "table {table}: expected {expected} values, got {got}"),
            DbError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DbError::NullViolation(m) => write!(f, "null violation: {m}"),
            DbError::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            DbError::ForeignKeyViolation(m) => {
                write!(f, "foreign key violation: {m}")
            }
            DbError::NoSuchRow(m) => write!(f, "no such row: {m}"),
            DbError::RestrictViolation(m) => {
                write!(f, "delete restricted: {m}")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// Delete behaviour for referencing rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteMode {
    /// Fail if referencing rows exist.
    Restrict,
    /// Recursively delete referencing rows.
    Cascade,
}

/// One table's storage: rows plus a primary-key index.
#[derive(Debug, Clone, Default)]
struct TableData {
    rows: Vec<Row>,
    /// Key (encoded pk) → row index. Deleted rows leave tombstones in
    /// `rows` (None would complicate types; we swap-remove instead and
    /// fix the index).
    by_key: FxHashMap<String, usize>,
}

/// The database: schema + data.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Schema,
    data: Vec<TableData>,
}

impl Database {
    /// Empty database over a schema.
    pub fn new(schema: Schema) -> Self {
        let n = schema.tables.len();
        Database {
            schema,
            data: vec![TableData::default(); n],
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Encode a primary key into its canonical string form.
    pub fn encode_key(&self, table: usize, row: &Row) -> String {
        let pk = &self.schema.tables[table].primary_key;
        let mut out = String::new();
        for (i, &c) in pk.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&row[c].lexical());
        }
        out
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> usize {
        let ti = self.schema.table_index(table).expect("table");
        self.data[ti].rows.len()
    }

    /// Total rows across tables.
    pub fn total_rows(&self) -> usize {
        self.data.iter().map(|t| t.rows.len()).sum()
    }

    /// Iterate rows of a table.
    pub fn rows(&self, table: &str) -> impl Iterator<Item = &Row> {
        let ti = self.schema.table_index(table).expect("table");
        self.data[ti].rows.iter()
    }

    /// Rows of a table by index.
    pub fn rows_by_index(&self, table: usize) -> &[Row] {
        &self.data[table].rows
    }

    /// Fetch a row by encoded key.
    pub fn get(&self, table: &str, key: &str) -> Option<&Row> {
        let ti = self.schema.table_index(table)?;
        let idx = *self.data[ti].by_key.get(key)?;
        Some(&self.data[ti].rows[idx])
    }

    /// Insert a row, validating all constraints.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), DbError> {
        let ti = self
            .schema
            .table_index(table)
            .ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        let t = &self.schema.tables[ti];
        if row.len() != t.columns.len() {
            return Err(DbError::Arity {
                table: table.into(),
                expected: t.columns.len(),
                got: row.len(),
            });
        }
        for (v, c) in row.iter().zip(&t.columns) {
            match v {
                Value::Null if !c.nullable => {
                    return Err(DbError::NullViolation(format!(
                        "{table}.{}",
                        c.name
                    )));
                }
                // A nullable NULL is always well-typed.
                Value::Null => {}
                v if !v.matches(c.ty) => {
                    return Err(DbError::TypeMismatch(format!(
                        "{table}.{} = {v:?}",
                        c.name
                    )))
                }
                _ => {}
            }
        }
        let key = self.encode_key(ti, &row);
        if self.data[ti].by_key.contains_key(&key) {
            return Err(DbError::DuplicateKey(format!("{table}[{key}]")));
        }
        // Foreign keys.
        for fk in &t.foreign_keys {
            if fk.columns.iter().any(|&c| row[c] == Value::Null) {
                continue; // NULL reference is permitted
            }
            let mut ref_key = String::new();
            for (i, &c) in fk.columns.iter().enumerate() {
                if i > 0 {
                    ref_key.push(';');
                }
                ref_key.push_str(&row[c].lexical());
            }
            if !self.data[fk.ref_table].by_key.contains_key(&ref_key) {
                return Err(DbError::ForeignKeyViolation(format!(
                    "{table}[{key}] -> {}[{ref_key}]",
                    self.schema.tables[fk.ref_table].name
                )));
            }
        }
        let idx = self.data[ti].rows.len();
        self.data[ti].rows.push(row);
        self.data[ti].by_key.insert(key, idx);
        Ok(())
    }

    /// Update one column of the row with the given key.
    pub fn update(
        &mut self,
        table: &str,
        key: &str,
        column: &str,
        value: Value,
    ) -> Result<(), DbError> {
        let ti = self
            .schema
            .table_index(table)
            .ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        let t = &self.schema.tables[ti];
        let ci = t
            .column_index(column)
            .ok_or_else(|| DbError::TypeMismatch(format!("no column {column}")))?;
        if t.primary_key.contains(&ci) {
            return Err(DbError::TypeMismatch(
                "updating key columns is not supported (keys are persistent)"
                    .into(),
            ));
        }
        match &value {
            Value::Null if !t.columns[ci].nullable => {
                return Err(DbError::NullViolation(format!(
                    "{table}.{column}"
                )));
            }
            // A nullable NULL is always well-typed.
            Value::Null => {}
            v if !v.matches(t.columns[ci].ty) => {
                return Err(DbError::TypeMismatch(format!(
                    "{table}.{column} = {v:?}"
                )))
            }
            _ => {}
        }
        let idx = *self.data[ti]
            .by_key
            .get(key)
            .ok_or_else(|| DbError::NoSuchRow(format!("{table}[{key}]")))?;
        self.data[ti].rows[idx][ci] = value;
        Ok(())
    }

    /// Delete the row with the given key.
    pub fn delete(
        &mut self,
        table: &str,
        key: &str,
        mode: DeleteMode,
    ) -> Result<usize, DbError> {
        let ti = self
            .schema
            .table_index(table)
            .ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        if !self.data[ti].by_key.contains_key(key) {
            return Err(DbError::NoSuchRow(format!("{table}[{key}]")));
        }
        // Find referencing rows across all tables.
        let mut to_delete: Vec<(usize, String)> = Vec::new();
        for (oti, ot) in self.schema.tables.iter().enumerate() {
            for fk in &ot.foreign_keys {
                if fk.ref_table != ti {
                    continue;
                }
                for row in &self.data[oti].rows {
                    let mut ref_key = String::new();
                    for (i, &c) in fk.columns.iter().enumerate() {
                        if i > 0 {
                            ref_key.push(';');
                        }
                        ref_key.push_str(&row[c].lexical());
                    }
                    if ref_key == key
                        && !fk.columns.iter().any(|&c| row[c] == Value::Null)
                    {
                        let k = self.encode_key(oti, row);
                        to_delete.push((oti, k));
                    }
                }
            }
        }
        match mode {
            DeleteMode::Restrict if !to_delete.is_empty() => {
                return Err(DbError::RestrictViolation(format!(
                    "{table}[{key}] referenced by {} rows",
                    to_delete.len()
                )))
            }
            _ => {}
        }
        let mut deleted = 0;
        for (oti, k) in to_delete {
            let name = self.schema.tables[oti].name.clone();
            // The row may already be gone through another cascade path.
            if self.data[oti].by_key.contains_key(&k) {
                deleted += self.delete(&name, &k, DeleteMode::Cascade)?;
            }
        }
        self.remove_row(ti, key);
        Ok(deleted + 1)
    }

    fn remove_row(&mut self, ti: usize, key: &str) {
        let idx = self.data[ti].by_key.remove(key).expect("row exists");
        self.data[ti].rows.swap_remove(idx);
        // Fix the index of the row that moved into `idx`.
        if idx < self.data[ti].rows.len() {
            let moved_key = self.encode_key(ti, &self.data[ti].rows[idx]);
            self.data[ti].by_key.insert(moved_key, idx);
        }
    }

    /// All encoded keys of a table (unordered).
    pub fn keys(&self, table: &str) -> Vec<String> {
        let ti = self.schema.table_index(table).expect("table");
        self.data[ti].by_key.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, SchemaBuilder, TableBuilder};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .table(
                TableBuilder::new("ligand")
                    .column("ligand_id", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .nullable("comment", ColumnType::Text)
                    .primary_key(&["ligand_id"]),
            )
            .table(
                TableBuilder::new("interaction")
                    .column("interaction_id", ColumnType::Int)
                    .column("ligand_id", ColumnType::Int)
                    .column("affinity", ColumnType::Float)
                    .primary_key(&["interaction_id"])
                    .foreign_key(&["ligand_id"], "ligand"),
            )
            .build()
            .unwrap();
        Database::new(schema)
    }

    #[test]
    fn insert_and_get() {
        let mut d = db();
        d.insert("ligand", vec![685.into(), "calcitonin".into(), Value::Null])
            .unwrap();
        assert_eq!(d.row_count("ligand"), 1);
        let row = d.get("ligand", "685").unwrap();
        assert_eq!(row[1], Value::Text("calcitonin".into()));
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut d = db();
        d.insert("ligand", vec![1.into(), "a".into(), Value::Null])
            .unwrap();
        let err = d
            .insert("ligand", vec![1.into(), "b".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey(_)));
    }

    #[test]
    fn type_and_null_checks() {
        let mut d = db();
        let err = d
            .insert("ligand", vec!["no".into(), "a".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch(_)));
        let err = d
            .insert("ligand", vec![1.into(), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::NullViolation(_)));
        let err = d.insert("ligand", vec![1.into()]).unwrap_err();
        assert!(matches!(err, DbError::Arity { .. }));
    }

    #[test]
    fn foreign_key_enforced() {
        let mut d = db();
        let err = d
            .insert("interaction", vec![1.into(), 999.into(), 7.5.into()])
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation(_)));
        d.insert("ligand", vec![685.into(), "calcitonin".into(), Value::Null])
            .unwrap();
        d.insert("interaction", vec![1.into(), 685.into(), 7.5.into()])
            .unwrap();
    }

    #[test]
    fn delete_restrict_and_cascade() {
        let mut d = db();
        d.insert("ligand", vec![685.into(), "calcitonin".into(), Value::Null])
            .unwrap();
        d.insert("interaction", vec![1.into(), 685.into(), 7.5.into()])
            .unwrap();
        let err = d.delete("ligand", "685", DeleteMode::Restrict).unwrap_err();
        assert!(matches!(err, DbError::RestrictViolation(_)));
        let n = d.delete("ligand", "685", DeleteMode::Cascade).unwrap();
        assert_eq!(n, 2);
        assert_eq!(d.total_rows(), 0);
    }

    #[test]
    fn update_non_key_column() {
        let mut d = db();
        d.insert("ligand", vec![685.into(), "calcitonin".into(), Value::Null])
            .unwrap();
        d.update("ligand", "685", "name", "calcitonin salmon".into())
            .unwrap();
        assert_eq!(
            d.get("ligand", "685").unwrap()[1],
            Value::Text("calcitonin salmon".into())
        );
        // Key updates rejected (keys are persistent, §5.2).
        let err = d
            .update("ligand", "685", "ligand_id", 9.into())
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch(_)));
    }

    #[test]
    fn swap_remove_index_fixup() {
        let mut d = db();
        for i in 0..10i64 {
            d.insert("ligand", vec![i.into(), format!("l{i}").into(), Value::Null])
                .unwrap();
        }
        d.delete("ligand", "0", DeleteMode::Cascade).unwrap();
        // Row 9 moved into slot 0; lookups must still work.
        assert_eq!(
            d.get("ligand", "9").unwrap()[1],
            Value::Text("l9".into())
        );
        assert_eq!(d.row_count("ligand"), 9);
    }
}
