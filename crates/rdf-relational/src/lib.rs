//! Minimal in-memory relational database with W3C Direct Mapping export
//! to RDF.
//!
//! This is the substrate for reproducing the GtoPdb experiment of §5.2:
//! a relational database of curated pharmacology data, exported to RDF
//! "at different times by different services using similar export
//! schemes", i.e. per-version URI prefixes over persistent primary keys.
//!
//! ```
//! use rdf_relational::{SchemaBuilder, TableBuilder, ColumnType, Database,
//!                      direct_mapping, MappingOptions};
//! use rdf_model::Vocab;
//!
//! let schema = SchemaBuilder::new()
//!     .table(TableBuilder::new("ligand")
//!         .column("ligand_id", ColumnType::Int)
//!         .column("name", ColumnType::Text)
//!         .primary_key(&["ligand_id"]))
//!     .build().unwrap();
//! let mut db = Database::new(schema);
//! db.insert("ligand", vec![685i64.into(), "calcitonin".into()]).unwrap();
//!
//! let mut vocab = Vocab::new();
//! let export = direct_mapping(&db, &MappingOptions::new("http://g/v1/"), &mut vocab);
//! assert!(vocab.find_uri("http://g/v1/ligand/685").is_some());
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod direct_mapping;
pub mod schema;

pub use database::{Database, DbError, DeleteMode, Row, Value};
pub use direct_mapping::{
    direct_mapping, ground_truth, Export, MappingOptions, RDF_TYPE,
};
pub use schema::{
    Column, ColumnType, ForeignKey, Schema, SchemaBuilder, SchemaError,
    Table, TableBuilder,
};
