//! Relational schema: tables, typed columns, primary and foreign keys.
//!
//! The GtoPdb experiment (§5.2) exports a curated relational database to
//! RDF. This module models the schema half: enough DDL to express
//! multi-table databases with integrity constraints, so the W3C Direct
//! Mapping (and its evolution over versions) can be reproduced
//! faithfully.

use std::fmt;

/// Column data types (the direct mapping only needs lexical forms, so a
/// small set suffices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// UTF-8 text.
    Text,
    /// Double-precision float.
    Float,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name, unique within its table.
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// Whether NULL values are allowed.
    pub nullable: bool,
}

/// A foreign-key constraint: `columns` of this table reference
/// `ref_columns` (the primary key) of `ref_table`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKey {
    /// Referencing column indices in this table.
    pub columns: Vec<usize>,
    /// Referenced table index in the schema.
    pub ref_table: usize,
    /// Referenced column indices (must be `ref_table`'s primary key).
    pub ref_columns: Vec<usize>,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name, unique within the schema.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Primary-key column indices (non-empty).
    pub primary_key: Vec<usize>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Table {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// A database schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    /// Tables in definition order.
    pub tables: Vec<Table>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of a table by name.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// The table by name; panics if absent (builder convenience).
    pub fn table(&self, name: &str) -> &Table {
        &self.tables[self.table_index(name).unwrap_or_else(|| {
            panic!("no table {name}")
        })]
    }
}

/// Errors in schema construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Table name already used.
    DuplicateTable(String),
    /// Column name already used in the table.
    DuplicateColumn(String),
    /// Primary key references a column out of range, is empty, or uses a
    /// nullable column.
    BadPrimaryKey(String),
    /// Foreign key arity/target mismatch.
    BadForeignKey(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateTable(t) => write!(f, "duplicate table {t}"),
            SchemaError::DuplicateColumn(c) => {
                write!(f, "duplicate column {c}")
            }
            SchemaError::BadPrimaryKey(m) => write!(f, "bad primary key: {m}"),
            SchemaError::BadForeignKey(m) => write!(f, "bad foreign key: {m}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Fluent builder for one table.
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
    primary_key: Vec<String>,
    foreign_keys: Vec<(Vec<String>, String)>,
}

impl TableBuilder {
    /// Start a table definition.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Add a non-nullable column.
    pub fn column(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(Column {
            name: name.into(),
            ty,
            nullable: false,
        });
        self
    }

    /// Add a nullable column.
    pub fn nullable(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(Column {
            name: name.into(),
            ty,
            nullable: true,
        });
        self
    }

    /// Declare the primary key.
    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declare a foreign key: `cols` reference the primary key of
    /// `ref_table`.
    pub fn foreign_key(mut self, cols: &[&str], ref_table: &str) -> Self {
        self.foreign_keys.push((
            cols.iter().map(|s| s.to_string()).collect(),
            ref_table.into(),
        ));
        self
    }
}

/// Fluent builder for a schema.
#[derive(Default)]
pub struct SchemaBuilder {
    tables: Vec<TableBuilder>,
}

impl SchemaBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table.
    pub fn table(mut self, t: TableBuilder) -> Self {
        self.tables.push(t);
        self
    }

    /// Validate and produce the schema.
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut schema = Schema::new();
        // First pass: tables and columns.
        for tb in &self.tables {
            if schema.table_index(&tb.name).is_some() {
                return Err(SchemaError::DuplicateTable(tb.name.clone()));
            }
            let mut cols: Vec<Column> = Vec::new();
            for c in &tb.columns {
                if cols.iter().any(|e| e.name == c.name) {
                    return Err(SchemaError::DuplicateColumn(c.name.clone()));
                }
                cols.push(c.clone());
            }
            schema.tables.push(Table {
                name: tb.name.clone(),
                columns: cols,
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
            });
        }
        // Second pass: keys (so FKs can reference later tables).
        for (ti, tb) in self.tables.iter().enumerate() {
            let pk: Vec<usize> = tb
                .primary_key
                .iter()
                .map(|name| {
                    schema.tables[ti].column_index(name).ok_or_else(|| {
                        SchemaError::BadPrimaryKey(format!(
                            "unknown column {name}"
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            if pk.is_empty() {
                return Err(SchemaError::BadPrimaryKey(format!(
                    "table {} has no primary key",
                    tb.name
                )));
            }
            if pk.iter().any(|&c| schema.tables[ti].columns[c].nullable) {
                return Err(SchemaError::BadPrimaryKey(format!(
                    "table {} has a nullable key column",
                    tb.name
                )));
            }
            schema.tables[ti].primary_key = pk;
            for (cols, ref_name) in &tb.foreign_keys {
                let ref_table =
                    schema.table_index(ref_name).ok_or_else(|| {
                        SchemaError::BadForeignKey(format!(
                            "unknown table {ref_name}"
                        ))
                    })?;
                let columns: Vec<usize> = cols
                    .iter()
                    .map(|name| {
                        schema.tables[ti].column_index(name).ok_or_else(|| {
                            SchemaError::BadForeignKey(format!(
                                "unknown column {name}"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let ref_columns = schema.tables[ref_table].primary_key.clone();
                if ref_columns.len() != columns.len() {
                    return Err(SchemaError::BadForeignKey(format!(
                        "arity mismatch referencing {ref_name}"
                    )));
                }
                schema.tables[ti].foreign_keys.push(ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                });
            }
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtopdb_like() -> Schema {
        SchemaBuilder::new()
            .table(
                TableBuilder::new("ligand")
                    .column("ligand_id", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .nullable("comment", ColumnType::Text)
                    .primary_key(&["ligand_id"]),
            )
            .table(
                TableBuilder::new("interaction")
                    .column("interaction_id", ColumnType::Int)
                    .column("ligand_id", ColumnType::Int)
                    .primary_key(&["interaction_id"])
                    .foreign_key(&["ligand_id"], "ligand"),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builds_with_keys() {
        let s = gtopdb_like();
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.table("ligand").primary_key, vec![0]);
        let fk = &s.table("interaction").foreign_keys[0];
        assert_eq!(fk.ref_table, 0);
        assert_eq!(fk.columns, vec![1]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let err = SchemaBuilder::new()
            .table(TableBuilder::new("t").column("a", ColumnType::Int).primary_key(&["a"]))
            .table(TableBuilder::new("t").column("a", ColumnType::Int).primary_key(&["a"]))
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateTable("t".into()));
    }

    #[test]
    fn missing_primary_key_rejected() {
        let err = SchemaBuilder::new()
            .table(TableBuilder::new("t").column("a", ColumnType::Int))
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::BadPrimaryKey(_)));
    }

    #[test]
    fn nullable_pk_rejected() {
        let err = SchemaBuilder::new()
            .table(
                TableBuilder::new("t")
                    .nullable("a", ColumnType::Int)
                    .primary_key(&["a"]),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::BadPrimaryKey(_)));
    }

    #[test]
    fn unknown_fk_target_rejected() {
        let err = SchemaBuilder::new()
            .table(
                TableBuilder::new("t")
                    .column("a", ColumnType::Int)
                    .primary_key(&["a"])
                    .foreign_key(&["a"], "nope"),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::BadForeignKey(_)));
    }

    #[test]
    fn column_lookup() {
        let s = gtopdb_like();
        assert_eq!(s.table("ligand").column_index("name"), Some(1));
        assert_eq!(s.table("ligand").column_index("nope"), None);
    }
}
