//! W3C Direct Mapping of relational data to RDF \[18\], as used for the
//! GtoPdb experiment (§5.2).
//!
//! Following the paper's description:
//! 1. every tuple is identified by a URI built from a base prefix, the
//!    table name and the primary-key values;
//! 2. value attributes become edges `(tuple URI, attribute URI, literal)`;
//! 3. referential attributes become edges pointing to the referenced
//!    tuple's URI;
//!
//! plus the `rdf:type` triple `(tuple URI, rdf:type, table URI)` from the
//! W3C recommendation. NULL attributes emit no triple.
//!
//! The export records, for every emitted URI, a *stable entity key*
//! `(table, pk)` (or a schema-level key for table/attribute URIs). Two
//! exports of evolving versions — possibly under different base prefixes
//! — are joined on these keys to derive the ground-truth alignment, just
//! as the paper does with persistent GtoPdb identifiers.

use crate::database::{Database, Value};
use rdf_model::{
    FxHashMap, GroundTruth, NodeId, RdfGraph, RdfGraphBuilder, Vocab,
};

/// The `rdf:type` predicate URI.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Options for the direct mapping.
#[derive(Debug, Clone)]
pub struct MappingOptions {
    /// Base URI prefix (ends with `/` by convention).
    pub base: String,
    /// Emit `rdf:type` triples per row.
    pub type_triples: bool,
}

impl MappingOptions {
    /// Default options for a base prefix.
    pub fn new(base: impl Into<String>) -> Self {
        MappingOptions {
            base: base.into(),
            type_triples: true,
        }
    }
}

/// Result of exporting one database version.
#[derive(Debug, Clone)]
pub struct Export {
    /// The RDF graph.
    pub graph: RdfGraph,
    /// Stable entity key → node id, for ground-truth derivation. Keys:
    /// `row:{table}:{pk}` for tuples, `table:{table}` for class URIs,
    /// `attr:{table}:{column}` for attribute URIs, `uri:{text}` for
    /// fixed vocabulary (rdf:type).
    pub entities: FxHashMap<String, NodeId>,
}

/// Export a database version to RDF via the direct mapping.
pub fn direct_mapping(
    db: &Database,
    options: &MappingOptions,
    vocab: &mut Vocab,
) -> Export {
    let mut b = RdfGraphBuilder::new(vocab);
    let mut entities: FxHashMap<String, NodeId> = FxHashMap::default();
    let base = &options.base;
    let schema = db.schema();

    for (ti, table) in schema.tables.iter().enumerate() {
        let table_uri = format!("{base}{}", table.name);
        // Precompute attribute URIs.
        let attr_uris: Vec<String> = table
            .columns
            .iter()
            .map(|c| format!("{base}{}#{}", table.name, c.name))
            .collect();
        // Which columns participate in some foreign key (referential
        // attributes are exported as references, not literals).
        let mut referential = vec![false; table.columns.len()];
        for fk in &table.foreign_keys {
            for &c in &fk.columns {
                referential[c] = true;
            }
        }

        for row in db.rows_by_index(ti) {
            let key = db.encode_key(ti, row);
            let row_uri = format!("{base}{}/{key}", table.name);
            let s = b.uri_node(&row_uri);
            entities.insert(format!("row:{}:{key}", table.name), s);

            if options.type_triples {
                let p = b.uri_node(RDF_TYPE);
                let o = b.uri_node(&table_uri);
                entities.insert(format!("table:{}", table.name), o);
                entities.insert(format!("uri:{RDF_TYPE}"), p);
                b.add_triple_ids(s, p, o).expect("uri triple");
            }

            // Value attributes.
            for (ci, col) in table.columns.iter().enumerate() {
                if referential[ci] || row[ci] == Value::Null {
                    continue;
                }
                let p = b.uri_node(&attr_uris[ci]);
                entities
                    .insert(format!("attr:{}:{}", table.name, col.name), p);
                let o = b.literal_node(&row[ci].lexical());
                b.add_triple_ids(s, p, o).expect("literal triple");
            }

            // Referential attributes.
            for fk in &table.foreign_keys {
                if fk.columns.iter().any(|&c| row[c] == Value::Null) {
                    continue;
                }
                let mut ref_key = String::new();
                for (i, &c) in fk.columns.iter().enumerate() {
                    if i > 0 {
                        ref_key.push(';');
                    }
                    ref_key.push_str(&row[c].lexical());
                }
                let ref_table = &schema.tables[fk.ref_table].name;
                let o_uri = format!("{base}{ref_table}/{ref_key}");
                let o = b.uri_node(&o_uri);
                entities.insert(format!("row:{ref_table}:{ref_key}"), o);
                // Predicate: the referencing column(s).
                let cols: Vec<&str> = fk
                    .columns
                    .iter()
                    .map(|&c| table.columns[c].name.as_str())
                    .collect();
                let p_uri = format!(
                    "{base}{}#ref-{}",
                    table.name,
                    cols.join(";")
                );
                let p = b.uri_node(&p_uri);
                entities.insert(
                    format!("ref:{}:{}", table.name, cols.join(";")),
                    p,
                );
                b.add_triple_ids(s, p, o).expect("reference triple");
            }
        }
    }

    Export {
        graph: b.finish(),
        entities,
    }
}

/// Derive the ground-truth alignment between two exports: nodes sharing
/// a stable entity key correspond. Literal nodes are excluded (the paper
/// evaluates URI alignment; literals align trivially by label).
pub fn ground_truth(source: &Export, target: &Export) -> GroundTruth {
    let mut pairs: Vec<(NodeId, NodeId)> = source
        .entities
        .iter()
        .filter_map(|(k, &s)| target.entities.get(k).map(|&t| (s, t)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    GroundTruth::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{Database, Value};
    use crate::schema::{ColumnType, SchemaBuilder, TableBuilder};

    fn sample_db() -> Database {
        let schema = SchemaBuilder::new()
            .table(
                TableBuilder::new("ligand")
                    .column("ligand_id", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .nullable("comment", ColumnType::Text)
                    .primary_key(&["ligand_id"]),
            )
            .table(
                TableBuilder::new("interaction")
                    .column("interaction_id", ColumnType::Int)
                    .column("ligand_id", ColumnType::Int)
                    .primary_key(&["interaction_id"])
                    .foreign_key(&["ligand_id"], "ligand"),
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert(
            "ligand",
            vec![685.into(), "calcitonin".into(), Value::Null],
        )
        .unwrap();
        db.insert("interaction", vec![1.into(), 685.into()]).unwrap();
        db
    }

    #[test]
    fn tuple_uris_follow_convention() {
        let db = sample_db();
        let mut v = Vocab::new();
        let e = direct_mapping(
            &db,
            &MappingOptions::new("http://gtopdb.org/ver1/"),
            &mut v,
        );
        assert!(v.find_uri("http://gtopdb.org/ver1/ligand/685").is_some());
        assert!(v
            .find_uri("http://gtopdb.org/ver1/interaction/1")
            .is_some());
        assert!(v.find_uri("http://gtopdb.org/ver1/ligand#name").is_some());
        assert!(e.entities.contains_key("row:ligand:685"));
    }

    #[test]
    fn null_emits_no_triple() {
        let db = sample_db();
        let mut v = Vocab::new();
        let e = direct_mapping(
            &db,
            &MappingOptions::new("http://g/v1/"),
            &mut v,
        );
        // ligand: type + ligand_id + name (comment NULL) = 3;
        // interaction: type + interaction_id + ref = 3. Total 6.
        assert_eq!(e.graph.triple_count(), 6);
        assert!(v.find_uri("http://g/v1/ligand#comment").is_none());
    }

    #[test]
    fn reference_points_to_tuple_uri() {
        let db = sample_db();
        let mut v = Vocab::new();
        let e = direct_mapping(
            &db,
            &MappingOptions::new("http://g/v1/"),
            &mut v,
        );
        let g = e.graph.graph();
        let inter = e.entities["row:interaction:1"];
        let lig = e.entities["row:ligand:685"];
        let refp = e.entities["ref:interaction:ligand_id"];
        assert!(g.has_triple(inter, refp, lig));
    }

    #[test]
    fn ground_truth_joins_on_persistent_keys() {
        let db = sample_db();
        let mut v = Vocab::new();
        let e1 = direct_mapping(&db, &MappingOptions::new("http://g/v1/"), &mut v);
        let e2 = direct_mapping(&db, &MappingOptions::new("http://g/v2/"), &mut v);
        let gt = ground_truth(&e1, &e2);
        // 2 rows + 2 tables + 3 attrs (ligand_id, name, interaction_id)
        // + 1 ref pred + rdf:type = 9.
        assert_eq!(gt.len(), 9);
        assert_eq!(
            gt.target_of(e1.entities["row:ligand:685"]),
            Some(e2.entities["row:ligand:685"])
        );
    }

    #[test]
    fn no_type_triples_option() {
        let db = sample_db();
        let mut v = Vocab::new();
        let mut opts = MappingOptions::new("http://g/v1/");
        opts.type_triples = false;
        let e = direct_mapping(&db, &opts, &mut v);
        assert_eq!(e.graph.triple_count(), 4);
        assert!(v.find_uri(RDF_TYPE).is_none());
    }
}
