//! Input resolution for the CLI pipeline: every subcommand that reads a
//! graph goes through here, so `.rdfb` single-file stores, `.rdfm`
//! sharded manifests and plain N-Triples text are accepted anywhere a
//! store path is accepted — resolved by file *content* (container magic
//! and kind byte), never by extension.

use crate::CliError;
use rdf_align::Threads;
use rdf_model::{rebase_into, RdfGraph, Vocab};
use rdf_obs::Recorder;
use rdf_store::AnyReader;
use std::path::Path;

pub(crate) fn ctx(path: &Path, e: impl std::fmt::Display) -> CliError {
    CliError::new(format!("{}: {e}", path.display()))
}

/// Sniff a file: `.rdfb`/`.rdfm` containers open with the `RDFB` magic,
/// anything else is treated as N-Triples text.
pub fn is_store(path: &Path) -> Result<bool, CliError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path).map_err(|e| ctx(path, e))?;
    let mut magic = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match file.read(&mut magic[got..]).map_err(|e| ctx(path, e))? {
            0 => return Ok(false),
            n => got += n,
        }
    }
    Ok(magic == rdf_store::MAGIC)
}

/// Open a store of either on-disk layout (single-file or sharded),
/// with the path baked into any error. This is the one store-opening
/// path the CLI has: `info`, `export` and `align` all route through it
/// instead of assuming a single-file store exists.
pub fn open_any(path: &Path) -> Result<AnyReader, CliError> {
    rdf_store::open_any(path).map_err(|e| ctx(path, e))
}

/// Load either input format (store of either layout, or N-Triples) into
/// the shared session vocabulary, on the default thread configuration.
pub fn load_input(
    path: &Path,
    vocab: &mut Vocab,
) -> Result<RdfGraph, CliError> {
    load_input_with(path, vocab, Threads::Auto)
}

/// [`load_input`] with an explicit thread configuration — `threads`
/// drives the parallel shard load for manifests and is ignored
/// otherwise. The loaded graph is identical for every thread count.
pub fn load_input_with(
    path: &Path,
    vocab: &mut Vocab,
    threads: Threads,
) -> Result<RdfGraph, CliError> {
    load_input_traced(path, vocab, threads, &Recorder::disabled())
}

/// [`load_input_with`] with instrumentation: store loads emit
/// `store.open` / `store.section` / `shard.load` spans into `rec`
/// (N-Triples text loads are not instrumented). The loaded graph is
/// identical to the untraced load.
pub fn load_input_traced(
    path: &Path,
    vocab: &mut Vocab,
    threads: Threads,
    rec: &Recorder,
) -> Result<RdfGraph, CliError> {
    if is_store(path)? {
        let (store_vocab, graph) = open_any(path)?
            .read_graph_traced(threads, rec)
            .map_err(|e| ctx(path, e))?;
        // Re-express the store's dictionary in the session vocabulary:
        // O(|dictionary|) string work, nothing per node or triple.
        Ok(rebase_into(vocab, &store_vocab, &graph))
    } else {
        rdf_io::load_file(path, vocab).map_err(|e| ctx(path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::RdfGraphBuilder;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rdf-cli-pipeline-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The open-any satellite: nonexistent paths, `.rdfb` single files
    /// and `.rdfm` manifests each resolve correctly (and with the path
    /// in the error message on failure).
    #[test]
    fn open_any_covers_every_input_shape() {
        let dir = tmp("openany");
        let mut vocab = Vocab::new();
        let g = {
            let mut b = RdfGraphBuilder::new(&mut vocab);
            b.uub("ss", "address", "b1");
            b.bul("b1", "zip", "EH8");
            b.finish()
        };
        let single = dir.join("g.rdfb");
        rdf_store::save_graph(&single, &vocab, &g).unwrap();
        let manifest = dir.join("g.rdfm");
        rdf_store::save_sharded(&manifest, &vocab, &g, 3).unwrap();

        assert!(matches!(
            open_any(&single).unwrap(),
            AnyReader::Single(_)
        ));
        assert!(matches!(
            open_any(&manifest).unwrap(),
            AnyReader::Sharded(_)
        ));
        let err = open_any(&dir.join("absent.rdfb")).unwrap_err();
        assert!(err.to_string().contains("absent.rdfb"), "got: {err}");

        // And both layouts load to the same graph through the shared
        // session-vocabulary path.
        let mut session = Vocab::new();
        let a = load_input(&single, &mut session).unwrap();
        let b =
            load_input_with(&manifest, &mut session, Threads::Fixed(2))
                .unwrap();
        assert_eq!(a.graph().triples(), b.graph().triples());
        assert_eq!(a.graph().labels_raw(), b.graph().labels_raw());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
