//! `rdf` — the pipeline from the shell: N-Triples → store → alignment.
//!
//! ```text
//! rdf import [--shards N] [--layout varint|fixed] [--trace PATH]
//!            <input.nt> <output>
//! rdf export <input> <output.nt>
//! rdf info   [--bisim [--streaming]] [--threads N] [--trace PATH] <file>
//! rdf align  [--method trivial|deblank|hybrid|overlap] [--theta T]
//!            [--threads N] [--streaming] [--trace PATH]
//!            <source> <target>
//! rdf stats  <trace.jsonl>
//! rdf gen    [--scale F] [--versions N] --out-dir DIR
//! rdf serve  [--socket SOCK] [--threads N] [--cache-bytes B]
//! rdf request [--socket SOCK] [--trace-out PATH] <request-json>
//! ```
//!
//! Store inputs may be `.rdfb` single files or `.rdfm` sharded
//! manifests, and `align` also accepts N-Triples files, mixed freely
//! (format is resolved from the magic bytes and container kind).
//! Refinement — and the sharded load — runs on the deterministic
//! parallel engine: `--threads` only changes wall-clock time, never the
//! output, and `--streaming` swaps in the shard-at-a-time engine
//! without changing the output either.

use rdf_align::{Recorder, Threads};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: rdf <command> [options]

commands:
  import [--shards N] [--layout varint|fixed] [--trace PATH]
         <input.nt> <output>
                                    parse N-Triples (streaming) into a
                                    store: one .rdfb file, or with
                                    --shards N a .rdfm manifest plus N
                                    subject-hash-partitioned shards;
                                    --layout fixed writes the zero-copy
                                    fixed-width section layout (v2)
  export <input> <output.nt>        write a store (single-file or
                                    sharded) as canonical N-Triples
  info   [--bisim [--streaming]] [--threads N] [--trace PATH] <file>
                                    header, counts, sections/shards,
                                    checksums; --bisim adds a maximal-
                                    bisimulation summary (graph stores);
                                    --streaming computes it shard-at-a-
                                    time from a .rdfm manifest, never
                                    materialising the stitched graph
  align  [--method M] [--theta T] [--threads N] [--streaming]
         [--trace PATH] <source> <target>
                                    align two graphs (stores, manifests
                                    or N-Triples, mixed freely);
                                    M = trivial|deblank|hybrid|overlap
                                    (default hybrid); --streaming runs
                                    the refinement fixpoints shard-at-a-
                                    time (byte-identical report; inputs
                                    are still loaded to build the union;
                                    not for overlap)
  stats  <trace.jsonl>              aggregate a --trace file into a
                                    table of span / counter / gauge
                                    totals (per-phase time breakdown)
  gen    [--scale F] [--versions N] --out-dir DIR
                                    write seeded EFO-like N-Triples fixtures
  serve  [--socket SOCK] [--threads N] [--cache-bytes B]
                                    run the alignment daemon: answer
                                    line-delimited JSON requests over a
                                    unix socket (or SOCK = tcp:HOST:PORT)
                                    with a cached store pool; SIGTERM
                                    shuts it down cleanly (exit 0)
  request [--socket SOCK] [--trace-out PATH] <request-json>
                                    send one JSON request line to a
                                    running daemon and print the report
                                    (byte-identical to the one-shot
                                    command); see docs/PROTOCOL.md

threading:
  --threads N                       N = auto | positive integer (default
                                    auto). Refinement output is identical
                                    for every N; only wall time changes.
                                    auto uses the RDF_THREADS environment
                                    variable when set, else all cores.

tracing:
  --trace PATH                      (import|info|align) append one JSONL
                                    event per timed span to PATH, plus a
                                    final aggregated report line. Setting
                                    RDF_TRACE=PATH traces without the
                                    flag. Tracing never changes a
                                    command's stdout — reports stay
                                    byte-identical.

Run `rdf <command> --help` for per-command details.

EXAMPLES
  rdf gen --scale 0.25 --versions 2 --out-dir /tmp/efo
  rdf import --shards 4 /tmp/efo/efo-v1.nt /tmp/efo/v1.rdfm
  rdf import --shards 4 /tmp/efo/efo-v2.nt /tmp/efo/v2.rdfm
  rdf info --bisim --streaming /tmp/efo/v1.rdfm
  rdf align --method hybrid --streaming --trace /tmp/efo/trace.jsonl /tmp/efo/v1.rdfm /tmp/efo/v2.rdfm
  rdf stats /tmp/efo/trace.jsonl
";

const HELP_IMPORT: &str = "\
usage: rdf import [--shards N] [--layout varint|fixed] [--trace PATH]
                  <input.nt> <output>

Parse N-Triples (streaming, one line resident at a time) into a
dictionary-encoded store. Without --shards the output is a single
.rdfb file; with --shards N it is a .rdfm manifest plus N
subject-hash-partitioned .rdfb shard files written next to it.
--layout selects the section encoding: varint (default, the v1 bytes)
or fixed, the v2 fixed-width layout whose id columns load zero-copy
(`rdf info` shows the resulting layout and load mode). Readers resolve
the layout from the store header, never the extension, so both
layouts are accepted everywhere a store is. --trace PATH (or
RDF_TRACE=PATH) appends timing events as JSONL; see `rdf stats`.

EXAMPLES
  rdf import /tmp/efo/efo-v1.nt /tmp/efo/v1.rdfb
  rdf import --layout fixed /tmp/efo/efo-v1.nt /tmp/efo/v1.rdfb
  rdf import --shards 4 /tmp/efo/efo-v1.nt /tmp/efo/v1.rdfm
";

const HELP_EXPORT: &str = "\
usage: rdf export <input> <output.nt>

Write a store of either layout (single-file .rdfb or sharded .rdfm)
back out as canonical, line-sorted N-Triples.

EXAMPLES
  rdf export /tmp/efo/v1.rdfb /tmp/efo/v1-canonical.nt
  rdf export /tmp/efo/v1.rdfm /tmp/efo/v1-canonical.nt
";

const HELP_INFO: &str = "\
usage: rdf info [--bisim [--streaming]] [--threads N] [--trace PATH]
                <file>

Report the container header, counts and per-section (or per-shard)
sizes; every checksum — including each shard file of a manifest — is
verified first. --bisim adds a maximal-bisimulation summary (classes,
rounds) for graph stores, computed on the deterministic parallel
engine. --bisim --streaming computes the same summary shard-at-a-time
from a .rdfm manifest: only the color vector plus one shard's columns
per worker stay resident, and the line is byte-identical. --trace PATH
(or RDF_TRACE=PATH) appends load and refinement timing events as
JSONL; see `rdf stats`.

EXAMPLES
  rdf info /tmp/efo/v1.rdfb
  rdf info --bisim --threads 4 /tmp/efo/v1.rdfb
  rdf info --bisim --streaming /tmp/efo/v1.rdfm
";

const HELP_ALIGN: &str = "\
usage: rdf align [--method M] [--theta T] [--threads N] [--streaming]
                 [--trace PATH] <source> <target>

Align two graph versions and print the report of §5 metrics. Inputs
may be .rdfb stores, .rdfm sharded manifests or N-Triples text, mixed
freely. M = trivial|deblank|hybrid|overlap (default hybrid); --theta
sets the overlap threshold. --streaming runs every refinement fixpoint
shard-at-a-time (trivial|deblank|hybrid only) — the report is
byte-identical to the in-RAM engine's at every thread count. Note that
align still loads both inputs and builds their union in memory; only
the refinement working set is shard-bounded (the fully external path
is `rdf info --bisim --streaming`). --trace PATH (or RDF_TRACE=PATH)
appends load, union and per-round refinement timing events as JSONL
without changing the report; see `rdf stats`.

EXAMPLES
  rdf align --method hybrid /tmp/efo/v1.rdfb /tmp/efo/v2.rdfb
  rdf align --method overlap --theta 0.5 /tmp/efo/v1.rdfb /tmp/efo/v2.rdfb
  rdf align --streaming /tmp/efo/v1.rdfm /tmp/efo/v2.rdfm
";

const HELP_STATS: &str = "\
usage: rdf stats <trace.jsonl>

Aggregate a --trace run into a table: one row per span family (count,
total ms, mean us), then counter and gauge totals. The input is the
JSONL file written by `rdf import|info|align --trace PATH` (or with
RDF_TRACE=PATH set); its format is specified in docs/TRACE_FORMAT.md.

EXAMPLES
  rdf align --trace /tmp/efo/trace.jsonl /tmp/efo/v1.rdfb /tmp/efo/v2.rdfb
  rdf stats /tmp/efo/trace.jsonl
";

const HELP_GEN: &str = "\
usage: rdf gen [--scale F] [--versions N] --out-dir DIR

Write the first N versions of the seeded EFO-like dataset as
N-Triples files (efo-v1.nt, efo-v2.nt, ...) — the fixture generator
for smoke tests and benchmarks.

EXAMPLES
  rdf gen --scale 0.25 --versions 2 --out-dir /tmp/efo
";

const HELP_SERVE: &str = "\
usage: rdf serve [--socket SOCK] [--threads N] [--cache-bytes B]

Run the long-lived alignment daemon. SOCK is a unix socket path or
tcp:HOST:PORT (default: the RDF_SOCKET environment variable). Clients
send one JSON object per line — ops import|info|align|stats, each with
an optional per-request thread budget and trace toggle — and get one
JSON response line back; `info` and `align` reports are byte-identical
to the one-shot commands' stdout. docs/PROTOCOL.md is the normative
wire spec.

Align inputs that are single-file stores are decoded once and kept in
an in-memory pool keyed by content hash, bounded by --cache-bytes B
(default 268435456): a warm request skips the store open entirely.
Eviction is least-recently-used by resident bytes, preferring to keep
fixed-layout (v2) stores. Requests are handled by a persistent worker
gang of --threads N (default auto). SIGTERM or SIGINT drains in-flight
requests and exits 0.

EXAMPLES
  rdf serve --socket /tmp/rdf.sock --threads 4 &
  rdf request --socket /tmp/rdf.sock '{\"op\":\"stats\"}'
";

const HELP_REQUEST: &str = "\
usage: rdf request [--socket SOCK] [--trace-out PATH] <request-json>

Send one request line to a running `rdf serve` daemon and print the
report text — byte-identical to the matching one-shot command. SOCK is
a unix socket path or tcp:HOST:PORT (default: the RDF_SOCKET
environment variable). With --trace-out PATH and \"trace\":true in the
request, the server's per-request JSONL trace is written to PATH
(readable by `rdf stats`). Protocol errors print as `rdf: serve
<kind>: <message>` and exit 2.

EXAMPLES
  rdf request --socket /tmp/rdf.sock '{\"op\":\"info\",\"path\":\"/tmp/efo/v1.rdfb\"}'
  rdf request --socket /tmp/rdf.sock '{\"op\":\"align\",\"source\":\"/tmp/efo/v1.rdfb\",\"target\":\"/tmp/efo/v2.rdfb\"}'
";

/// Whether the argument list asks for help.
fn wants_help(rest: &[String]) -> bool {
    rest.iter().any(|a| a == "--help" || a == "-h")
}

/// Resolve the tracing recorder for a command: the `--trace` flag wins,
/// else the `RDF_TRACE` environment variable, else tracing is disabled.
///
/// The trace file is opened *eagerly*, before any input is touched: an
/// unwritable trace path fails the whole command up front with an error
/// naming that path, instead of surfacing at the first flush after
/// minutes of work.
fn trace_recorder(
    flag: Option<PathBuf>,
) -> Result<Arc<Recorder>, String> {
    let path = flag
        .or_else(|| std::env::var_os("RDF_TRACE").map(PathBuf::from));
    match path {
        Some(p) => Recorder::jsonl_file(&p)
            .map(Arc::new)
            .map_err(|e| {
                format!("trace file {}: cannot open: {e}", p.display())
            }),
        None => Ok(Arc::new(Recorder::disabled())),
    }
}

/// Flush the trace (writing the final aggregated report line) after a
/// command completed. A no-op for the disabled recorder.
fn finish_trace(rec: &Recorder) -> Result<(), String> {
    rec.finish().map(|_| ()).map_err(|e| format!("trace: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("rdf: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let (cmd, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    match cmd.as_str() {
        "import" => {
            if wants_help(rest) {
                return Ok(HELP_IMPORT.to_string());
            }
            let mut shards: Option<usize> = None;
            let mut layout = rdf_store::Layout::default();
            let mut trace: Option<PathBuf> = None;
            let mut inputs: Vec<PathBuf> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--layout" => {
                        let name =
                            it.next().ok_or("--layout needs a value")?;
                        layout = rdf_store::Layout::from_cli(name)
                            .ok_or_else(|| {
                                format!(
                                    "unknown layout {name:?} \
                                     (expected varint|fixed)"
                                )
                            })?;
                    }
                    "--shards" => {
                        let n = it
                            .next()
                            .ok_or("--shards needs a count")?
                            .parse::<usize>()
                            .map_err(|_| "--shards needs a count")?;
                        if n == 0 {
                            return Err(
                                "--shards needs a positive count".into()
                            );
                        }
                        shards = Some(n);
                    }
                    "--trace" => {
                        trace = Some(PathBuf::from(
                            it.next().ok_or("--trace needs a path")?,
                        ));
                    }
                    other => inputs.push(PathBuf::from(other)),
                }
            }
            let [input, output]: [PathBuf; 2] = inputs
                .try_into()
                .map_err(|_| "import takes exactly two paths")?;
            let rec = trace_recorder(trace)?;
            let out =
                rdf_cli::import_traced(&input, &output, shards, layout, &rec)
                    .map_err(|e| e.to_string())?;
            finish_trace(&rec)?;
            Ok(out)
        }
        "export" => {
            if wants_help(rest) {
                return Ok(HELP_EXPORT.to_string());
            }
            let [input, output] = two_paths(rest, "export")?;
            rdf_cli::export(&input, &output).map_err(|e| e.to_string())
        }
        "info" => {
            if wants_help(rest) {
                return Ok(HELP_INFO.to_string());
            }
            let mut bisim = false;
            let mut streaming = false;
            let mut threads = Threads::Auto;
            let mut trace: Option<PathBuf> = None;
            let mut inputs: Vec<PathBuf> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--bisim" => bisim = true,
                    "--streaming" => streaming = true,
                    "--threads" => {
                        threads = Threads::parse(
                            it.next().ok_or("--threads needs a value")?,
                        )?;
                    }
                    "--trace" => {
                        trace = Some(PathBuf::from(
                            it.next().ok_or("--trace needs a path")?,
                        ));
                    }
                    other => inputs.push(PathBuf::from(other)),
                }
            }
            let [input]: [PathBuf; 1] = inputs
                .try_into()
                .map_err(|_| "info takes exactly one file")?;
            let rec = trace_recorder(trace)?;
            let out = rdf_cli::info_traced(
                &input,
                bisim.then_some(threads),
                streaming,
                &rec,
            )
            .map_err(|e| e.to_string())?;
            finish_trace(&rec)?;
            Ok(out)
        }
        "align" => {
            if wants_help(rest) {
                return Ok(HELP_ALIGN.to_string());
            }
            let mut method = "hybrid".to_string();
            let mut theta: Option<f64> = None;
            let mut threads = Threads::Auto;
            let mut streaming = false;
            let mut trace: Option<PathBuf> = None;
            let mut inputs: Vec<PathBuf> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--streaming" => streaming = true,
                    "--trace" => {
                        trace = Some(PathBuf::from(
                            it.next().ok_or("--trace needs a path")?,
                        ));
                    }
                    "--method" => {
                        method = it
                            .next()
                            .ok_or("--method needs a value")?
                            .clone();
                    }
                    "--theta" => {
                        theta = Some(
                            it.next()
                                .ok_or("--theta needs a number")?
                                .parse()
                                .map_err(|_| "--theta needs a number")?,
                        );
                    }
                    "--threads" => {
                        threads = Threads::parse(
                            it.next().ok_or("--threads needs a value")?,
                        )?;
                    }
                    other => inputs.push(PathBuf::from(other)),
                }
            }
            let [source, target]: [PathBuf; 2] = inputs
                .try_into()
                .map_err(|_| "align takes exactly two inputs")?;
            let rec = trace_recorder(trace)?;
            let outcome = rdf_cli::align_traced(
                &source, &target, &method, theta, threads, streaming, &rec,
            )
            .map_err(|e| e.to_string())?;
            finish_trace(&rec)?;
            Ok(outcome.render())
        }
        "stats" => {
            if wants_help(rest) {
                return Ok(HELP_STATS.to_string());
            }
            let [trace] = match rest {
                [a] => [PathBuf::from(a)],
                _ => return Err("stats takes exactly one trace file".into()),
            };
            rdf_cli::stats(&trace).map_err(|e| e.to_string())
        }
        "gen" => {
            if wants_help(rest) {
                return Ok(HELP_GEN.to_string());
            }
            let mut scale = 0.25f64;
            let mut versions = 2usize;
            let mut out_dir: Option<PathBuf> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => {
                        scale = it
                            .next()
                            .ok_or("--scale needs a number")?
                            .parse()
                            .map_err(|_| "--scale needs a number")?;
                    }
                    "--versions" => {
                        versions = it
                            .next()
                            .ok_or("--versions needs a count")?
                            .parse()
                            .map_err(|_| "--versions needs a count")?;
                    }
                    "--out-dir" => {
                        out_dir = Some(PathBuf::from(
                            it.next().ok_or("--out-dir needs a path")?,
                        ));
                    }
                    other => {
                        return Err(format!("unknown gen argument {other}"))
                    }
                }
            }
            let out_dir = out_dir.ok_or("gen requires --out-dir")?;
            rdf_cli::gen(&out_dir, scale, versions).map_err(|e| e.to_string())
        }
        "serve" => {
            if wants_help(rest) {
                return Ok(HELP_SERVE.to_string());
            }
            let mut socket: Option<String> = None;
            let mut threads = Threads::Auto;
            let mut cache_bytes = rdf_cli::serve::DEFAULT_CACHE_BYTES;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => {
                        socket = Some(
                            it.next().ok_or("--socket needs a value")?.clone(),
                        );
                    }
                    "--threads" => {
                        threads = Threads::parse(
                            it.next().ok_or("--threads needs a value")?,
                        )?;
                    }
                    "--cache-bytes" => {
                        cache_bytes = it
                            .next()
                            .ok_or("--cache-bytes needs a byte count")?
                            .parse::<u64>()
                            .map_err(|_| {
                                "--cache-bytes needs a byte count"
                            })?;
                    }
                    other => {
                        return Err(format!(
                            "unknown serve argument {other}"
                        ))
                    }
                }
            }
            let socket = resolve_socket(socket)?;
            rdf_cli::serve::serve(&socket, threads, cache_bytes)
                .map_err(|e| e.to_string())
        }
        "request" => {
            if wants_help(rest) {
                return Ok(HELP_REQUEST.to_string());
            }
            let mut socket: Option<String> = None;
            let mut trace_out: Option<PathBuf> = None;
            let mut lines: Vec<String> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => {
                        socket = Some(
                            it.next().ok_or("--socket needs a value")?.clone(),
                        );
                    }
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(
                            it.next().ok_or("--trace-out needs a path")?,
                        ));
                    }
                    other => lines.push(other.to_string()),
                }
            }
            let [line]: [String; 1] = lines.try_into().map_err(|_| {
                "request takes exactly one JSON request line"
            })?;
            let socket = resolve_socket(socket)?;
            rdf_cli::serve::request(&socket, &line, trace_out.as_deref())
                .map_err(|e| e.to_string())
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Resolve the daemon socket: `--socket` wins, else `RDF_SOCKET`.
fn resolve_socket(flag: Option<String>) -> Result<String, String> {
    flag.or_else(|| {
        std::env::var(rdf_serve::SOCKET_ENV)
            .ok()
            .filter(|s| !s.is_empty())
    })
    .ok_or_else(|| {
        format!(
            "no socket: pass --socket PATH (or tcp:HOST:PORT) or set {}",
            rdf_serve::SOCKET_ENV
        )
    })
}

fn two_paths(rest: &[String], cmd: &str) -> Result<[PathBuf; 2], String> {
    match rest {
        [a, b] => Ok([PathBuf::from(a), PathBuf::from(b)]),
        _ => Err(format!("{cmd} takes exactly two paths")),
    }
}
