//! `rdf` — the pipeline from the shell: N-Triples → store → alignment.
//!
//! ```text
//! rdf import [--shards N] <input.nt> <output>
//! rdf export <input> <output.nt>
//! rdf info   [--bisim] [--threads N] <file>
//! rdf align  [--method trivial|deblank|hybrid|overlap] [--theta T]
//!            [--threads N] <source> <target>
//! rdf gen    [--scale F] [--versions N] --out-dir DIR
//! ```
//!
//! Store inputs may be `.rdfb` single files or `.rdfm` sharded
//! manifests, and `align` also accepts N-Triples files, mixed freely
//! (format is resolved from the magic bytes and container kind).
//! Refinement — and the sharded load — runs on the deterministic
//! parallel engine: `--threads` only changes wall-clock time, never the
//! output.

use rdf_align::Threads;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rdf <command> [options]

commands:
  import [--shards N] <input.nt> <output>
                                    parse N-Triples (streaming) into a
                                    store: one .rdfb file, or with
                                    --shards N a .rdfm manifest plus N
                                    subject-hash-partitioned shards
  export <input> <output.nt>        write a store (single-file or
                                    sharded) as canonical N-Triples
  info   [--bisim] [--threads N] <file>
                                    header, counts, sections/shards,
                                    checksums; --bisim adds a maximal-
                                    bisimulation summary (graph stores)
  align  [--method M] [--theta T] [--threads N] <source> <target>
                                    align two graphs (stores, manifests
                                    or N-Triples, mixed freely);
                                    M = trivial|deblank|hybrid|overlap
                                    (default hybrid)
  gen    [--scale F] [--versions N] --out-dir DIR
                                    write seeded EFO-like N-Triples fixtures

threading:
  --threads N                       N = auto | positive integer (default
                                    auto). Refinement output is identical
                                    for every N; only wall time changes.
                                    auto uses the RDF_THREADS environment
                                    variable when set, else all cores.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("rdf: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let (cmd, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    match cmd.as_str() {
        "import" => {
            let mut shards: Option<usize> = None;
            let mut inputs: Vec<PathBuf> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--shards" => {
                        let n = it
                            .next()
                            .ok_or("--shards needs a count")?
                            .parse::<usize>()
                            .map_err(|_| "--shards needs a count")?;
                        if n == 0 {
                            return Err(
                                "--shards needs a positive count".into()
                            );
                        }
                        shards = Some(n);
                    }
                    other => inputs.push(PathBuf::from(other)),
                }
            }
            let [input, output]: [PathBuf; 2] = inputs
                .try_into()
                .map_err(|_| "import takes exactly two paths")?;
            rdf_cli::import(&input, &output, shards)
                .map_err(|e| e.to_string())
        }
        "export" => {
            let [input, output] = two_paths(rest, "export")?;
            rdf_cli::export(&input, &output).map_err(|e| e.to_string())
        }
        "info" => {
            let mut bisim = false;
            let mut threads = Threads::Auto;
            let mut inputs: Vec<PathBuf> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--bisim" => bisim = true,
                    "--threads" => {
                        threads = Threads::parse(
                            it.next().ok_or("--threads needs a value")?,
                        )?;
                    }
                    other => inputs.push(PathBuf::from(other)),
                }
            }
            let [input]: [PathBuf; 1] = inputs
                .try_into()
                .map_err(|_| "info takes exactly one file")?;
            rdf_cli::info(&input, bisim.then_some(threads))
                .map_err(|e| e.to_string())
        }
        "align" => {
            let mut method = "hybrid".to_string();
            let mut theta: Option<f64> = None;
            let mut threads = Threads::Auto;
            let mut inputs: Vec<PathBuf> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--method" => {
                        method = it
                            .next()
                            .ok_or("--method needs a value")?
                            .clone();
                    }
                    "--theta" => {
                        theta = Some(
                            it.next()
                                .ok_or("--theta needs a number")?
                                .parse()
                                .map_err(|_| "--theta needs a number")?,
                        );
                    }
                    "--threads" => {
                        threads = Threads::parse(
                            it.next().ok_or("--threads needs a value")?,
                        )?;
                    }
                    other => inputs.push(PathBuf::from(other)),
                }
            }
            let [source, target]: [PathBuf; 2] = inputs
                .try_into()
                .map_err(|_| "align takes exactly two inputs")?;
            let outcome =
                rdf_cli::align(&source, &target, &method, theta, threads)
                    .map_err(|e| e.to_string())?;
            Ok(outcome.render())
        }
        "gen" => {
            let mut scale = 0.25f64;
            let mut versions = 2usize;
            let mut out_dir: Option<PathBuf> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => {
                        scale = it
                            .next()
                            .ok_or("--scale needs a number")?
                            .parse()
                            .map_err(|_| "--scale needs a number")?;
                    }
                    "--versions" => {
                        versions = it
                            .next()
                            .ok_or("--versions needs a count")?
                            .parse()
                            .map_err(|_| "--versions needs a count")?;
                    }
                    "--out-dir" => {
                        out_dir = Some(PathBuf::from(
                            it.next().ok_or("--out-dir needs a path")?,
                        ));
                    }
                    other => {
                        return Err(format!("unknown gen argument {other}"))
                    }
                }
            }
            let out_dir = out_dir.ok_or("gen requires --out-dir")?;
            rdf_cli::gen(&out_dir, scale, versions).map_err(|e| e.to_string())
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn two_paths(rest: &[String], cmd: &str) -> Result<[PathBuf; 2], String> {
    match rest {
        [a, b] => Ok([PathBuf::from(a), PathBuf::from(b)]),
        _ => Err(format!("{cmd} takes exactly two paths")),
    }
}
