//! Library half of the `rdf` command-line tool.
//!
//! Each subcommand is a plain function returning its report text, so the
//! end-to-end tests can call the exact code the binary runs (and compare
//! the binary's stdout against it byte-for-byte). Inputs may be `.rdfb`
//! single-file stores, `.rdfm` sharded-store manifests, or N-Triples
//! text; the format is resolved by [`pipeline`] from the file's magic
//! bytes and container kind, never the extension.

#![warn(missing_docs)]

pub mod pipeline;
pub mod serve;
pub mod signals;

use crate::pipeline::{ctx, open_any};
use rdf_align::pipeline::{
    align_streaming_with_recorder, align_with_recorder, Aligned, Method,
    DEFAULT_STREAM_SHARDS,
};
use rdf_align::{RefineEngine, StreamingRefineEngine, Threads};
use rdf_model::{ShardColumnsSource, Vocab};
use rdf_obs::{Recorder, RunReport};
use rdf_store::{AnyReader, BorrowedStoreReader, Layout};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

pub use pipeline::{load_input, load_input_traced, load_input_with};

/// Any failure surfaced to the CLI user, with file context baked into
/// the message.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// `rdf import [--shards N] [--layout varint|fixed] <input.nt>
/// <output>` — stream-parse N-Triples into a dictionary-encoded store.
/// Without `--shards` the output is one `.rdfb` file; with `--shards N`
/// it is a `.rdfm` manifest plus N subject-hash-partitioned shard files
/// next to it. `layout` selects the section encoding: varint (the
/// default, byte-identical to previous releases) or the fixed-width
/// zero-copy layout.
pub fn import(
    input: &Path,
    output: &Path,
    shards: Option<usize>,
    layout: Layout,
) -> Result<String, CliError> {
    import_traced(input, output, shards, layout, &Recorder::disabled())
}

/// [`import`] with instrumentation: the streaming parse+write (or, for
/// sharded output, the parse and the sharded write separately) are
/// wrapped in spans. The report text is byte-identical to the untraced
/// run.
pub fn import_traced(
    input: &Path,
    output: &Path,
    shards: Option<usize>,
    layout: Layout,
    rec: &Recorder,
) -> Result<String, CliError> {
    let file = std::fs::File::open(input).map_err(|e| ctx(input, e))?;
    let reader = std::io::BufReader::new(file);
    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    match shards {
        None => {
            let out =
                std::fs::File::create(output).map_err(|e| ctx(output, e))?;
            let mut sp = rec.span("import.run");
            sp.field("bytes_in", in_bytes);
            let (vocab, graph) = rdf_store::import_ntriples_layout(
                reader,
                std::io::BufWriter::new(out),
                layout,
            )
            .map_err(|e| ctx(input, e))?;
            sp.field("nodes", graph.node_count());
            sp.field("triples", graph.triple_count());
            drop(sp);
            let out_bytes =
                std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
            Ok(format!(
                "imported {} -> {}\n  nodes {} triples {} labels {}\n  {} bytes -> {} bytes\n",
                input.display(),
                output.display(),
                graph.node_count(),
                graph.triple_count(),
                vocab.len(),
                in_bytes,
                out_bytes,
            ))
        }
        Some(n) => {
            let mut vocab = Vocab::new();
            let graph = {
                let mut sp = rec.span("import.parse");
                sp.field("bytes_in", in_bytes);
                rdf_io::parse_graph_reader(reader, &mut vocab)
                    .map_err(|e| ctx(input, e))?
            };
            let paths = {
                let mut sp = rec.span("import.write");
                sp.field("shards", n);
                sp.field("triples", graph.triple_count());
                rdf_store::save_sharded_layout(
                    output, &vocab, &graph, n, layout,
                )
                .map_err(|e| ctx(output, e))?
            };
            let out_bytes: u64 = paths
                .iter()
                .map(|p| {
                    std::fs::metadata(p).map(|m| m.len()).unwrap_or(0)
                })
                .sum();
            Ok(format!(
                "imported {} -> {} ({} shards)\n  nodes {} triples {} labels {}\n  {} bytes -> {} bytes across {} files\n",
                input.display(),
                output.display(),
                n,
                graph.node_count(),
                graph.triple_count(),
                vocab.len(),
                in_bytes,
                out_bytes,
                paths.len(),
            ))
        }
    }
}

/// `rdf export <input> <output.nt>` — write a store of either layout
/// back out as canonical (line-sorted) N-Triples.
pub fn export(input: &Path, output: &Path) -> Result<String, CliError> {
    let (vocab, graph) = open_any(input)?
        .read_graph(Threads::Auto)
        .map_err(|e| ctx(input, e))?;
    rdf_io::save_file(output, &graph, &vocab).map_err(|e| ctx(output, e))?;
    Ok(format!(
        "exported {} -> {}\n  nodes {} triples {}\n",
        input.display(),
        output.display(),
        graph.node_count(),
        graph.triple_count(),
    ))
}

/// `rdf info [--bisim [--streaming] [--threads N]] <file>` — header,
/// counts and per-section (or per-shard) sizes; all checksums —
/// including every shard file of a manifest — are verified before this
/// returns.
///
/// With `bisim = Some(threads)`, graph stores additionally get a
/// maximal-bisimulation summary (quotient classes and rounds) computed
/// through the parallel [`RefineEngine`] on the given thread
/// configuration. With `streaming` also set, the summary is computed
/// by the shard-at-a-time [`StreamingRefineEngine`] straight from the
/// shard files — the stitched graph is never materialised, so this
/// requires a `.rdfm` manifest. The summary is byte-identical either
/// way.
pub fn info(
    input: &Path,
    bisim: Option<Threads>,
    streaming: bool,
) -> Result<String, CliError> {
    info_traced(input, bisim, streaming, &Arc::new(Recorder::disabled()))
}

/// [`info`] with instrumentation: store loads emit `store.open` /
/// `store.section` / `shard.load` spans and the `--bisim` refinement
/// emits its `refine.*` spans into `rec`. The report text is
/// byte-identical to the untraced run.
pub fn info_traced(
    input: &Path,
    bisim: Option<Threads>,
    streaming: bool,
    rec: &Arc<Recorder>,
) -> Result<String, CliError> {
    if streaming && bisim.is_none() {
        return Err(CliError::new("--streaming requires --bisim"));
    }
    match open_any(input)? {
        AnyReader::Single(reader) => {
            let info = reader.info().map_err(|e| ctx(input, e))?;
            let kind = match info.header.kind {
                rdf_store::KIND_GRAPH => "graph store",
                rdf_store::KIND_ARCHIVE => "archive",
                rdf_store::KIND_SHARD => {
                    "graph shard (load via its .rdfm manifest)"
                }
                _ => "unknown",
            };
            let [c0, c1, c2] = info.header.counts;
            let counts = match info.header.kind {
                rdf_store::KIND_GRAPH => {
                    format!("labels {c0} nodes {c1} triples {c2}")
                }
                rdf_store::KIND_ARCHIVE => {
                    format!("versions {c0} entities {c1} distinct-triples {c2}")
                }
                rdf_store::KIND_SHARD => {
                    format!("shard-index {c0} triples {c2}")
                }
                _ => format!("{c0} {c1} {c2}"),
            };
            let mut out = format!(
                "{}: RDFB v{} {kind}, {} bytes, checksums OK\n  {counts}\n",
                input.display(),
                info.header.version,
                info.file_bytes,
            );
            for (tag, bytes) in &info.sections {
                out.push_str(&format!(
                    "  section {tag}  {bytes} bytes  [{}]\n",
                    section_encoding(info.layout, tag),
                ));
            }
            if info.header.kind == rdf_store::KIND_GRAPH {
                out.push_str(&format!(
                    "  layout {}, load mode {}\n",
                    info.layout,
                    load_mode_label(&info),
                ));
            }
            if let Some(threads) = bisim {
                if streaming {
                    return Err(ctx(
                        input,
                        "--streaming requires a sharded store \
                         (.rdfm manifest)",
                    ));
                }
                if info.header.kind == rdf_store::KIND_GRAPH {
                    // Zero-copy path: serve the id columns as a view of
                    // the (mapped) store buffer — fixed-layout stores
                    // never materialise owned triple vectors here.
                    let breader = BorrowedStoreReader::open(input)
                        .map_err(|e| ctx(input, e))?;
                    let (_, view) = breader
                        .read_view_traced(rec)
                        .map_err(|e| ctx(input, e))?;
                    let cols = view.out_columns();
                    let mut engine =
                        RefineEngine::with_recorder(threads, Arc::clone(rec));
                    let outcome =
                        engine.bisimulation_columns(view.labels(), &cols);
                    out.push_str(&bisim_line(
                        outcome.partition.num_colors(),
                        view.node_count(),
                        outcome.rounds,
                        engine.threads(),
                    ));
                } else {
                    out.push_str(
                        "  bisimulation: n/a (not a graph store)\n",
                    );
                }
            }
            Ok(out)
        }
        AnyReader::Sharded(reader) => {
            // With --bisim the graph is needed anyway, so gather the
            // info summary in the same pass instead of reading and
            // CRC-checking every shard file twice. On the streaming
            // path the graph is deliberately *not* materialised:
            // open_streaming_traced validates every shard exactly once
            // (that pass doubles as the info summary), then the
            // streaming engine re-reads the shards round by round
            // without further checksum work.
            let (info, graph, stream) = match (bisim, streaming) {
                (Some(_), true) => {
                    let (store, info) = reader
                        .open_streaming_traced(Arc::clone(rec))
                        .map_err(|e| ctx(input, e))?;
                    (info, None, Some(store))
                }
                (None, _) => {
                    (reader.info().map_err(|e| ctx(input, e))?, None, None)
                }
                (Some(threads), false) => {
                    let (info, _, graph) = reader
                        .read_graph_with_info_traced(threads, rec)
                        .map_err(|e| ctx(input, e))?;
                    (info, Some(graph), None)
                }
            };
            let m = &info.manifest;
            let mut out = format!(
                "{}: RDFB v{} sharded graph store ({} shards), {} bytes \
                 total, checksums OK\n  nodes {} triples {} seed {:#018x}\n",
                input.display(),
                info.version,
                m.shards.len(),
                info.total_bytes(),
                m.nodes,
                m.triples,
                m.seed,
            );
            out.push_str(&format!(
                "  layout {}\n",
                Layout::from_version(info.version).unwrap_or_default(),
            ));
            for (k, (entry, bytes)) in
                m.shards.iter().zip(&info.shard_bytes).enumerate()
            {
                out.push_str(&format!(
                    "  shard {k}: {}  triples {}  {} bytes\n",
                    entry.name, entry.triples, bytes,
                ));
            }
            match (bisim, streaming, &graph) {
                (Some(threads), true, _) => {
                    // Shard-at-a-time: only the color vector plus one
                    // shard's columns per worker are ever resident.
                    // The store (recorder already attached) comes from
                    // the validating open above.
                    let store = stream.expect("opened on the streaming arm");
                    let mut engine = StreamingRefineEngine::with_recorder(
                        threads,
                        Arc::clone(rec),
                    );
                    let bisim = engine
                        .bisimulation(&store, store.labels())
                        .map_err(|e| ctx(input, e))?;
                    out.push_str(&bisim_line(
                        bisim.partition.num_colors(),
                        store.node_count(),
                        bisim.rounds,
                        engine.threads(),
                    ));
                }
                (Some(threads), false, Some(graph)) => {
                    out.push_str(&bisim_summary(graph, threads, rec));
                }
                _ => {}
            }
            Ok(out)
        }
    }
}

/// Render a store's load mode for `rdf info`. A widening load names
/// the column width that forced it — `widen (width 2)` — so operators
/// can see *why* the zero-copy path was skipped; `borrow` and `decode`
/// render as before.
fn load_mode_label(info: &rdf_store::StoreInfo) -> String {
    match (info.mode, info.trpl_width) {
        (rdf_store::LoadMode::Widen, Some(w)) => {
            format!("widen (width {w})")
        }
        (mode, _) => mode.to_string(),
    }
}

/// The encoding variant a section body uses under a given layout: the
/// fixed-width (v2) layout re-encodes only the id columns (`NODE`,
/// `TRPL`); every other body stays varint (8-padded).
fn section_encoding(layout: Layout, tag: &str) -> &'static str {
    match (layout, tag) {
        (Layout::Fixed, "NODE" | "TRPL") => "fixed",
        _ => "varint",
    }
}

/// Render the `info --bisim` summary line for a loaded graph.
fn bisim_summary(
    graph: &rdf_model::RdfGraph,
    threads: Threads,
    rec: &Arc<Recorder>,
) -> String {
    let mut engine = RefineEngine::with_recorder(threads, Arc::clone(rec));
    let bisim = engine.bisimulation(graph.graph());
    bisim_line(
        bisim.partition.num_colors(),
        graph.node_count(),
        bisim.rounds,
        engine.threads(),
    )
}

/// The one `info --bisim` summary format, shared by the in-RAM and
/// streaming paths so their reports stay byte-identical.
fn bisim_line(
    classes: u32,
    nodes: usize,
    rounds: usize,
    threads: usize,
) -> String {
    format!(
        "  bisimulation: {classes} classes / {nodes} nodes in {rounds} \
         rounds ({threads} threads)\n",
    )
}

/// Parse a `--method` argument.
pub fn parse_method(
    name: &str,
    theta: Option<f64>,
) -> Result<Method, CliError> {
    match name {
        "trivial" => Ok(Method::Trivial),
        "deblank" => Ok(Method::Deblank),
        "hybrid" => Ok(Method::Hybrid),
        "overlap" => Ok(match theta {
            Some(t) => Method::overlap_with_theta(t),
            None => Method::overlap(),
        }),
        other => Err(CliError::new(format!(
            "unknown method {other:?} (expected trivial|deblank|hybrid|overlap)"
        ))),
    }
}

/// `rdf align` outcome: the full pipeline result plus input context.
pub struct AlignOutcome {
    /// Method name as given on the command line.
    pub method: String,
    /// Source path and (nodes, triples).
    pub source: (String, usize, usize),
    /// Target path and (nodes, triples).
    pub target: (String, usize, usize),
    /// The pipeline result (edge stats, node counts, unaligned nodes).
    pub aligned: Aligned,
}

impl AlignOutcome {
    /// Render the alignment report.
    pub fn render(&self) -> String {
        let a = &self.aligned;
        let (su, tu) =
            a.unaligned.iter().fold((0usize, 0usize), |(s, t), &n| {
                match a.combined.side(n) {
                    rdf_model::Side::Source => (s + 1, t),
                    rdf_model::Side::Target => (s, t + 1),
                }
            });
        format!(
            "alignment report (method = {})\n\
             \x20 source: {} (nodes {}, triples {})\n\
             \x20 target: {} (nodes {}, triples {})\n\
             \x20 aligned edge ratio    : {:.6} ({} / {} classes, {} common)\n\
             \x20 aligned edge instances: {} (source {}/{}, target {}/{})\n\
             \x20 aligned node classes  : {}\n\
             \x20 aligned nodes         : source {}/{}, target {}/{} (non-literal)\n\
             \x20 unaligned nodes       : {} (source {}, target {})\n",
            self.method,
            self.source.0,
            self.source.1,
            self.source.2,
            self.target.0,
            self.target.1,
            self.target.2,
            a.edges.ratio(),
            a.edges.source_classes,
            a.edges.target_classes,
            a.edges.common_classes,
            a.edges.aligned_instances(),
            a.edges.aligned_source_edges,
            a.edges.total_source_edges,
            a.edges.aligned_target_edges,
            a.edges.total_target_edges,
            a.nodes.aligned_classes,
            a.nodes.aligned_source_nodes,
            a.nodes.total_source_nodes,
            a.nodes.aligned_target_nodes,
            a.nodes.total_target_nodes,
            a.unaligned.len(),
            su,
            tu,
        )
    }
}

/// `rdf align [--method M] [--theta T] [--threads N] [--streaming]
/// <source> <target>` — run the full pipeline over two inputs
/// (single-file stores, sharded manifests or N-Triples, mixed freely).
/// Refinement — and the sharded load, when a manifest is given — runs
/// on the configured thread count; the reported metrics are
/// bit-identical for every count.
///
/// With `streaming`, every refinement fixpoint runs through the
/// shard-at-a-time [`StreamingRefineEngine`] over a range
/// decomposition of the combined graph (methods `trivial`, `deblank`
/// and `hybrid` only) — the report stays byte-identical to the in-RAM
/// engine's.
pub fn align(
    source: &Path,
    target: &Path,
    method_name: &str,
    theta: Option<f64>,
    threads: Threads,
    streaming: bool,
) -> Result<AlignOutcome, CliError> {
    align_traced(
        source,
        target,
        method_name,
        theta,
        threads,
        streaming,
        &Arc::new(Recorder::disabled()),
    )
}

/// [`align`] with instrumentation: input loads emit store spans and
/// the pipeline emits `align.*` / `refine.*` spans into `rec`. The
/// rendered report is byte-identical to the untraced run — tracing is
/// a pure side channel.
#[allow(clippy::too_many_arguments)]
pub fn align_traced(
    source: &Path,
    target: &Path,
    method_name: &str,
    theta: Option<f64>,
    threads: Threads,
    streaming: bool,
    rec: &Arc<Recorder>,
) -> Result<AlignOutcome, CliError> {
    let method = parse_method(method_name, theta)?;
    let mut vocab = Vocab::new();
    let g1 = load_input_traced(source, &mut vocab, threads, rec)?;
    let g2 = load_input_traced(target, &mut vocab, threads, rec)?;
    let aligned = if streaming {
        align_streaming_with_recorder(
            &vocab,
            &g1,
            &g2,
            method,
            threads,
            DEFAULT_STREAM_SHARDS,
            Arc::clone(rec),
        )
        .map_err(|e| CliError::new(e.to_string()))?
    } else {
        align_with_recorder(&vocab, &g1, &g2, method, threads, Arc::clone(rec))
    };
    Ok(AlignOutcome {
        method: method_name.to_string(),
        source: (
            source.display().to_string(),
            g1.node_count(),
            g1.triple_count(),
        ),
        target: (
            target.display().to_string(),
            g2.node_count(),
            g2.triple_count(),
        ),
        aligned,
    })
}

/// `rdf stats <trace.jsonl>` — aggregate a `--trace` run (or re-render
/// its final report line) as a table of span, counter and gauge totals.
pub fn stats(trace: &Path) -> Result<String, CliError> {
    let text =
        std::fs::read_to_string(trace).map_err(|e| ctx(trace, e))?;
    let report = RunReport::from_jsonl(&text).map_err(|e| ctx(trace, e))?;
    Ok(report.render_table())
}

/// `rdf gen [--scale F] [--versions N] --out-dir DIR` — write the first
/// `N` versions of the seeded EFO-like dataset as N-Triples files
/// (`efo-v1.nt`, `efo-v2.nt`, …): the fixture generator for smoke tests.
pub fn gen(
    out_dir: &Path,
    scale: f64,
    versions: usize,
) -> Result<String, CliError> {
    let mut cfg = rdf_datagen::EfoConfig::default().scaled(scale);
    cfg.versions = versions.max(1);
    let ds = rdf_datagen::generate_efo(&cfg);
    std::fs::create_dir_all(out_dir).map_err(|e| ctx(out_dir, e))?;
    let mut out = String::new();
    for (i, v) in ds.versions.iter().enumerate() {
        let path = out_dir.join(format!("efo-v{}.nt", i + 1));
        rdf_io::save_file(&path, &v.graph, &ds.vocab)
            .map_err(|e| ctx(&path, e))?;
        out.push_str(&format!(
            "wrote {} (nodes {}, triples {})\n",
            path.display(),
            v.graph.node_count(),
            v.graph.triple_count(),
        ));
    }
    Ok(out)
}
