//! Library half of the `rdf` command-line tool.
//!
//! Each subcommand is a plain function returning its report text, so the
//! end-to-end tests can call the exact code the binary runs (and compare
//! the binary's stdout against it byte-for-byte). Inputs to [`align`]
//! may be `.rdfb` stores or N-Triples text; the format is sniffed from
//! the file's magic bytes, never the extension.

#![warn(missing_docs)]

use rdf_align::pipeline::{align_with as pipeline_align_with, Aligned, Method};
use rdf_align::{RefineEngine, Threads};
use rdf_model::{LabelId, LabelKind, RdfGraph, TripleGraph, Vocab};
use std::fmt;
use std::path::Path;

/// Any failure surfaced to the CLI user, with file context baked into
/// the message.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn ctx(path: &Path, e: impl fmt::Display) -> CliError {
    CliError::new(format!("{}: {e}", path.display()))
}

/// `rdf import <input.nt> <output.rdfb>` — stream-parse N-Triples into a
/// dictionary-encoded store.
pub fn import(input: &Path, output: &Path) -> Result<String, CliError> {
    let file = std::fs::File::open(input).map_err(|e| ctx(input, e))?;
    let reader = std::io::BufReader::new(file);
    let out = std::fs::File::create(output).map_err(|e| ctx(output, e))?;
    let (vocab, graph) =
        rdf_store::import_ntriples(reader, std::io::BufWriter::new(out))
            .map_err(|e| ctx(input, e))?;
    let out_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "imported {} -> {}\n  nodes {} triples {} labels {}\n  {} bytes -> {} bytes\n",
        input.display(),
        output.display(),
        graph.node_count(),
        graph.triple_count(),
        vocab.len(),
        in_bytes,
        out_bytes,
    ))
}

/// `rdf export <input.rdfb> <output.nt>` — write a store back out as
/// canonical (line-sorted) N-Triples.
pub fn export(input: &Path, output: &Path) -> Result<String, CliError> {
    let (vocab, graph) =
        rdf_store::load_graph(input).map_err(|e| ctx(input, e))?;
    rdf_io::save_file(output, &graph, &vocab).map_err(|e| ctx(output, e))?;
    Ok(format!(
        "exported {} -> {}\n  nodes {} triples {}\n",
        input.display(),
        output.display(),
        graph.node_count(),
        graph.triple_count(),
    ))
}

/// `rdf info [--bisim [--threads N]] <file.rdfb>` — header, counts and
/// per-section sizes; all checksums are verified before this returns.
///
/// With `bisim = Some(threads)`, graph stores additionally get a
/// maximal-bisimulation summary (quotient classes and rounds) computed
/// through the parallel [`RefineEngine`] on the given thread
/// configuration.
pub fn info(
    input: &Path,
    bisim: Option<Threads>,
) -> Result<String, CliError> {
    let reader =
        rdf_store::StoreReader::open(input).map_err(|e| ctx(input, e))?;
    let info = reader.info().map_err(|e| ctx(input, e))?;
    let kind = match info.header.kind {
        rdf_store::KIND_GRAPH => "graph store",
        rdf_store::KIND_ARCHIVE => "archive",
        _ => "unknown",
    };
    let [c0, c1, c2] = info.header.counts;
    let counts = match info.header.kind {
        rdf_store::KIND_GRAPH => {
            format!("labels {c0} nodes {c1} triples {c2}")
        }
        rdf_store::KIND_ARCHIVE => {
            format!("versions {c0} entities {c1} distinct-triples {c2}")
        }
        _ => format!("{c0} {c1} {c2}"),
    };
    let mut out = format!(
        "{}: RDFB v{} {kind}, {} bytes, checksums OK\n  {counts}\n",
        input.display(),
        info.header.version,
        info.file_bytes,
    );
    for (tag, bytes) in &info.sections {
        out.push_str(&format!("  section {tag}  {bytes} bytes\n"));
    }
    if let Some(threads) = bisim {
        if info.header.kind == rdf_store::KIND_GRAPH {
            // Decode from the reader's already-loaded bytes rather than
            // re-reading the file from disk.
            let (_, graph) =
                reader.read_graph().map_err(|e| ctx(input, e))?;
            let mut engine = RefineEngine::new(threads);
            let bisim = engine.bisimulation(graph.graph());
            out.push_str(&format!(
                "  bisimulation: {} classes / {} nodes in {} rounds \
                 ({} threads)\n",
                bisim.partition.num_colors(),
                graph.node_count(),
                bisim.rounds,
                engine.threads(),
            ));
        } else {
            out.push_str("  bisimulation: n/a (not a graph store)\n");
        }
    }
    Ok(out)
}

/// Sniff a file: `.rdfb` containers open with the `RDFB` magic, anything
/// else is treated as N-Triples text.
fn is_store(path: &Path) -> Result<bool, CliError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path).map_err(|e| ctx(path, e))?;
    let mut magic = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match file.read(&mut magic[got..]).map_err(|e| ctx(path, e))? {
            0 => return Ok(false),
            n => got += n,
        }
    }
    Ok(magic == rdf_store::MAGIC)
}

/// Re-express a loaded store graph's labels in `vocab` (interning each
/// distinct dictionary entry once — `O(|dictionary|)` string work,
/// nothing per triple).
fn remap_into(
    vocab: &mut Vocab,
    store_vocab: &Vocab,
    g: &RdfGraph,
) -> RdfGraph {
    let mut map = vec![LabelId::BLANK; store_vocab.len()];
    for (i, slot) in map.iter_mut().enumerate() {
        let id = LabelId(i as u32);
        *slot = match store_vocab.kind(id) {
            LabelKind::Blank => LabelId::BLANK,
            LabelKind::Uri => vocab.uri(store_vocab.text(id)),
            LabelKind::Literal => vocab.literal(store_vocab.text(id)),
        };
    }
    let labels: Vec<LabelId> = g
        .graph()
        .labels_raw()
        .iter()
        .map(|l| map[l.index()])
        .collect();
    let graph = TripleGraph::from_raw_parts(
        labels,
        g.graph().kinds_raw().to_vec(),
        g.graph().triples().to_vec(),
    )
    .expect("remapped graph preserves structure");
    RdfGraph::from_raw_parts(graph, g.blank_names().clone())
}

/// Load either input format into the shared session vocabulary.
pub fn load_input(
    path: &Path,
    vocab: &mut Vocab,
) -> Result<RdfGraph, CliError> {
    if is_store(path)? {
        let (store_vocab, graph) =
            rdf_store::load_graph(path).map_err(|e| ctx(path, e))?;
        Ok(remap_into(vocab, &store_vocab, &graph))
    } else {
        rdf_io::load_file(path, vocab).map_err(|e| ctx(path, e))
    }
}

/// Parse a `--method` argument.
pub fn parse_method(
    name: &str,
    theta: Option<f64>,
) -> Result<Method, CliError> {
    match name {
        "trivial" => Ok(Method::Trivial),
        "deblank" => Ok(Method::Deblank),
        "hybrid" => Ok(Method::Hybrid),
        "overlap" => Ok(match theta {
            Some(t) => Method::overlap_with_theta(t),
            None => Method::overlap(),
        }),
        other => Err(CliError::new(format!(
            "unknown method {other:?} (expected trivial|deblank|hybrid|overlap)"
        ))),
    }
}

/// `rdf align` outcome: the full pipeline result plus input context.
pub struct AlignOutcome {
    /// Method name as given on the command line.
    pub method: String,
    /// Source path and (nodes, triples).
    pub source: (String, usize, usize),
    /// Target path and (nodes, triples).
    pub target: (String, usize, usize),
    /// The pipeline result (edge stats, node counts, unaligned nodes).
    pub aligned: Aligned,
}

impl AlignOutcome {
    /// Render the alignment report.
    pub fn render(&self) -> String {
        let a = &self.aligned;
        let (su, tu) =
            a.unaligned.iter().fold((0usize, 0usize), |(s, t), &n| {
                match a.combined.side(n) {
                    rdf_model::Side::Source => (s + 1, t),
                    rdf_model::Side::Target => (s, t + 1),
                }
            });
        format!(
            "alignment report (method = {})\n\
             \x20 source: {} (nodes {}, triples {})\n\
             \x20 target: {} (nodes {}, triples {})\n\
             \x20 aligned edge ratio    : {:.6} ({} / {} classes, {} common)\n\
             \x20 aligned edge instances: {} (source {}/{}, target {}/{})\n\
             \x20 aligned node classes  : {}\n\
             \x20 aligned nodes         : source {}/{}, target {}/{} (non-literal)\n\
             \x20 unaligned nodes       : {} (source {}, target {})\n",
            self.method,
            self.source.0,
            self.source.1,
            self.source.2,
            self.target.0,
            self.target.1,
            self.target.2,
            a.edges.ratio(),
            a.edges.source_classes,
            a.edges.target_classes,
            a.edges.common_classes,
            a.edges.aligned_instances(),
            a.edges.aligned_source_edges,
            a.edges.total_source_edges,
            a.edges.aligned_target_edges,
            a.edges.total_target_edges,
            a.nodes.aligned_classes,
            a.nodes.aligned_source_nodes,
            a.nodes.total_source_nodes,
            a.nodes.aligned_target_nodes,
            a.nodes.total_target_nodes,
            a.unaligned.len(),
            su,
            tu,
        )
    }
}

/// `rdf align [--method M] [--theta T] [--threads N] <source> <target>`
/// — run the full pipeline over two inputs (stores or N-Triples, mixed
/// freely). Refinement runs on the parallel engine; the reported
/// metrics are bit-identical for every thread count.
pub fn align(
    source: &Path,
    target: &Path,
    method_name: &str,
    theta: Option<f64>,
    threads: Threads,
) -> Result<AlignOutcome, CliError> {
    let method = parse_method(method_name, theta)?;
    let mut vocab = Vocab::new();
    let g1 = load_input(source, &mut vocab)?;
    let g2 = load_input(target, &mut vocab)?;
    let aligned = pipeline_align_with(&vocab, &g1, &g2, method, threads);
    Ok(AlignOutcome {
        method: method_name.to_string(),
        source: (
            source.display().to_string(),
            g1.node_count(),
            g1.triple_count(),
        ),
        target: (
            target.display().to_string(),
            g2.node_count(),
            g2.triple_count(),
        ),
        aligned,
    })
}

/// `rdf gen [--scale F] [--versions N] --out-dir DIR` — write the first
/// `N` versions of the seeded EFO-like dataset as N-Triples files
/// (`efo-v1.nt`, `efo-v2.nt`, …): the fixture generator for smoke tests.
pub fn gen(
    out_dir: &Path,
    scale: f64,
    versions: usize,
) -> Result<String, CliError> {
    let mut cfg = rdf_datagen::EfoConfig::default().scaled(scale);
    cfg.versions = versions.max(1);
    let ds = rdf_datagen::generate_efo(&cfg);
    std::fs::create_dir_all(out_dir).map_err(|e| ctx(out_dir, e))?;
    let mut out = String::new();
    for (i, v) in ds.versions.iter().enumerate() {
        let path = out_dir.join(format!("efo-v{}.nt", i + 1));
        rdf_io::save_file(&path, &v.graph, &ds.vocab)
            .map_err(|e| ctx(&path, e))?;
        out.push_str(&format!(
            "wrote {} (nodes {}, triples {})\n",
            path.display(),
            v.graph.node_count(),
            v.graph.triple_count(),
        ));
    }
    Ok(out)
}
