//! The `rdf serve` daemon: alignment-as-a-service over a unix or tcp
//! socket.
//!
//! One-shot CLI invocations pay a full store load and engine setup per
//! request; this loop keeps both resident. The moving parts:
//!
//! * a line-delimited JSON protocol (types in the `rdf-serve` crate —
//!   `docs/PROTOCOL.md` is normative);
//! * an LRU **store cache** keyed by content hash: single-file graph
//!   stores are decoded once and served to every request; eviction is
//!   by resident bytes, preferring to keep fixed-layout (v2) entries,
//!   whose on-disk columns are the mmap-shareable ones;
//! * a persistent [`rdf_par::WorkerPool`] handling connections, so
//!   steady-state request handling never calls `thread::spawn`;
//! * per-request [`Recorder`]s, so traces stay isolated per client and
//!   can be returned in the response (`"trace":true`).
//!
//! Responses reuse the one-shot report renderers ([`crate::info_traced`],
//! [`crate::AlignOutcome::render`]) — there is no second rendering
//! path, which is what makes the byte-identity contract hold by
//! construction.

use crate::pipeline::{ctx, is_store, load_input_traced};
use crate::signals;
use crate::{AlignOutcome, CliError};
use rdf_align::pipeline::{
    align_streaming_with_recorder, align_with_recorder,
    DEFAULT_STREAM_SHARDS,
};
use rdf_align::Threads;
use rdf_model::{rebase_into, RdfGraph, Vocab};
use rdf_obs::Recorder;
use rdf_par::WorkerPool;
use rdf_serve::{ErrorKind, Request, Response};
use rdf_store::{Container, StoreReader, FORMAT_VERSION_FIXED, KIND_MANIFEST};
use std::io::{BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default cache budget: 256 MiB of resident store bytes.
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketSpec {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A tcp listener on this `HOST:PORT` address.
    Tcp(String),
}

impl SocketSpec {
    /// `tcp:HOST:PORT` is tcp; anything else is a unix socket path.
    pub fn parse(s: &str) -> SocketSpec {
        match s.strip_prefix("tcp:") {
            Some(addr) => SocketSpec::Tcp(addr.to_string()),
            None => SocketSpec::Unix(PathBuf::from(s)),
        }
    }
}

impl std::fmt::Display for SocketSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketSpec::Unix(p) => write!(f, "unix:{}", p.display()),
            SocketSpec::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// One decoded store, shared by every request that hits its key.
#[derive(Debug)]
struct CachedStore {
    vocab: Vocab,
    graph: RdfGraph,
}

#[derive(Debug)]
struct CacheEntry {
    key: u64,
    /// File bytes — the eviction currency. The decoded columns cost a
    /// small multiple of this; file size is the stable, cheap proxy.
    resident: u64,
    /// Fixed-layout (v2) store: preferred resident (its on-disk file
    /// is the one N processes can share via the page cache).
    v2: bool,
    /// Last-touched tick for LRU ordering.
    tick: u64,
    store: Arc<CachedStore>,
}

/// LRU store cache with a resident-byte budget (see `docs/PROTOCOL.md`
/// §cache). The budget is strict: inserting may evict everything,
/// including the entry just inserted (requests still hold their `Arc`,
/// so nothing is freed under them).
#[derive(Debug)]
struct StoreCache {
    budget: u64,
    tick: u64,
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl StoreCache {
    fn new(budget: u64) -> StoreCache {
        StoreCache {
            budget,
            tick: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn resident(&self) -> u64 {
        self.entries.iter().map(|e| e.resident).sum()
    }

    fn get(&mut self, key: u64) -> Option<Arc<CachedStore>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.tick = tick;
                self.hits += 1;
                Some(Arc::clone(&e.store))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(
        &mut self,
        key: u64,
        resident: u64,
        v2: bool,
        store: Arc<CachedStore>,
    ) {
        self.tick += 1;
        self.entries.push(CacheEntry {
            key,
            resident,
            v2,
            tick: self.tick,
            store,
        });
        // Evict by LRU until the budget holds, preferring to evict
        // varint (v1) entries first: fixed-layout stores are the ones
        // whose bytes the OS page cache can share across readers.
        while self.resident() > self.budget && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.v2)
                .min_by_key(|(_, e)| e.tick)
                .or_else(|| {
                    self.entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.tick)
                })
                .map(|(i, _)| i)
                .expect("entries is non-empty");
            self.entries.swap_remove(victim);
            self.evictions += 1;
        }
    }
}

/// Everything a request handler needs, shared across connections.
pub struct ServeState {
    started: Instant,
    default_threads: Threads,
    workers: usize,
    cache: Mutex<StoreCache>,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ServeState {
    /// Fresh state with the given cache budget.
    pub fn new(
        default_threads: Threads,
        workers: usize,
        cache_bytes: u64,
    ) -> ServeState {
        ServeState {
            started: Instant::now(),
            default_threads,
            workers,
            cache: Mutex::new(StoreCache::new(cache_bytes)),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Per-request thread budget: the request's `threads` field wins
    /// over the server default.
    fn threads_for(&self, req: Option<usize>) -> Threads {
        match req {
            Some(n) => Threads::Fixed(n),
            None => self.default_threads,
        }
    }

    /// Load one `align` input, through the cache when it is a
    /// single-file store. Returns the graph rebased into the request's
    /// session vocabulary plus whether it was served warm.
    ///
    /// Cached loads replay the exact one-shot pipeline
    /// ([`load_input_traced`]: decode → `rebase_into`), just with the
    /// decode memoised — so reports stay byte-identical, and a warm hit
    /// emits **no** `store.open` span (nothing is opened).
    fn load_cached(
        &self,
        path: &Path,
        session: &mut Vocab,
        threads: Threads,
        rec: &Recorder,
    ) -> Result<(RdfGraph, bool), CliError> {
        if !is_store(path)? {
            // N-Triples text: uncached (cheap relative to stores, and
            // keeping it out preserves the parse-order contract).
            return load_input_traced(path, session, threads, rec)
                .map(|g| (g, false));
        }
        let bytes = std::fs::read(path).map_err(|e| ctx(path, e))?;
        let header =
            Container::parse_header(&bytes).map_err(|e| ctx(path, e))?;
        if header.kind == KIND_MANIFEST {
            // Sharded store: the manifest hash would not cover the
            // shard files, so serve it uncached.
            return load_input_traced(path, session, threads, rec)
                .map(|g| (g, false));
        }
        let key = fnv1a(&bytes);
        let resident = bytes.len() as u64;
        let v2 = header.version == FORMAT_VERSION_FIXED;
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(store) = cache.get(key) {
            return Ok((
                rebase_into(session, &store.vocab, &store.graph),
                true,
            ));
        }
        // Miss: decode under the lock so concurrent requests for the
        // same store pay one decode, not N.
        let (vocab, graph) = StoreReader::from_bytes(bytes)
            .read_graph_traced(rec)
            .map_err(|e| ctx(path, e))?;
        let store = Arc::new(CachedStore { vocab, graph });
        cache.insert(key, resident, v2, Arc::clone(&store));
        Ok((rebase_into(session, &store.vocab, &store.graph), false))
    }

    /// Render the `stats` report.
    fn stats_text(&self) -> String {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        format!(
            "rdf serve stats\n\
             \x20 uptime_s {}\n\
             \x20 requests {} errors {}\n\
             \x20 workers {}\n\
             \x20 cache entries {} resident {} budget {}\n\
             \x20 cache hits {} misses {} evictions {}\n",
            self.started.elapsed().as_secs(),
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.workers,
            cache.entries.len(),
            cache.resident(),
            cache.budget,
            cache.hits,
            cache.misses,
            cache.evictions,
        )
    }
}

/// FNV-1a 64 over the file bytes: the cache key. Content-addressed, so
/// re-imports of identical data hit and rewritten files miss — no
/// mtime races.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A `Vec<u8>` sink shared with the recorder, so a request's JSONL
/// trace can be read back and returned in its response.
#[derive(Clone, Default)]
struct TraceBuf(Arc<Mutex<Vec<u8>>>);

impl Write for TraceBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl TraceBuf {
    fn take(&self) -> String {
        let bytes = std::mem::take(
            &mut *self.0.lock().unwrap_or_else(|e| e.into_inner()),
        );
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

/// Handle one parsed request, producing exactly one response. Panics
/// in a handler are caught and answered as [`ErrorKind::Internal`] —
/// one poisoned request must not take the connection (or the server)
/// down.
pub fn handle_request(state: &Arc<ServeState>, req: Request) -> Response {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let state2 = Arc::clone(state);
    let resp = catch_unwind(AssertUnwindSafe(move || {
        dispatch(&state2, req)
    }))
    .unwrap_or_else(|_| {
        Response::error(ErrorKind::Internal, "request handler panicked")
    });
    if matches!(resp, Response::Err { .. }) {
        state.errors.fetch_add(1, Ordering::Relaxed);
    }
    resp
}

fn dispatch(state: &Arc<ServeState>, req: Request) -> Response {
    let op = req.op().to_string();
    let want_trace = matches!(
        &req,
        Request::Import { trace: true, .. }
            | Request::Info { trace: true, .. }
            | Request::Align { trace: true, .. }
    );
    let buf = TraceBuf::default();
    let rec = if want_trace {
        Arc::new(Recorder::jsonl_writer(Box::new(buf.clone())))
    } else {
        Arc::new(Recorder::disabled())
    };

    let result: Result<(String, bool), CliError> = match req {
        Request::Import {
            input,
            output,
            shards,
            layout,
            threads: _,
            trace: _,
        } => {
            let layout = match &layout {
                None => Ok(rdf_store::Layout::default()),
                Some(name) => {
                    rdf_store::Layout::from_cli(name).ok_or_else(|| {
                        return_bad_request(format!(
                            "unknown layout {name:?} (expected \
                             varint|fixed)"
                        ))
                    })
                }
            };
            match layout {
                Err(resp) => return resp,
                Ok(layout) => crate::import_traced(
                    Path::new(&input),
                    Path::new(&output),
                    shards,
                    layout,
                    &rec,
                )
                .map(|report| (report, false)),
            }
        }
        Request::Info {
            path,
            bisim,
            streaming,
            threads,
            trace: _,
        } => {
            // `info` validates the on-disk bytes by contract (the
            // report says "checksums OK"), so it never reads from the
            // cache — it is the cache-bypass readback.
            let threads = state.threads_for(threads);
            crate::info_traced(
                Path::new(&path),
                bisim.then_some(threads),
                streaming,
                &rec,
            )
            .map(|report| (report, false))
        }
        Request::Align {
            source,
            target,
            method,
            theta,
            streaming,
            threads,
            trace: _,
        } => align_cached(
            state,
            &source,
            &target,
            &method,
            theta,
            streaming,
            state.threads_for(threads),
            &rec,
        ),
        Request::Stats => Ok((state.stats_text(), false)),
    };

    match result {
        Ok((report, cached)) => {
            let trace = if want_trace {
                let _ = rec.finish();
                Some(buf.take())
            } else {
                None
            };
            Response::Ok {
                op,
                report,
                cached,
                trace,
            }
        }
        Err(e) => Response::error(ErrorKind::Engine, e),
    }
}

/// Helper: build the bad-request response used by dispatch's layout
/// validation (kept out of line so the match stays readable).
fn return_bad_request(msg: String) -> Response {
    Response::error(ErrorKind::BadRequest, msg)
}

/// [`crate::align_traced`] with cached store loads: same session-vocab
/// construction, same pipeline, same renderer — the report is
/// byte-identical to the one-shot CLI's. `cached` is true only when
/// *every* store input came from the cache.
#[allow(clippy::too_many_arguments)]
fn align_cached(
    state: &ServeState,
    source: &str,
    target: &str,
    method_name: &str,
    theta: Option<f64>,
    streaming: bool,
    threads: Threads,
    rec: &Arc<Recorder>,
) -> Result<(String, bool), CliError> {
    let method = crate::parse_method(method_name, theta)?;
    let source = Path::new(source);
    let target = Path::new(target);
    let mut vocab = Vocab::new();
    let (g1, warm1) =
        state.load_cached(source, &mut vocab, threads, rec)?;
    let (g2, warm2) =
        state.load_cached(target, &mut vocab, threads, rec)?;
    let aligned = if streaming {
        align_streaming_with_recorder(
            &vocab,
            &g1,
            &g2,
            method,
            threads,
            DEFAULT_STREAM_SHARDS,
            Arc::clone(rec),
        )
        .map_err(|e| CliError::new(e.to_string()))?
    } else {
        align_with_recorder(&vocab, &g1, &g2, method, threads, Arc::clone(rec))
    };
    let outcome = AlignOutcome {
        method: method_name.to_string(),
        source: (
            source.display().to_string(),
            g1.node_count(),
            g1.triple_count(),
        ),
        target: (
            target.display().to_string(),
            g2.node_count(),
            g2.triple_count(),
        ),
        aligned,
    };
    Ok((outcome.render(), warm1 && warm2))
}

/// Serve one connection: read request lines, answer each with exactly
/// one response line. Malformed lines get a typed `bad_request` error;
/// the connection always stays open until the client closes it.
fn handle_conn<S: Read + Write>(stream: S, state: Arc<ServeState>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Request::parse(&line) {
            Ok(req) => handle_request(&state, req),
            Err(e) => {
                state.errors.fetch_add(1, Ordering::Relaxed);
                Response::error(ErrorKind::BadRequest, e)
            }
        };
        let out = resp.to_line();
        let s = reader.get_mut();
        if s.write_all(out.as_bytes()).is_err()
            || s.write_all(b"\n").is_err()
            || s.flush().is_err()
        {
            break;
        }
    }
}

/// Run the daemon until SIGTERM/SIGINT. Returns the shutdown report
/// line (printed by `main` after a clean exit).
pub fn serve(
    socket: &str,
    threads: Threads,
    cache_bytes: u64,
) -> Result<String, CliError> {
    let spec = SocketSpec::parse(socket);
    // Block the termination signals *before* spawning the pool, so
    // every worker inherits the mask and SIGTERM only ever surfaces on
    // the signalfd.
    let sig = match signals::setup() {
        Some(Ok(sig)) => Some(sig),
        Some(Err(e)) => {
            return Err(CliError::new(format!("signalfd: {e}")))
        }
        None => None,
    };
    let workers = threads.resolve().max(2);
    let pool = WorkerPool::new(Threads::Fixed(workers));
    let state =
        Arc::new(ServeState::new(threads, workers, cache_bytes));

    match &spec {
        SocketSpec::Unix(path) => {
            // A stale socket file from a previous run would make bind
            // fail; remove it (a live server would still conflict at
            // connect time, which is the error we want).
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| ctx(path, e))?;
            announce(&spec, workers, cache_bytes);
            let served = accept_loop(
                &listener,
                sig,
                &pool,
                &state,
                |l| l.accept().map(|(s, _)| s),
            )?;
            let _ = std::fs::remove_file(path);
            drop(listener);
            drop(pool); // joins workers: in-flight requests finish
            Ok(shutdown_line(served, &state))
        }
        SocketSpec::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| CliError::new(format!("{addr}: {e}")))?;
            announce(&spec, workers, cache_bytes);
            let served = accept_loop(
                &listener,
                sig,
                &pool,
                &state,
                |l| l.accept().map(|(s, _)| s),
            )?;
            drop(listener);
            drop(pool);
            Ok(shutdown_line(served, &state))
        }
    }
}

/// Print the readiness line eagerly (clients and CI wait for it).
fn announce(spec: &SocketSpec, workers: usize, cache_bytes: u64) {
    println!(
        "rdf serve: listening on {spec} ({workers} workers, cache \
         budget {cache_bytes} bytes)"
    );
    let _ = std::io::stdout().flush();
}

fn shutdown_line(signo: u32, state: &ServeState) -> String {
    format!(
        "rdf serve: shutdown on signal {signo} ({} requests served)\n",
        state.requests.load(Ordering::Relaxed),
    )
}

/// The accept loop, generic over the listener flavour. Returns the
/// signal number that ended it.
fn accept_loop<L, S, A>(
    listener: &L,
    sig: Option<signals::SignalFd>,
    pool: &WorkerPool,
    state: &Arc<ServeState>,
    accept: A,
) -> Result<u32, CliError>
where
    L: NonBlocking + RawFdLike,
    S: Read + Write + Send + 'static,
    A: Fn(&L) -> std::io::Result<S>,
{
    match sig {
        Some(sig) => {
            listener
                .set_nonblocking(true)
                .map_err(|e| CliError::new(format!("listener: {e}")))?;
            loop {
                match signals::wait(listener.raw_fd(), &sig)
                    .map_err(|e| CliError::new(format!("ppoll: {e}")))?
                {
                    signals::Wake::Signal(signo) => return Ok(signo),
                    signals::Wake::Connection => match accept(listener) {
                        Ok(stream) => {
                            let state = Arc::clone(state);
                            pool.submit(move || {
                                handle_conn(stream, state)
                            });
                        }
                        Err(e)
                            if e.kind()
                                == std::io::ErrorKind::WouldBlock =>
                        {
                            continue
                        }
                        Err(e) => {
                            return Err(CliError::new(format!(
                                "accept: {e}"
                            )))
                        }
                    },
                }
            }
        }
        None => {
            // No signalfd on this platform: serve until killed.
            loop {
                match accept(listener) {
                    Ok(stream) => {
                        let state = Arc::clone(state);
                        pool.submit(move || handle_conn(stream, state));
                    }
                    Err(e) => {
                        return Err(CliError::new(format!(
                            "accept: {e}"
                        )))
                    }
                }
            }
        }
    }
}

/// The two listener capabilities the accept loop needs, abstracted so
/// unix and tcp share one loop.
trait NonBlocking {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()>;
}

trait RawFdLike {
    fn raw_fd(&self) -> i32;
}

impl NonBlocking for std::os::unix::net::UnixListener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        std::os::unix::net::UnixListener::set_nonblocking(self, nb)
    }
}

impl NonBlocking for std::net::TcpListener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        std::net::TcpListener::set_nonblocking(self, nb)
    }
}

impl RawFdLike for std::os::unix::net::UnixListener {
    fn raw_fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.as_raw_fd()
    }
}

impl RawFdLike for std::net::TcpListener {
    fn raw_fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.as_raw_fd()
    }
}

/// The `rdf request` client: send one request line, print the report.
///
/// Connects to `socket` (same `tcp:` syntax as `serve`), writes `line`
/// plus a newline, reads exactly one response line and returns the
/// report text — which is byte-identical to the matching one-shot
/// command's stdout. With `trace_out`, the response's trace (requires
/// `"trace":true` in the request) is written to that path. A protocol
/// error response becomes a [`CliError`] naming the error kind.
pub fn request(
    socket: &str,
    line: &str,
    trace_out: Option<&Path>,
) -> Result<String, CliError> {
    let reply = match SocketSpec::parse(socket) {
        SocketSpec::Unix(path) => {
            let stream = std::os::unix::net::UnixStream::connect(&path)
                .map_err(|e| ctx(&path, e))?;
            roundtrip(stream, line)?
        }
        SocketSpec::Tcp(addr) => {
            let stream = std::net::TcpStream::connect(&addr)
                .map_err(|e| CliError::new(format!("{addr}: {e}")))?;
            roundtrip(stream, line)?
        }
    };
    let resp = Response::parse(&reply)
        .map_err(|e| CliError::new(format!("bad response: {e}")))?;
    match resp {
        Response::Ok { report, trace, .. } => {
            if let Some(path) = trace_out {
                std::fs::write(path, trace.unwrap_or_default())
                    .map_err(|e| ctx(path, e))?;
            }
            Ok(report)
        }
        Response::Err { kind, message } => {
            Err(CliError::new(format!("serve {kind}: {message}")))
        }
    }
}

/// Write one line, read one line.
fn roundtrip<S: Read + Write>(
    mut stream: S,
    line: &str,
) -> Result<String, CliError> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| CliError::new(format!("send: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .map_err(|e| CliError::new(format!("recv: {e}")))?;
    if reply.is_empty() {
        return Err(CliError::new(
            "connection closed before a response arrived",
        ));
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(
        dir: &Path,
        name: &str,
        layout: rdf_store::Layout,
    ) -> PathBuf {
        let mut vocab = Vocab::new();
        let g = {
            let mut b = rdf_model::RdfGraphBuilder::new(&mut vocab);
            b.uub("ss", "address", "b1");
            b.bul("b1", "zip", "EH8");
            // The file stem keeps each store's bytes distinct: the
            // cache is content-addressed, so identical content would
            // dedupe to one entry.
            b.uul("ss", "name", name);
            b.finish()
        };
        let path = dir.join(name);
        rdf_store::save_graph_layout(&path, &vocab, &g, layout).unwrap();
        path
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rdf-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn socket_spec_parses_both_flavours() {
        assert_eq!(
            SocketSpec::parse("/tmp/rdf.sock"),
            SocketSpec::Unix(PathBuf::from("/tmp/rdf.sock"))
        );
        assert_eq!(
            SocketSpec::parse("tcp:127.0.0.1:7878"),
            SocketSpec::Tcp("127.0.0.1:7878".into())
        );
    }

    #[test]
    fn cache_serves_warm_hits_and_counts() {
        let dir = tmp("cache");
        let path = store(&dir, "a.rdfb", rdf_store::Layout::Varint);
        let state =
            Arc::new(ServeState::new(Threads::Fixed(1), 1, 1 << 20));
        let rec = Recorder::disabled();
        let mut v1 = Vocab::new();
        let (g1, warm1) = state
            .load_cached(&path, &mut v1, Threads::Fixed(1), &rec)
            .unwrap();
        assert!(!warm1);
        let mut v2 = Vocab::new();
        let (g2, warm2) = state
            .load_cached(&path, &mut v2, Threads::Fixed(1), &rec)
            .unwrap();
        assert!(warm2);
        assert_eq!(g1.graph().triples(), g2.graph().triples());
        let cache = state.cache.lock().unwrap();
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_budget_evicts_and_prefers_v2_residents() {
        let dir = tmp("evict");
        let a = store(&dir, "a.rdfb", rdf_store::Layout::Varint);
        let b = store(&dir, "b.rdfb", rdf_store::Layout::Fixed);
        let c = store(&dir, "c.rdfb", rdf_store::Layout::Varint);
        let a_bytes = std::fs::metadata(&a).unwrap().len();
        let b_bytes = std::fs::metadata(&b).unwrap().len();
        // Budget fits the v1 + v2 pair but not a third store.
        let state = Arc::new(ServeState::new(
            Threads::Fixed(1),
            1,
            a_bytes + b_bytes,
        ));
        let rec = Recorder::disabled();
        for p in [&a, &b, &c] {
            let mut v = Vocab::new();
            state
                .load_cached(p, &mut v, Threads::Fixed(1), &rec)
                .unwrap();
        }
        let cache = state.cache.lock().unwrap();
        assert_eq!(cache.evictions, 1);
        // The fixed-layout (v2) store survived; the oldest varint
        // entry was the victim even though `a` was least recently
        // used *and* v2 `b` was older than `c`.
        assert!(cache.entries.iter().any(|e| e.v2));
        assert_eq!(cache.entries.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_get_typed_errors_and_keep_the_connection() {
        // Drive handle_conn over an in-memory stream: three bad lines
        // then a good stats request — all four get responses. The sink
        // is shared so the output survives handle_conn taking the
        // stream by value.
        #[derive(Clone, Default)]
        struct SharedOut(Arc<Mutex<Vec<u8>>>);
        struct Conn {
            input: std::io::Cursor<Vec<u8>>,
            out: SharedOut,
        }
        impl Read for Conn {
            fn read(
                &mut self,
                buf: &mut [u8],
            ) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Conn {
            fn write(
                &mut self,
                buf: &[u8],
            ) -> std::io::Result<usize> {
                self.out
                    .0
                    .lock()
                    .unwrap()
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let input = b"not json\n{\"op\":\"fly\"}\n{\"op\":\"align\"}\n{\"op\":\"stats\"}\n";
        let out = SharedOut::default();
        let conn = Conn {
            input: std::io::Cursor::new(input.to_vec()),
            out: out.clone(),
        };
        let state =
            Arc::new(ServeState::new(Threads::Fixed(1), 1, 1 << 20));
        handle_conn(conn, Arc::clone(&state));
        let text = String::from_utf8(
            out.0.lock().unwrap().clone(),
        )
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one response per line: {text}");
        for bad in &lines[..3] {
            let resp = Response::parse(bad).unwrap();
            assert!(
                matches!(
                    resp,
                    Response::Err {
                        kind: ErrorKind::BadRequest,
                        ..
                    }
                ),
                "expected bad_request, got {bad}"
            );
        }
        let last = Response::parse(lines[3]).unwrap();
        assert!(matches!(last, Response::Ok { .. }), "got {last:?}");
    }

    #[test]
    fn stats_reports_cache_and_request_counters() {
        let state =
            Arc::new(ServeState::new(Threads::Fixed(2), 2, 123));
        let resp = handle_request(&state, Request::Stats);
        match resp {
            Response::Ok { report, .. } => {
                assert!(report.contains("budget 123"), "{report}");
                assert!(report.contains("requests 1"), "{report}");
            }
            other => panic!("expected ok, got {other:?}"),
        }
    }
}
