//! Clean-shutdown plumbing for `rdf serve`: SIGTERM/SIGINT delivered
//! through a `signalfd(2)` instead of an async handler.
//!
//! The workspace is std-only (no libc, no signal-hook), so this is the
//! same raw-syscall idiom as `rdf_store`'s mmap path: block the
//! termination signals with `rt_sigprocmask(2)`, obtain a file
//! descriptor for them with `signalfd4(2)`, and `ppoll(2)` it next to
//! the listening socket. A delivered SIGTERM then surfaces as an
//! ordinary readable fd — the accept loop drains it and returns
//! normally, so the process exits 0 with every worker joined, instead
//! of dying mid-request with the default disposition's exit 143.
//!
//! Supported on Linux x86-64 and aarch64; [`setup`] returns `None`
//! elsewhere and the server falls back to a plain blocking accept loop
//! (no clean-shutdown contract off Linux).

use std::io;

/// `SIGINT` signal number.
pub const SIGINT: u32 = 2;
/// `SIGTERM` signal number.
pub const SIGTERM: u32 = 15;

/// What woke the accept loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The listener has a connection ready to accept.
    Connection,
    /// A termination signal arrived (value: the signal number).
    Signal(u32),
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{Wake, SIGINT, SIGTERM};
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: usize = 0;
        pub const CLOSE: usize = 3;
        pub const RT_SIGPROCMASK: usize = 14;
        pub const PPOLL: usize = 271;
        pub const SIGNALFD4: usize = 289;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: usize = 63;
        pub const CLOSE: usize = 57;
        pub const RT_SIGPROCMASK: usize = 135;
        pub const PPOLL: usize = 73;
        pub const SIGNALFD4: usize = 74;
    }

    const SIG_BLOCK: usize = 0;
    /// 8 bytes: the kernel sigset is 64 bits on both targets.
    const SIGSET_BYTES: usize = 8;
    const SFD_CLOEXEC: usize = 0o2000000;
    const POLLIN: i16 = 1;
    const EINTR: usize = 4;

    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    unsafe fn syscall5(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> usize {
        let ret: usize;
        // SAFETY: plain syscall instruction with the kernel's x86-64
        // calling convention; rcx/r11 are kernel-clobbered.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    #[allow(unsafe_code)]
    unsafe fn syscall5(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> usize {
        let ret: usize;
        // SAFETY: plain svc with the kernel's aarch64 convention.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                options(nostack)
            );
        }
        ret
    }

    fn check(ret: usize) -> io::Result<usize> {
        // Negative errno comes back as a huge usize.
        if ret > usize::MAX - 4095 {
            Err(io::Error::from_raw_os_error(
                (usize::MAX - ret + 1) as i32,
            ))
        } else {
            Ok(ret)
        }
    }

    /// Signal fd carrying blocked SIGTERM/SIGINT; closed on drop.
    #[derive(Debug)]
    pub struct SignalFd {
        fd: RawFd,
    }

    impl Drop for SignalFd {
        fn drop(&mut self) {
            // SAFETY: closing an fd this struct exclusively owns.
            #[allow(unsafe_code)]
            let _ = unsafe {
                syscall5(nr::CLOSE, self.fd as usize, 0, 0, 0, 0)
            };
        }
    }

    /// Block SIGTERM/SIGINT process-wide (threads spawned later
    /// inherit the mask) and return a signalfd for them.
    pub fn setup() -> io::Result<SignalFd> {
        let mask: u64 =
            (1u64 << (SIGTERM - 1)) | (1u64 << (SIGINT - 1));
        // SAFETY: both calls pass a valid 8-byte sigset that outlives
        // them; errors are surfaced through `check`.
        #[allow(unsafe_code)]
        let fd = unsafe {
            check(syscall5(
                nr::RT_SIGPROCMASK,
                SIG_BLOCK,
                (&mask as *const u64) as usize,
                0,
                SIGSET_BYTES,
                0,
            ))?;
            check(syscall5(
                nr::SIGNALFD4,
                usize::MAX, // -1: create a new fd
                (&mask as *const u64) as usize,
                SIGSET_BYTES,
                SFD_CLOEXEC,
                0,
            ))?
        };
        Ok(SignalFd { fd: fd as RawFd })
    }

    /// Block until the listener is readable or a signal arrives.
    pub fn wait(listener: RawFd, sig: &SignalFd) -> io::Result<Wake> {
        #[repr(C)]
        struct PollFd {
            fd: i32,
            events: i16,
            revents: i16,
        }
        loop {
            let mut fds = [
                PollFd {
                    fd: sig.fd,
                    events: POLLIN,
                    revents: 0,
                },
                PollFd {
                    fd: listener,
                    events: POLLIN,
                    revents: 0,
                },
            ];
            // SAFETY: ppoll with a valid 2-element array, no timeout,
            // no temporary sigmask.
            #[allow(unsafe_code)]
            let ret = unsafe {
                syscall5(
                    nr::PPOLL,
                    fds.as_mut_ptr() as usize,
                    fds.len(),
                    0,
                    0,
                    0,
                )
            };
            match check(ret) {
                Err(e)
                    if e.raw_os_error() == Some(EINTR as i32) =>
                {
                    continue
                }
                Err(e) => return Err(e),
                Ok(_) => {}
            }
            if fds[0].revents & POLLIN != 0 {
                // Drain one signalfd_siginfo record (128 bytes); the
                // leading u32 is the signal number.
                let mut buf = [0u8; 128];
                // SAFETY: reading into a live 128-byte buffer from an
                // fd this process owns.
                #[allow(unsafe_code)]
                let n = unsafe {
                    check(syscall5(
                        nr::READ,
                        sig.fd as usize,
                        buf.as_mut_ptr() as usize,
                        buf.len(),
                        0,
                        0,
                    ))?
                };
                let signo = if n >= 4 {
                    u32::from_ne_bytes([
                        buf[0], buf[1], buf[2], buf[3],
                    ])
                } else {
                    SIGTERM
                };
                return Ok(Wake::Signal(signo));
            }
            if fds[1].revents != 0 {
                return Ok(Wake::Connection);
            }
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub use sys::SignalFd;

/// Install the signal mask + signalfd where the platform supports it;
/// `None` means the caller must run without a clean-shutdown path.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn setup() -> Option<io::Result<SignalFd>> {
    Some(sys::setup())
}

/// See the Linux implementation; on other platforms there is no
/// signalfd and the server runs without the clean-shutdown contract.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn setup() -> Option<io::Result<SignalFd>> {
    None
}

/// Placeholder type on platforms without signalfd.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
#[derive(Debug)]
pub struct SignalFd;

/// Block until the listener is readable or a termination signal
/// arrives (Linux implementation; unreachable elsewhere because
/// [`setup`] returns `None`).
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn wait(listener: i32, sig: &SignalFd) -> io::Result<Wake> {
    sys::wait(listener, sig)
}

/// Unreachable off Linux ([`setup`] returns `None` there).
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn wait(_listener: i32, _sig: &SignalFd) -> io::Result<Wake> {
    unreachable!("signalfd is not available on this platform")
}
