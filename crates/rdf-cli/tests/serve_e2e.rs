//! End-to-end tests of the real `rdf serve` daemon: spawn the binary,
//! talk to it over its unix socket (raw and via `rdf request`), and
//! hold it to the protocol's contracts — byte-identity with the
//! one-shot CLI, warm-cache behaviour, typed errors for malformed
//! lines, eviction under a tiny budget, and clean SIGTERM shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rdf")
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "rdf {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("rdf-serve-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// Generate and import the two-version fixture; returns the absolute
/// store paths (absolute so one-shot and served reports agree on the
/// path lines too).
fn fixture(dir: &TempDir) -> (PathBuf, PathBuf) {
    run_ok(&[
        "gen", "--scale", "0.1", "--versions", "2", "--out-dir", s(&dir.0),
    ]);
    let v1 = dir.path("v1.rdfb");
    let v2 = dir.path("v2.rdfb");
    run_ok(&["import", s(&dir.path("efo-v1.nt")), s(&v1)]);
    run_ok(&["import", s(&dir.path("efo-v2.nt")), s(&v2)]);
    (v1, v2)
}

/// A running daemon: spawned with `--socket`, confirmed ready (the
/// readiness line is printed before the accept loop starts), killed on
/// drop if the test didn't shut it down itself.
struct Daemon {
    child: Option<Child>,
    socket: PathBuf,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn start(socket: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .arg("serve")
            .arg("--socket")
            .arg(socket)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut ready = String::new();
        stdout.read_line(&mut ready).unwrap();
        assert!(
            ready.contains("listening"),
            "daemon not ready, got: {ready:?}"
        );
        Daemon {
            child: Some(child),
            socket: socket.to_path_buf(),
            stdout,
        }
    }

    fn sock(&self) -> &str {
        self.socket.to_str().unwrap()
    }

    /// SIGTERM the daemon and return (exit status success, remaining
    /// stdout).
    fn terminate(mut self) -> (bool, String) {
        let mut child = self.child.take().unwrap();
        let ok = Command::new("kill")
            .arg("-TERM")
            .arg(child.id().to_string())
            .status()
            .expect("kill runs")
            .success();
        assert!(ok, "kill -TERM failed");
        let status = child.wait().expect("daemon exits");
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).unwrap();
        (status.success(), rest)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Raw client: one connection, send each line, read one response per
/// line sent.
fn raw_roundtrips(socket: &Path, lines: &[&str]) -> Vec<String> {
    let stream = UnixStream::connect(socket).expect("connects");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for line in lines {
        let s = reader.get_mut();
        s.write_all(line.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        s.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.ends_with('\n'),
            "response not newline-terminated (connection dropped?): \
             {reply:?}"
        );
        replies.push(reply);
    }
    replies
}

fn align_request(v1: &Path, v2: &Path) -> String {
    format!(
        r#"{{"op":"align","source":"{}","target":"{}"}}"#,
        v1.display(),
        v2.display()
    )
}

/// N concurrent clients each get a response byte-identical to the
/// one-shot CLI's stdout for the same invocation — the core serve
/// contract. The daemon then reports every request in its stats.
#[test]
fn concurrent_clients_match_one_shot_cli_byte_for_byte() {
    let dir = TempDir::new("concurrent");
    let (v1, v2) = fixture(&dir);
    let one_shot = run_ok(&["align", s(&v1), s(&v2)]);

    let daemon = Daemon::start(&dir.path("rdf.sock"), &[]);
    let req = align_request(&v1, &v2);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let sock = daemon.sock().to_string();
            let req = req.clone();
            std::thread::spawn(move || {
                let out = Command::new(bin())
                    .args(["request", "--socket", &sock, &req])
                    .output()
                    .expect("client runs");
                assert!(
                    out.status.success(),
                    "request failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                String::from_utf8(out.stdout).unwrap()
            })
        })
        .collect();
    for h in handles {
        let served = h.join().expect("client thread");
        assert_eq!(
            served, one_shot,
            "served align report differs from one-shot CLI"
        );
    }

    let stats =
        run_ok(&["request", "--socket", daemon.sock(), r#"{"op":"stats"}"#]);
    assert!(stats.contains("requests 5"), "stats counted all: {stats}");
    assert!(stats.contains("errors 0"), "no errors: {stats}");

    let (clean, rest) = daemon.terminate();
    assert!(clean, "daemon exited non-zero");
    assert!(rest.contains("shutdown on signal 15"), "got: {rest:?}");
}

/// The warm-cache criterion: the first traced align opens both stores
/// (`store.open` spans); the second identical request is served from
/// the pool and its trace carries **no** `store.open` span at all —
/// while the report stays byte-identical.
#[test]
fn warm_cache_request_skips_store_open_entirely() {
    let dir = TempDir::new("warm");
    let (v1, v2) = fixture(&dir);
    let daemon = Daemon::start(&dir.path("rdf.sock"), &[]);
    let req = format!(
        r#"{{"op":"align","source":"{}","target":"{}","trace":true}}"#,
        v1.display(),
        v2.display()
    );
    let cold_trace = dir.path("cold.jsonl");
    let warm_trace = dir.path("warm.jsonl");
    let cold = run_ok(&[
        "request", "--socket", daemon.sock(),
        "--trace-out", s(&cold_trace), &req,
    ]);
    let warm = run_ok(&[
        "request", "--socket", daemon.sock(),
        "--trace-out", s(&warm_trace), &req,
    ]);
    assert_eq!(cold, warm, "warm report must stay byte-identical");

    let cold_text = std::fs::read_to_string(&cold_trace).unwrap();
    let warm_text = std::fs::read_to_string(&warm_trace).unwrap();
    assert!(
        cold_text.contains("store.open"),
        "cold trace opens the stores: {cold_text}"
    );
    assert!(
        !warm_text.contains("store.open"),
        "warm trace must skip store.open: {warm_text}"
    );
    // The warm request still did real work — refinement spans present.
    assert!(
        warm_text.contains("refine.fixpoint"),
        "warm trace still records the pipeline: {warm_text}"
    );
    // And both per-request traces aggregate through `rdf stats`.
    let stats = run_ok(&["stats", s(&warm_trace)]);
    assert!(stats.contains("refine.fixpoint"), "{stats}");
}

/// Under a one-byte budget nothing can stay resident: every request
/// decodes cold, the stats report the evictions, and reports are still
/// correct (eviction is a cache concern, never a correctness one).
#[test]
fn tiny_cache_budget_evicts_but_stays_correct() {
    let dir = TempDir::new("evict");
    let (v1, v2) = fixture(&dir);
    let one_shot = run_ok(&["align", s(&v1), s(&v2)]);
    let daemon =
        Daemon::start(&dir.path("rdf.sock"), &["--cache-bytes", "1"]);
    let req = align_request(&v1, &v2);
    for _ in 0..2 {
        let served =
            run_ok(&["request", "--socket", daemon.sock(), &req]);
        assert_eq!(served, one_shot);
    }
    let stats =
        run_ok(&["request", "--socket", daemon.sock(), r#"{"op":"stats"}"#]);
    assert!(stats.contains("entries 0"), "nothing fits: {stats}");
    assert!(stats.contains("hits 0"), "no warm hits possible: {stats}");
    assert!(
        stats.contains("evictions 4"),
        "each of the 4 loads was evicted: {stats}"
    );
}

/// Malformed request lines get a typed JSON `bad_request` error on the
/// same connection — never a dropped connection, never a dead server.
#[test]
fn malformed_lines_get_typed_errors_not_dropped_connections() {
    let dir = TempDir::new("malformed");
    let daemon = Daemon::start(&dir.path("rdf.sock"), &[]);

    // Three malformed lines then a valid one, all on ONE connection.
    let replies = raw_roundtrips(
        &daemon.socket,
        &[
            "this is not json",
            r#"{"op":"make_coffee"}"#,
            r#"{"op":"align","source":"/x"}"#,
            r#"{"op":"stats"}"#,
        ],
    );
    for bad in &replies[..3] {
        assert!(bad.contains(r#""ok":false"#), "typed error: {bad}");
        assert!(
            bad.contains(r#""kind":"bad_request""#),
            "bad_request kind: {bad}"
        );
    }
    assert!(replies[3].contains(r#""ok":true"#), "{}", replies[3]);

    // An engine failure (nonexistent store) is typed too, and the
    // server keeps serving fresh connections afterwards.
    let replies = raw_roundtrips(
        &daemon.socket,
        &[r#"{"op":"info","path":"/nonexistent.rdfb"}"#],
    );
    assert!(replies[0].contains(r#""kind":"engine""#), "{}", replies[0]);
    assert!(
        replies[0].contains("nonexistent.rdfb"),
        "error names the path: {}",
        replies[0]
    );

    // The client maps protocol errors to exit 2 with a `serve <kind>:`
    // prefix.
    let out = Command::new(bin())
        .args(["request", "--socket", daemon.sock(), "not json either"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("serve bad_request:"), "got: {err}");

    let stats =
        run_ok(&["request", "--socket", daemon.sock(), r#"{"op":"stats"}"#]);
    assert!(stats.contains("errors 5"), "errors counted: {stats}");
}

/// `info` over the daemon matches the one-shot CLI byte-for-byte as
/// well (it re-validates checksums on disk every time, by contract).
#[test]
fn served_info_matches_one_shot_cli() {
    let dir = TempDir::new("info");
    let (v1, _) = fixture(&dir);
    let one_shot = run_ok(&["info", s(&v1)]);
    let daemon = Daemon::start(&dir.path("rdf.sock"), &[]);
    let req = format!(r#"{{"op":"info","path":"{}"}}"#, v1.display());
    let served = run_ok(&["request", "--socket", daemon.sock(), &req]);
    assert_eq!(served, one_shot);

    let (clean, rest) = daemon.terminate();
    assert!(clean);
    assert!(rest.contains("requests served"), "{rest:?}");
}
