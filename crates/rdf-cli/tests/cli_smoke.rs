//! End-to-end smoke of the real `rdf` binary: gen → import → info →
//! export → align, asserting the CLI's alignment metrics are *identical*
//! to the in-process `pipeline::align` on the same inputs.

use rdf_align::pipeline::{align as pipeline_align, Method};
use rdf_model::Vocab;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rdf")
}

/// Run the binary; return stdout and assert the expected success state.
fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "rdf {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn run_err(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "rdf {args:?} unexpectedly succeeded");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("rdf-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// The metric lines of an alignment report: everything except the
/// source/target path lines, which legitimately differ across input
/// layouts pointing at the same graphs.
fn metrics(r: &str) -> Vec<String> {
    r.lines()
        .filter(|l| l.contains(':'))
        .filter(|l| !l.contains("source:") && !l.contains("target:"))
        .map(str::to_owned)
        .collect()
}

#[test]
fn full_pipeline_matches_in_process_alignment() {
    let dir = TempDir::new("pipeline");

    // gen: two EFO-like versions.
    let gen_out = run_ok(&[
        "gen",
        "--scale",
        "0.2",
        "--versions",
        "2",
        "--out-dir",
        s(&dir.0),
    ]);
    assert!(gen_out.contains("efo-v1.nt"));
    let v1_nt = dir.path("efo-v1.nt");
    let v2_nt = dir.path("efo-v2.nt");

    // import both into stores.
    let v1_store = dir.path("v1.rdfb");
    let v2_store = dir.path("v2.rdfb");
    let import_out = run_ok(&["import", s(&v1_nt), s(&v1_store)]);
    assert!(import_out.contains("nodes"));
    run_ok(&["import", s(&v2_nt), s(&v2_store)]);

    // info: validates checksums, reports counts.
    let info_out = run_ok(&["info", s(&v1_store)]);
    assert!(info_out.contains("checksums OK"));
    assert!(info_out.contains("graph store"));
    for tag in ["DICT", "NODE", "TRPL", "BNAM"] {
        assert!(info_out.contains(tag), "info lists section {tag}");
    }

    // export: canonical N-Triples out of the store equals the canonical
    // serialisation of the original file's parse.
    let v1_back = dir.path("v1-back.nt");
    run_ok(&["export", s(&v1_store), s(&v1_back)]);
    let mut vfresh = Vocab::new();
    let parsed = rdf_io::load_file(&v1_nt, &mut vfresh).unwrap();
    assert_eq!(
        std::fs::read_to_string(&v1_back).unwrap(),
        rdf_io::write_graph(&parsed, &vfresh),
        "export(import(x)) is the canonical form of x"
    );

    // align from the stores, via the binary.
    let cli_report =
        run_ok(&["align", "--method", "hybrid", s(&v1_store), s(&v2_store)]);
    assert!(!cli_report.trim().is_empty());

    // The same alignment in-process, from the original N-Triples.
    let mut vocab = Vocab::new();
    let g1 = rdf_io::load_file(&v1_nt, &mut vocab).unwrap();
    let g2 = rdf_io::load_file(&v2_nt, &mut vocab).unwrap();
    let a = pipeline_align(&vocab, &g1, &g2, Method::Hybrid);

    // Metrics in the CLI report must match the in-process run exactly.
    let expect = [
        format!(
            "aligned edge ratio    : {:.6} ({} / {} classes, {} common)",
            a.edges.ratio(),
            a.edges.source_classes,
            a.edges.target_classes,
            a.edges.common_classes
        ),
        format!(
            "aligned edge instances: {} (source {}/{}, target {}/{})",
            a.edges.aligned_instances(),
            a.edges.aligned_source_edges,
            a.edges.total_source_edges,
            a.edges.aligned_target_edges,
            a.edges.total_target_edges
        ),
        format!("aligned node classes  : {}", a.nodes.aligned_classes),
        format!("unaligned nodes       : {}", a.unaligned.len()),
    ];
    for line in &expect {
        assert!(
            cli_report.contains(line),
            "CLI report must contain {line:?}\n--- report ---\n{cli_report}"
        );
    }

    // And the binary's stdout is exactly the library render.
    let outcome = rdf_cli::align(
        &v1_store,
        &v2_store,
        "hybrid",
        None,
        rdf_align::Threads::Auto,
        false,
    )
    .unwrap();
    assert_eq!(cli_report, outcome.render());

    // Determinism across thread counts: the engine guarantees the
    // report is byte-identical at --threads 1 and --threads 4.
    let t1 = run_ok(&[
        "align", "--method", "hybrid", "--threads", "1",
        s(&v1_store), s(&v2_store),
    ]);
    let t4 = run_ok(&[
        "align", "--method", "hybrid", "--threads", "4",
        s(&v1_store), s(&v2_store),
    ]);
    assert_eq!(t1, t4, "thread count changed the alignment report");
    assert_eq!(t1, cli_report, "threaded run diverged from default run");

    // info --bisim reports the maximal-bisimulation summary, and it is
    // identical at every thread count too.
    let bisim1 = run_ok(&["info", "--bisim", "--threads", "1", s(&v1_store)]);
    let bisim4 = run_ok(&["info", "--bisim", "--threads", "4", s(&v1_store)]);
    assert!(bisim1.contains("bisimulation:"), "got: {bisim1}");
    assert!(bisim1.contains("(1 threads)"));
    assert!(bisim4.contains("(4 threads)"));
    // Compare whole reports with only the "(N threads)" suffix removed,
    // so the bisimulation class/round counts themselves must agree.
    let strip = |r: &str| {
        r.lines()
            .map(|l| {
                l.trim_end_matches(" (1 threads)")
                    .trim_end_matches(" (4 threads)")
                    .to_owned()
            })
            .collect::<Vec<_>>()
    };
    let (s1, s4) = (strip(&bisim1), strip(&bisim4));
    assert!(
        s1.iter().any(|l| l.contains("bisimulation:")),
        "strip removed the bisimulation line: {s1:?}"
    );
    assert_eq!(s1, s4);

    // Aligning the raw N-Triples gives the same metrics as the stores
    // (only the input paths in the heading differ).
    let nt_report =
        run_ok(&["align", "--method", "hybrid", s(&v1_nt), s(&v2_nt)]);
    assert_eq!(metrics(&cli_report), metrics(&nt_report));
}

#[test]
fn sharded_flow_matches_single_file_flow() {
    let dir = TempDir::new("sharded");
    run_ok(&[
        "gen",
        "--scale",
        "0.2",
        "--versions",
        "2",
        "--out-dir",
        s(&dir.0),
    ]);
    let v1_nt = dir.path("efo-v1.nt");
    let v2_nt = dir.path("efo-v2.nt");

    // Import each version twice: single-file and 4-way sharded.
    let v1_store = dir.path("v1.rdfb");
    let v2_store = dir.path("v2.rdfb");
    run_ok(&["import", s(&v1_nt), s(&v1_store)]);
    run_ok(&["import", s(&v2_nt), s(&v2_store)]);
    let v1_man = dir.path("v1.rdfm");
    let v2_man = dir.path("v2.rdfm");
    let imp = run_ok(&["import", "--shards", "4", s(&v1_nt), s(&v1_man)]);
    assert!(imp.contains("(4 shards)"), "got: {imp}");
    run_ok(&["import", "--shards", "4", s(&v2_nt), s(&v2_man)]);
    for k in 0..4 {
        assert!(
            dir.path(&format!("v1-shard-{k}.rdfb")).exists(),
            "shard {k} written"
        );
    }

    // info validates the manifest and every shard file.
    let info_out = run_ok(&["info", s(&v1_man)]);
    assert!(info_out.contains("sharded graph store (4 shards)"));
    assert!(info_out.contains("checksums OK"));
    for k in 0..4 {
        assert!(
            info_out.contains(&format!("shard {k}: v1-shard-{k}.rdfb")),
            "info lists shard {k}: {info_out}"
        );
    }
    // info on a bare shard file identifies it and points at the
    // manifest (a shard alone is not a loadable graph).
    let shard_info = run_ok(&["info", s(&dir.path("v1-shard-0.rdfb"))]);
    assert!(
        shard_info.contains("graph shard") && shard_info.contains(".rdfm"),
        "got: {shard_info}"
    );

    // The single-file and manifest node/triple counts agree.
    let single_info = run_ok(&["info", s(&v1_store)]);
    let pick = |r: &str, key: &str| -> String {
        r.lines()
            .find(|l| l.contains(key))
            .unwrap_or_default()
            .split(key)
            .nth(1)
            .unwrap_or_default()
            .split_whitespace()
            .next()
            .unwrap_or_default()
            .to_owned()
    };
    assert_eq!(
        pick(&info_out, "nodes "),
        pick(&single_info, "nodes ")
    );
    assert_eq!(
        pick(&info_out, "triples "),
        pick(&single_info, "triples ")
    );

    // export(manifest) == export(single store), byte for byte.
    let from_single = dir.path("single.nt");
    let from_sharded = dir.path("sharded.nt");
    run_ok(&["export", s(&v1_store), s(&from_single)]);
    run_ok(&["export", s(&v1_man), s(&from_sharded)]);
    assert_eq!(
        std::fs::read(&from_single).unwrap(),
        std::fs::read(&from_sharded).unwrap(),
        "sharded export diverged from single-file export"
    );

    // align over manifests: metrics byte-identical to the single-file
    // flow (only the source/target path lines differ), at 1 and 4
    // threads, and identical to the in-process pipeline.
    let single_report =
        run_ok(&["align", "--method", "hybrid", s(&v1_store), s(&v2_store)]);
    for t in ["1", "4"] {
        let sharded_report = run_ok(&[
            "align", "--method", "hybrid", "--threads", t,
            s(&v1_man), s(&v2_man),
        ]);
        assert_eq!(
            metrics(&single_report),
            metrics(&sharded_report),
            "sharded align metrics diverged at {t} threads"
        );
    }
    let outcome = rdf_cli::align(
        &v1_man,
        &v2_man,
        "hybrid",
        None,
        rdf_align::Threads::Auto,
        false,
    )
    .unwrap();
    let cli_report =
        run_ok(&["align", "--method", "hybrid", s(&v1_man), s(&v2_man)]);
    assert_eq!(cli_report, outcome.render());

    // info --bisim over the manifest agrees with the single store.
    let bisim_sharded =
        run_ok(&["info", "--bisim", "--threads", "2", s(&v1_man)]);
    let bisim_single =
        run_ok(&["info", "--bisim", "--threads", "2", s(&v1_store)]);
    let bisim_line = |r: &str| {
        r.lines()
            .find(|l| l.contains("bisimulation:"))
            .map(str::to_owned)
            .expect("report has a bisimulation line")
    };
    assert_eq!(bisim_line(&bisim_sharded), bisim_line(&bisim_single));

    // --streaming: the shard-at-a-time engine must leave every report
    // byte-identical — align at 1 and 4 threads, and the whole
    // info --bisim output (the streaming path never stitches the
    // graph, yet prints the very same summary).
    for t in ["1", "4"] {
        let streamed = run_ok(&[
            "align", "--method", "hybrid", "--streaming", "--threads", t,
            s(&v1_man), s(&v2_man),
        ]);
        assert_eq!(
            metrics(&single_report),
            metrics(&streamed),
            "streaming align metrics diverged at {t} threads"
        );
    }
    let bisim_streamed = run_ok(&[
        "info", "--bisim", "--streaming", "--threads", "2", s(&v1_man),
    ]);
    assert_eq!(
        bisim_streamed, bisim_sharded,
        "streaming info --bisim diverged from the in-RAM report"
    );
    // Streaming misuse is rejected with clear messages.
    let err = run_err(&["info", "--streaming", s(&v1_man)]);
    assert!(err.contains("--streaming requires --bisim"), "got: {err}");
    let err =
        run_err(&["info", "--bisim", "--streaming", s(&v1_store)]);
    assert!(err.contains("sharded store"), "got: {err}");
    let err = run_err(&[
        "align", "--method", "overlap", "--streaming",
        s(&v1_man), s(&v2_man),
    ]);
    assert!(
        err.contains("overlap") && err.contains("streaming"),
        "got: {err}"
    );

    // Corrupting one shard fails loudly with the shard named.
    let shard = dir.path("v1-shard-2.rdfb");
    let mut bytes = std::fs::read(&shard).unwrap();
    let at = bytes.len() - 1;
    bytes[at] ^= 0xff;
    std::fs::write(&shard, bytes).unwrap();
    let err = run_err(&["info", s(&v1_man)]);
    assert!(
        err.contains("v1-shard-2.rdfb") && err.contains("checksum"),
        "got: {err}"
    );
    // And a missing shard is a typed error too.
    std::fs::remove_file(&shard).unwrap();
    let err = run_err(&["align", s(&v1_man), s(&v2_man)]);
    assert!(err.contains("v1-shard-2.rdfb"), "got: {err}");

    // Invalid --shards values are rejected up front.
    let err = run_err(&["import", "--shards", "0", s(&v1_nt), s(&v1_man)]);
    assert!(err.contains("--shards"), "got: {err}");
    let err =
        run_err(&["import", "--shards", "lots", s(&v1_nt), s(&v1_man)]);
    assert!(err.contains("--shards"), "got: {err}");
}

#[test]
fn align_supports_all_methods() {
    let dir = TempDir::new("methods");
    run_ok(&[
        "gen",
        "--scale",
        "0.1",
        "--versions",
        "2",
        "--out-dir",
        s(&dir.0),
    ]);
    let v1 = dir.path("efo-v1.nt");
    let v2 = dir.path("efo-v2.nt");
    for method in ["trivial", "deblank", "hybrid", "overlap"] {
        let report = run_ok(&["align", "--method", method, s(&v1), s(&v2)]);
        assert!(report.contains(&format!("method = {method}")));
    }
    let report = run_ok(&[
        "align",
        "--method",
        "overlap",
        "--theta",
        "0.5",
        s(&v1),
        s(&v2),
    ]);
    assert!(report.contains("aligned edge ratio"));
}

/// The EXAMPLES blocks in `--help` cannot rot: the top-level examples
/// are extracted from the real help text and *executed* in order
/// (paths redirected into a temp dir), and every subcommand's help
/// must carry its own EXAMPLES block addressing that subcommand.
#[test]
fn help_examples_execute_and_cover_every_subcommand() {
    let dir = TempDir::new("help");
    let help = run_ok(&["--help"]);
    assert!(help.contains("EXAMPLES"), "top-level help has EXAMPLES");

    // Every example line is a real `rdf` invocation; run them in order
    // with /tmp/efo swapped for this test's temp dir.
    let examples: Vec<Vec<String>> = help
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("rdf "))
        .map(|l| {
            l.replace("/tmp/efo", s(&dir.0))
                .split_whitespace()
                .skip(1) // the leading "rdf"
                .map(str::to_owned)
                .collect()
        })
        .collect();
    assert!(
        examples.len() >= 4,
        "expected a multi-step example pipeline, got {examples:?}"
    );
    for args in &examples {
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = run_ok(&argv);
        assert!(!out.is_empty(), "example `rdf {args:?}` printed nothing");
    }
    // The advertised pipeline really exercised the streaming path.
    assert!(
        examples.iter().any(|a| a.contains(&"--streaming".to_string())),
        "top-level examples should show --streaming: {examples:?}"
    );

    // Per-subcommand help: an EXAMPLES block that addresses the
    // subcommand itself.
    for cmd in [
        "import", "export", "info", "align", "stats", "gen", "serve",
        "request",
    ] {
        let h = run_ok(&[cmd, "--help"]);
        assert!(h.contains("EXAMPLES"), "{cmd} --help has EXAMPLES");
        assert!(
            h.contains(&format!("rdf {cmd}")),
            "{cmd} --help examples address rdf {cmd}: {h}"
        );
        assert!(
            h.contains(&format!("usage: rdf {cmd}")),
            "{cmd} --help leads with usage: {h}"
        );
    }
}

/// `--trace` is a pure side channel: the report is byte-identical with
/// and without it, every trace line is valid JSON with the required
/// keys, and `rdf stats` renders the span families by name. `RDF_TRACE`
/// traces without the flag.
#[test]
fn trace_and_stats_cover_span_families() {
    let dir = TempDir::new("trace");
    run_ok(&[
        "gen",
        "--scale",
        "0.15",
        "--versions",
        "2",
        "--out-dir",
        s(&dir.0),
    ]);
    let v1_man = dir.path("v1.rdfm");
    let v2_man = dir.path("v2.rdfm");
    run_ok(&[
        "import", "--shards", "4",
        s(&dir.path("efo-v1.nt")), s(&v1_man),
    ]);
    run_ok(&[
        "import", "--shards", "4",
        s(&dir.path("efo-v2.nt")), s(&v2_man),
    ]);

    // Traced and untraced runs print byte-identical reports.
    let untraced = run_ok(&[
        "align", "--method", "hybrid", "--streaming",
        s(&v1_man), s(&v2_man),
    ]);
    let trace = dir.path("t.jsonl");
    let traced = run_ok(&[
        "align", "--method", "hybrid", "--streaming",
        "--trace", s(&trace),
        s(&v1_man), s(&v2_man),
    ]);
    assert_eq!(untraced, traced, "--trace changed the report");

    // Every trace line is one JSON object carrying the required keys.
    let text = std::fs::read_to_string(&trace).unwrap();
    let mut spans = 0usize;
    let mut reports = 0usize;
    for (i, line) in text.lines().enumerate() {
        let j = rdf_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: {e:?}", i + 1));
        match j.get("ev").and_then(|v| v.as_str()) {
            Some("span") => {
                assert!(j.get("name").is_some(), "span without name");
                assert!(j.get("us").is_some(), "span without us");
                spans += 1;
            }
            Some("report") => reports += 1,
            other => panic!("line {}: unexpected ev {other:?}", i + 1),
        }
    }
    assert!(spans > 0, "trace carries span events");
    assert_eq!(reports, 1, "exactly one final report line");

    // stats aggregates the trace and names the span families.
    let stats_out = run_ok(&["stats", s(&trace)]);
    for family in ["refine.round", "shard.load", "align.union"] {
        assert!(
            stats_out.contains(family),
            "stats table misses {family}:\n{stats_out}"
        );
    }

    // The report line alone must agree with re-aggregating the events.
    let report = rdf_obs::RunReport::from_jsonl(&text).unwrap();
    assert!(report.span("refine.round").is_some());
    assert!(report.span("shard.load").is_some());

    // RDF_TRACE traces without the flag, through the same machinery.
    let trace_env = dir.path("env.jsonl");
    let out = Command::new(bin())
        .args(["info", "--bisim", "--streaming", s(&v1_man)])
        .env("RDF_TRACE", &trace_env)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(trace_env.exists(), "RDF_TRACE wrote no trace");
    let env_stats = run_ok(&["stats", s(&trace_env)]);
    assert!(env_stats.contains("refine.round"), "got: {env_stats}");
    assert!(env_stats.contains("shard.load"), "got: {env_stats}");

    // A malformed trace is a loud, contextful error.
    let bad = dir.path("bad.jsonl");
    std::fs::write(&bad, "{\"ev\":\"span\"\n").unwrap();
    let err = run_err(&["stats", s(&bad)]);
    assert!(err.contains("bad.jsonl"), "got: {err}");
}

#[test]
fn errors_exit_nonzero_with_context() {
    let dir = TempDir::new("errors");
    // Missing file.
    let err = run_err(&["info", s(&dir.path("absent.rdfb"))]);
    assert!(err.contains("absent.rdfb"));
    // Not a store.
    let nt = dir.path("x.nt");
    std::fs::write(&nt, "<u:s> <u:p> <u:o> .\n").unwrap();
    let err = run_err(&["info", s(&nt)]);
    assert!(err.contains("RDFB") || err.contains("magic"));
    // Corrupt store: flip a payload byte.
    let store = dir.path("x.rdfb");
    run_ok(&["import", s(&nt), s(&store)]);
    let mut bytes = std::fs::read(&store).unwrap();
    let at = rdf_store::container::HEADER_LEN
        + rdf_store::container::SECTION_OVERHEAD
        + 1;
    bytes[at] ^= 0xff;
    std::fs::write(&store, bytes).unwrap();
    let err = run_err(&["info", s(&store)]);
    assert!(err.contains("checksum"), "got: {err}");
    // Unknown method.
    let err = run_err(&["align", "--method", "psychic", s(&nt), s(&nt)]);
    assert!(err.contains("unknown method"));
    // Invalid thread counts.
    let err = run_err(&["align", "--threads", "0", s(&nt), s(&nt)]);
    assert!(err.contains("invalid thread count"), "got: {err}");
    let err = run_err(&["info", "--threads", "zippy", s(&nt)]);
    assert!(err.contains("invalid thread count"), "got: {err}");
    // Malformed N-Triples reports position.
    let bad = dir.path("bad.nt");
    std::fs::write(&bad, "<u:s> <u:p> broken .\n").unwrap();
    let err = run_err(&["import", s(&bad), s(&dir.path("bad.rdfb"))]);
    assert!(err.contains("line 1"), "got: {err}");
}

#[test]
fn import_rejects_archive_containers() {
    let dir = TempDir::new("kind");
    // Build an archive container and try to export it as a graph.
    let vocab = Vocab::new();
    let archive = rdf_archive::Archive::new();
    rdf_archive::save_archive_file(dir.path("a.rdfb"), &vocab, &archive)
        .unwrap();
    let err = run_err(&[
        "export",
        s(&dir.path("a.rdfb")),
        s(&dir.path("a.nt")),
    ]);
    assert!(err.contains("content kind"), "got: {err}");
    // But info understands it.
    let info_out = run_ok(&["info", s(&dir.path("a.rdfb"))]);
    assert!(info_out.contains("archive"));
    // --bisim degrades gracefully on non-graph stores.
    let info_out =
        run_ok(&["info", "--bisim", s(&dir.path("a.rdfb"))]);
    assert!(info_out.contains("bisimulation: n/a"), "got: {info_out}");
}

/// An unwritable `--trace` path fails *eagerly*: the error names the
/// trace file and arrives before any input is touched — even when the
/// input path is also bogus, the trace path is the one reported.
#[test]
fn trace_file_failures_are_eager_and_name_the_trace_path() {
    let dir = TempDir::new("tracefail");
    let bad_trace = dir.path("no-such-dir").join("t.jsonl");
    let bad_store = dir.path("also-absent.rdfb");
    for cmd in [
        vec!["info", "--trace", s(&bad_trace), s(&bad_store)],
        vec![
            "align", "--trace", s(&bad_trace),
            s(&bad_store), s(&bad_store),
        ],
        vec![
            "import", "--trace", s(&bad_trace),
            s(&bad_store), s(&dir.path("out.rdfb")),
        ],
    ] {
        let err = run_err(&cmd);
        assert!(
            err.contains("trace file") && err.contains("t.jsonl"),
            "{cmd:?}: error must name the trace file, got: {err}"
        );
        assert!(
            !err.contains("also-absent.rdfb"),
            "{cmd:?}: trace error must come before input access: {err}"
        );
    }
    // Same contract through RDF_TRACE.
    let out = Command::new(bin())
        .args(["info", s(&bad_store)])
        .env("RDF_TRACE", &bad_trace)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trace file"), "got: {err}");
}

/// The README's `rdf serve` example block cannot rot: its lines are
/// extracted from README.md and executed verbatim (paths redirected
/// into a temp dir), asserting the served align report matches the
/// one-shot CLI byte-for-byte.
#[test]
fn readme_serve_example_block_executes() {
    use std::io::BufRead;

    let readme = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md"),
    )
    .expect("README.md at the repo root");
    let lines: Vec<&str> = readme
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("target/release/rdf "))
        .filter(|l| l.contains(" serve ") || l.contains(" request "))
        .collect();
    assert!(
        lines.iter().any(|l| l.contains(" serve ")),
        "README shows an `rdf serve` line"
    );
    assert!(
        lines.iter().filter(|l| l.contains(" request ")).count() >= 2,
        "README shows `rdf request` usage: {lines:?}"
    );
    assert!(
        readme.contains("kill %1"),
        "README shows the SIGTERM shutdown step"
    );

    // Build the fixture stores the example block refers to, with
    // /tmp/efo and /tmp/rdf.sock redirected into this test's temp dir.
    let dir = TempDir::new("readme-serve");
    run_ok(&[
        "gen", "--scale", "0.1", "--versions", "2", "--out-dir", s(&dir.0),
    ]);
    run_ok(&[
        "import",
        s(&dir.path("efo-v1.nt")),
        s(&dir.path("v1.rdfb")),
    ]);
    run_ok(&[
        "import",
        s(&dir.path("efo-v2.nt")),
        s(&dir.path("v2.rdfb")),
    ]);
    let redirect = |l: &str| -> Vec<String> {
        l.trim_start_matches("target/release/")
            .trim_end_matches('&')
            .trim()
            .replace("/tmp/efo", s(&dir.0))
            .replace("/tmp/rdf.sock", s(&dir.path("rdf.sock")))
            // The request payload is a single-quoted JSON argument;
            // undo the shell quoting for Command's argv.
            .split('\'')
            .enumerate()
            .flat_map(|(i, part)| {
                if i % 2 == 1 {
                    vec![part.to_string()]
                } else {
                    part.split_whitespace()
                        .map(str::to_string)
                        .collect()
                }
            })
            .filter(|a| !a.is_empty())
            .collect()
    };

    // Line 1: the daemon (README backgrounds it with `&`).
    let serve_argv = redirect(lines[0]);
    assert_eq!(serve_argv[1], "serve", "first line starts the daemon");
    let mut daemon = Command::new(bin())
        .args(&serve_argv[1..])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut ready = String::new();
    std::io::BufReader::new(daemon.stdout.as_mut().unwrap())
        .read_line(&mut ready)
        .unwrap();
    assert!(ready.contains("listening"), "got: {ready:?}");

    // Remaining lines: the clients, verbatim.
    let mut align_report = None;
    for line in &lines[1..] {
        let argv = redirect(line);
        let args: Vec<&str> =
            argv[1..].iter().map(String::as_str).collect();
        let out = run_ok(&args);
        assert!(!out.is_empty(), "`{line}` printed nothing");
        if line.contains(r#""op":"align""#) {
            align_report = Some(out);
        }
    }
    // The served report equals the one-shot CLI's, byte for byte.
    let one_shot = run_ok(&[
        "align",
        s(&dir.path("v1.rdfb")),
        s(&dir.path("v2.rdfb")),
    ]);
    assert_eq!(align_report.as_deref(), Some(one_shot.as_str()));

    // `kill %1` in the README: SIGTERM, clean exit.
    let killed = Command::new("kill")
        .arg("-TERM")
        .arg(daemon.id().to_string())
        .status()
        .unwrap()
        .success();
    assert!(killed);
    assert!(daemon.wait().unwrap().success(), "daemon exits 0");
}
