//! Similarity flooding baseline (Melnik, Garcia-Molina & Rahm, ICDE
//! 2002), cited by the paper's Related Work as the closest prior method.
//!
//! The key contrast the paper draws: when scoring two nodes, similarity
//! flooding takes a *weighted average over the Cartesian product* of
//! their outgoing edge sets, while `σ_Edit` finds an *optimal matching*.
//! This module implements the flooding fixpoint so the two propagation
//! styles can be compared head-to-head (bench `ablation`).
//!
//! We use the similarity (not distance) orientation of the original
//! algorithm: `sim ∈ [0, 1]`, larger is more similar, with the `basic`
//! fixpoint formula `σ^{i+1} = normalize(σ⁰ + σⁱ + flood(σⁱ))` restricted
//! to pairs connected through equal predicate labels.

use rdf_model::{CombinedGraph, FxHashMap, NodeId, Vocab};

/// Parameters for the flooding fixpoint.
#[derive(Debug, Clone, Copy)]
pub struct FloodingConfig {
    /// Stop when no similarity moves by more than this.
    pub epsilon: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            epsilon: 1e-6,
            max_iterations: 50,
        }
    }
}

/// Computed pairwise similarities over source × target nodes.
#[derive(Debug, Clone)]
pub struct Flooding {
    source: Vec<NodeId>,
    target: Vec<NodeId>,
    row_of: FxHashMap<NodeId, usize>,
    col_of: FxHashMap<NodeId, usize>,
    sim: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

impl Flooding {
    /// Run similarity flooding over the combined graph. Initial
    /// similarities: 1.0 for equal labels, 0.0 otherwise (blank nodes all
    /// start equal to each other at a low affinity).
    pub fn compute(
        combined: &CombinedGraph,
        _vocab: &Vocab,
        config: FloodingConfig,
    ) -> Self {
        let g = combined.graph();
        let source: Vec<NodeId> = combined.source_nodes().collect();
        let target: Vec<NodeId> = combined.target_nodes().collect();
        let rows = source.len();
        let cols = target.len();
        let row_of: FxHashMap<NodeId, usize> =
            source.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let col_of: FxHashMap<NodeId, usize> =
            target.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        // σ⁰: label equality seed (blank-blank pairs get a mild prior).
        let mut sim0 = vec![0.0f64; rows * cols];
        for (i, &n) in source.iter().enumerate() {
            for (j, &m) in target.iter().enumerate() {
                sim0[i * cols + j] = if g.label(n) == g.label(m) {
                    if g.is_blank(n) {
                        0.1
                    } else {
                        1.0
                    }
                } else {
                    0.0
                };
            }
        }

        let mut sim = sim0.clone();
        let mut iterations = 0;
        for iter in 0..config.max_iterations {
            let mut next = sim0.clone();
            // Flood: each pair of equal-predicate out-edges propagates the
            // subject-pair similarity to the object pair, averaged over
            // the Cartesian product of the out-sets (the paper's point of
            // contrast with optimal matching).
            for (i, &n) in source.iter().enumerate() {
                for (j, &m) in target.iter().enumerate() {
                    let s = sim[i * cols + j];
                    if s <= 0.0 {
                        continue;
                    }
                    let out_n = g.out(n);
                    let out_m = g.out(m);
                    if out_n.is_empty() || out_m.is_empty() {
                        continue;
                    }
                    let w = s / (out_n.len() * out_m.len()) as f64;
                    for &(p1, o1) in out_n {
                        for &(p2, o2) in out_m {
                            if g.label(p1) != g.label(p2) {
                                continue;
                            }
                            if let (Some(&oi), Some(&oj)) =
                                (row_of.get(&o1), col_of.get(&o2))
                            {
                                next[oi * cols + oj] += w;
                            }
                        }
                    }
                    next[i * cols + j] += s;
                }
            }
            // Normalise to [0, 1].
            let max = next.iter().cloned().fold(0.0f64, f64::max);
            if max > 0.0 {
                for v in next.iter_mut() {
                    *v /= max;
                }
            }
            let delta = sim
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            sim = next;
            iterations = iter + 1;
            if delta < config.epsilon {
                break;
            }
        }

        Flooding {
            source,
            target,
            row_of,
            col_of,
            sim,
            iterations,
        }
    }

    /// Similarity of a (source, target) pair of combined-graph ids.
    pub fn similarity(&self, n: NodeId, m: NodeId) -> f64 {
        match (self.row_of.get(&n), self.col_of.get(&m)) {
            (Some(&i), Some(&j)) => self.sim[i * self.target.len() + j],
            _ => 0.0,
        }
    }

    /// For each source node, its best-matching target and the score.
    pub fn best_matches(&self) -> Vec<(NodeId, NodeId, f64)> {
        let cols = self.target.len();
        self.source
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| {
                (0..cols)
                    .map(|j| (j, self.sim[i * cols + j]))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(j, s)| (n, self.target[j], s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{RdfGraphBuilder, Vocab};

    fn renamed_pair() -> (Vocab, CombinedGraph) {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("ed-uni", "name", "University of Edinburgh");
            b.uul("other", "name", "Another Place");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uul("uoe", "name", "University of Edinburgh");
            b.uul("other2", "name", "Another Place");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        (v, c)
    }

    /// Find a node by label text on the source side.
    fn src_by_label(v: &Vocab, c: &CombinedGraph, t: &str) -> NodeId {
        c.source_nodes()
            .find(|&n| v.text(c.graph().label(n)) == t)
            .unwrap()
    }

    /// Find a node by label text on the target side.
    fn tgt_by_label(v: &Vocab, c: &CombinedGraph, t: &str) -> NodeId {
        c.target_nodes()
            .find(|&n| v.text(c.graph().label(n)) == t)
            .unwrap()
    }

    #[test]
    fn equal_labels_stay_most_similar() {
        let (v, c) = renamed_pair();
        let f = Flooding::compute(&c, &v, FloodingConfig::default());
        let lit_s = src_by_label(&v, &c, "University of Edinburgh");
        let lit_t = tgt_by_label(&v, &c, "University of Edinburgh");
        assert!(f.similarity(lit_s, lit_t) > 0.5);
    }

    #[test]
    fn renamed_uri_floods_from_shared_literal() {
        let (v, c) = renamed_pair();
        let f = Flooding::compute(&c, &v, FloodingConfig::default());
        let ed = src_by_label(&v, &c, "ed-uni");
        let uoe = tgt_by_label(&v, &c, "uoe");
        let other2 = tgt_by_label(&v, &c, "other2");
        // ed-uni should be more similar to uoe than to other2 — wait,
        // flooding propagates along *outgoing* edges from similar pairs;
        // here ed-uni/uoe share the object literal, so the propagation
        // runs subject-pair -> object-pair. The subject pair starts at 0
        // similarity, so for this topology the discriminating signal is
        // weak; we assert only that no spurious preference for the wrong
        // partner emerges.
        assert!(f.similarity(ed, uoe) >= f.similarity(ed, other2) - 1e-9);
    }

    #[test]
    fn converges_within_cap() {
        let (v, c) = renamed_pair();
        let f = Flooding::compute(&c, &v, FloodingConfig::default());
        assert!(f.iterations <= 50);
    }

    #[test]
    fn best_matches_cover_all_sources() {
        let (v, c) = renamed_pair();
        let f = Flooding::compute(&c, &v, FloodingConfig::default());
        assert_eq!(f.best_matches().len(), c.source_len());
    }
}
