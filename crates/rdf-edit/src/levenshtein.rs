//! String edit distance (Levenshtein) with the normalisation used by the
//! paper's `σ_Edit` (§4.2, Example 5): `lev(a, b) / max(|a|, |b|)`, so that
//! `"abc"` vs `"ac"` is 1/3.
//!
//! Distances are computed over Unicode scalar values. The classic
//! two-row dynamic program is O(|a|·|b|) time, O(min) space; a banded
//! variant exits early when the distance exceeds a bound, which the
//! overlap heuristic uses to reject weak candidate pairs cheaply.

/// Levenshtein distance between two strings, over chars.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_slices(&a, &b)
}

/// Levenshtein distance between two char slices.
pub fn levenshtein_slices(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string in the inner dimension for O(min) space.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost) // substitute
                .min(prev[j + 1] + 1) // delete from a
                .min(curr[j] + 1); // insert into a
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Banded Levenshtein: returns `Some(d)` if `d ≤ bound`, else `None`.
/// Costs O((bound+1)·min(|a|,|b|)) time.
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (a, b) = if a.len() < b.len() { (&b, &a) } else { (&a, &b) };
    if a.len() - b.len() > bound {
        return None;
    }
    if b.is_empty() {
        return (a.len() <= bound).then_some(a.len());
    }
    const INF: usize = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=b.len())
        .map(|j| if j <= bound { j } else { INF })
        .collect();
    let mut curr = vec![INF; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        // Cells with |i - j| > bound can never be on a path of cost
        // ≤ bound; restrict to the band.
        let lo = i.saturating_sub(bound);
        let hi = (i + bound + 1).min(b.len());
        curr[0] = if i < bound { i + 1 } else { INF };
        let mut row_min = curr[0];
        for j in lo..hi {
            let cost = usize::from(ca != b[j]);
            let mut v = prev[j] + cost;
            if prev[j + 1] + 1 < v {
                v = prev[j + 1] + 1;
            }
            if (j >= lo.max(1) || lo == 0)
                && curr[j] + 1 < v {
                    v = curr[j] + 1;
                }
            curr[j + 1] = v;
            row_min = row_min.min(v);
        }
        if lo > 0 {
            curr[lo] = INF;
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
        for c in curr.iter_mut() {
            *c = INF;
        }
    }
    let d = prev[b.len()];
    (d <= bound).then_some(d)
}

/// Normalised edit distance in `[0, 1]`: `lev(a,b) / max(|a|, |b|)`;
/// 0 for two empty strings.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let ca = a.chars().count();
    let cb = b.chars().count();
    let m = ca.max(cb);
    if m == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn example5_normalisation() {
        // §4.2 Example 5: "abc" vs "ac" differ by the presence of b and
        // the length of both is bounded by 3 → distance 1/3.
        assert!((normalized_levenshtein("abc", "ac") - 1.0 / 3.0).abs() < 1e-12);
        // "a" vs "ac": normalised edit distance 1/2.
        assert!((normalized_levenshtein("a", "ac") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unicode_chars_not_bytes() {
        // One char substitution even though UTF-8 lengths differ.
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("Sławek", "Sławomir"), 4);
    }

    #[test]
    fn paper_name_change() {
        // Figure 1: "Sławek" → "Sławomir".
        let d = levenshtein("Sławek", "Sławomir");
        let n = normalized_levenshtein("Sławek", "Sławomir");
        assert_eq!(d, 4);
        assert!((n - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_agrees_with_full() {
        let pairs = [
            ("kitten", "sitting"),
            ("abc", "ac"),
            ("", "xyz"),
            ("hello", "hello"),
            ("aaaa", "bbbb"),
        ];
        for (a, b) in pairs {
            let full = levenshtein(a, b);
            for bound in 0..8 {
                let got = levenshtein_bounded(a, b, bound);
                if full <= bound {
                    assert_eq!(got, Some(full), "{a:?} {b:?} bound {bound}");
                } else {
                    assert_eq!(got, None, "{a:?} {b:?} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn metric_axioms_small() {
        let words = ["", "a", "ab", "ba", "abc", "xyz"];
        for x in words {
            assert_eq!(levenshtein(x, x), 0);
            for y in words {
                assert_eq!(levenshtein(x, y), levenshtein(y, x));
                for z in words {
                    assert!(
                        levenshtein(x, z) <= levenshtein(x, y) + levenshtein(y, z)
                    );
                }
            }
        }
    }

    #[test]
    fn normalized_in_unit_interval() {
        let words = ["", "a", "hello world", "x"];
        for x in words {
            for y in words {
                let d = normalized_levenshtein(x, y);
                assert!((0.0..=1.0).contains(&d));
            }
        }
    }
}
