//! The bounded distance algebra of §4.1.
//!
//! Distances live in `[0, 1]`; combining them uses the saturating
//! addition `x ⊕ y = min(x + y, 1)`, the paper's "rudimentary" choice of
//! the `⊕` operator, which is compatible with the triangle inequality.

/// Saturating addition on `[0, 1]`: `min(x + y, 1)`.
#[inline]
pub fn oplus(x: f64, y: f64) -> f64 {
    debug_assert!((0.0..=1.0 + 1e-12).contains(&x), "oplus input {x}");
    debug_assert!((0.0..=1.0 + 1e-12).contains(&y), "oplus input {y}");
    (x + y).min(1.0)
}

/// Fold `⊕` over an iterator of distances.
pub fn oplus_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for v in values {
        acc = oplus(acc, v);
        if acc >= 1.0 {
            return 1.0;
        }
    }
    acc
}

/// Clamp an arbitrary non-negative value into the distance interval.
#[inline]
pub fn clamp_unit(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_one() {
        assert_eq!(oplus(0.7, 0.6), 1.0);
        assert_eq!(oplus(1.0, 1.0), 1.0);
    }

    #[test]
    fn adds_below_one() {
        assert!((oplus(0.25, 0.5) - 0.75).abs() < 1e-12);
        assert_eq!(oplus(0.0, 0.0), 0.0);
    }

    #[test]
    fn identity_and_commutativity() {
        for x in [0.0, 0.3, 0.9, 1.0] {
            assert_eq!(oplus(x, 0.0), x);
            for y in [0.0, 0.4, 1.0] {
                assert_eq!(oplus(x, y), oplus(y, x));
            }
        }
    }

    #[test]
    fn associativity() {
        for x in [0.0, 0.2, 0.5, 1.0] {
            for y in [0.1, 0.6] {
                for z in [0.0, 0.3, 0.9] {
                    let a = oplus(oplus(x, y), z);
                    let b = oplus(x, oplus(y, z));
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn fold_short_circuits() {
        assert_eq!(oplus_sum([0.5, 0.5, 0.5]), 1.0);
        assert!((oplus_sum([0.1, 0.2]) - 0.3).abs() < 1e-12);
        assert_eq!(oplus_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn example6_checks() {
        // Example 6: 2/9 ⊕ 1/9 = 1/3 and 2/9 ⊕ 1/36 = 1/4.
        assert!((oplus(2.0 / 9.0, 1.0 / 9.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((oplus(2.0 / 9.0, 1.0 / 36.0) - 0.25).abs() < 1e-12);
    }
}
