//! Edit-distance substrates for RDF alignment (§4 of Buneman & Staworko,
//! PVLDB 2016).
//!
//! * [`levenshtein`](mod@levenshtein) — string edit distance, full / banded / normalised;
//! * [`hungarian`](mod@hungarian) — minimum-cost assignment (Kuhn–Munkres, O(n³));
//! * [`algebra`] — the saturating `⊕` operator on `[0, 1]` distances;
//! * [`sigma_edit`] — the quadratic `σ_Edit` node metric the overlap
//!   alignment approximates;
//! * [`flooding`] — the similarity-flooding baseline from related work.

#![warn(missing_docs)]

pub mod algebra;
pub mod flooding;
pub mod hungarian;
pub mod levenshtein;
pub mod sigma_edit;

pub use algebra::{oplus, oplus_sum};
pub use flooding::{Flooding, FloodingConfig};
pub use hungarian::{hungarian, hungarian_rect, Assignment};
pub use levenshtein::{levenshtein, levenshtein_bounded, normalized_levenshtein};
pub use sigma_edit::{SigmaEdit, SigmaEditConfig};
