//! The Hungarian algorithm (Kuhn–Munkres) for minimum-cost assignment.
//!
//! §4.2 uses an optimal matching among the outgoing edges of two nodes to
//! propagate `σ_Edit`; the paper cites Kuhn's method \[9\]. We implement the
//! O(n³) shortest-augmenting-path formulation with dual potentials
//! (Jonker–Volgenant style) on rectangular matrices: rows are assigned to
//! a subset of columns minimising total cost.

/// Result of a rectangular assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `row_to_col[r]` is the column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// Total cost of the assignment.
    pub cost: f64,
}

/// Minimum-cost assignment of `rows × cols` with `rows ≤ cols`.
///
/// `cost[r][c]` must be finite. Returns the optimal assignment of every
/// row to a distinct column. Panics if `rows > cols` (transpose first) or
/// on ragged input.
pub fn hungarian(cost: &[Vec<f64>]) -> Assignment {
    let n = cost.len();
    if n == 0 {
        return Assignment {
            row_to_col: Vec::new(),
            cost: 0.0,
        };
    }
    let m = cost[0].len();
    assert!(
        n <= m,
        "hungarian: rows ({n}) must not exceed columns ({m}); transpose"
    );
    assert!(
        cost.iter().all(|r| r.len() == m),
        "hungarian: ragged cost matrix"
    );

    const INF: f64 = f64::INFINITY;
    // 1-based arrays per the classic formulation; index 0 is a sentinel.
    let mut u = vec![0.0f64; n + 1]; // row potentials
    let mut v = vec![0.0f64; m + 1]; // column potentials
    let mut way = vec![0usize; m + 1]; // predecessor column on aug. path
    let mut col_to_row = vec![0usize; m + 1]; // 0 = unassigned

    for i in 1..=n {
        // Find an augmenting path from row i.
        col_to_row[0] = i;
        let mut j0 = 0usize; // current column (sentinel start)
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = col_to_row[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[col_to_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if col_to_row[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        while j0 != 0 {
            let j1 = way[j0];
            col_to_row[j0] = col_to_row[j1];
            j0 = j1;
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=m {
        if col_to_row[j] != 0 {
            row_to_col[col_to_row[j] - 1] = j - 1;
        }
    }
    let total = row_to_col
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum();
    Assignment {
        row_to_col,
        cost: total,
    }
}

/// Minimum-cost assignment for any shape: transposes internally when
/// `rows > cols` and reports the matching as `(row, col)` pairs.
pub fn hungarian_rect(cost: &[Vec<f64>]) -> (Vec<(usize, usize)>, f64) {
    let n = cost.len();
    if n == 0 || cost[0].is_empty() {
        return (Vec::new(), 0.0);
    }
    let m = cost[0].len();
    if n <= m {
        let a = hungarian(cost);
        (
            a.row_to_col.iter().enumerate().map(|(r, &c)| (r, c)).collect(),
            a.cost,
        )
    } else {
        let t: Vec<Vec<f64>> = (0..m)
            .map(|c| (0..n).map(|r| cost[r][c]).collect())
            .collect();
        let a = hungarian(&t);
        (
            a.row_to_col.iter().enumerate().map(|(c, &r)| (r, c)).collect(),
            a.cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        // Try all injections rows -> cols.
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, 0, &mut |perm| {
            let c: f64 = (0..n).map(|r| cost[r][perm[r]]).sum();
            if c < best {
                best = c;
            }
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn square_known() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian(&cost);
        assert!((a.cost - 5.0).abs() < 1e-9);
        // Assignment must be a permutation.
        let mut seen = [false; 3];
        for &c in &a.row_to_col {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn rectangular_rows_less_than_cols() {
        let cost = vec![vec![10.0, 1.0, 2.0], vec![1.0, 10.0, 3.0]];
        let a = hungarian(&cost);
        assert!((a.cost - 2.0).abs() < 1e-9);
        assert_eq!(a.row_to_col, vec![1, 0]);
    }

    #[test]
    fn rect_transposed() {
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0], vec![2.0, 3.0]];
        let (pairs, c) = hungarian_rect(&cost);
        assert_eq!(pairs.len(), 2);
        assert!((c - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_and_empty() {
        let (pairs, c) = hungarian_rect(&[]);
        assert!(pairs.is_empty());
        assert_eq!(c, 0.0);
        let a = hungarian(&[vec![0.0, 0.0], vec![0.0, 0.0]]);
        assert_eq!(a.cost, 0.0);
    }

    #[test]
    fn matches_brute_force_exhaustively() {
        // Deterministic pseudo-random matrices vs brute force.
        let mut seed = 0x12345u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0
        };
        for n in 1..=4usize {
            for m in n..=5usize {
                for _ in 0..20 {
                    let cost: Vec<Vec<f64>> =
                        (0..n).map(|_| (0..m).map(|_| rng()).collect()).collect();
                    let a = hungarian(&cost);
                    let bf = brute_force(&cost);
                    assert!(
                        (a.cost - bf).abs() < 1e-9,
                        "n={n} m={m}: got {} want {bf} for {cost:?}",
                        a.cost
                    );
                }
            }
        }
    }

    #[test]
    fn negative_costs_supported() {
        let cost = vec![vec![-1.0, 2.0], vec![3.0, -4.0]];
        let a = hungarian(&cost);
        assert!((a.cost - (-5.0)).abs() < 1e-9);
    }
}
