//! The edit-distance node metric `σ_Edit` (§4.2) — the expensive
//! reference method that the overlap alignment approximates.
//!
//! `σ_Edit` refines a base (hybrid) alignment:
//! * pairs aligned by the base partition have distance 0;
//! * pairs of *unaligned literals* get the normalised string edit
//!   distance of their labels;
//! * pairs of *unaligned non-literals* get a graph-edit-style distance:
//!   the optimal (Hungarian) matching among their outgoing edges, where a
//!   matched pair of edges costs `σ(p1,p2) ⊕ σ(o1,o2)`, the whole matching
//!   is averaged over `f = max(|out(n)|, |out(m)|)` and `R` unmatched
//!   edges contribute `R / f` — iterated to a fixpoint so distances
//!   propagate through the graph;
//! * every other pair (one node aligned, or mixed literal/non-literal)
//!   has distance 1.
//!
//! The matrix is quadratic in the number of unaligned nodes and each
//! iteration runs the Hungarian algorithm per pair: use on small inputs
//! only, exactly as the paper does.

use crate::algebra::oplus;
use crate::hungarian::hungarian_rect;
use crate::levenshtein::normalized_levenshtein;
use rdf_model::{CombinedGraph, FxHashMap, NodeId, Vocab};

/// Convergence parameters for the `σ_Edit` fixpoint.
#[derive(Debug, Clone, Copy)]
pub struct SigmaEditConfig {
    /// Stop when no entry moves by more than this between iterations.
    pub epsilon: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for SigmaEditConfig {
    fn default() -> Self {
        SigmaEditConfig {
            epsilon: 1e-9,
            max_iterations: 64,
        }
    }
}

/// The computed `σ_Edit` distance table.
#[derive(Debug, Clone)]
pub struct SigmaEdit {
    /// Unaligned source nodes (combined-graph ids), row index order.
    pub unaligned_source: Vec<NodeId>,
    /// Unaligned target nodes (combined-graph ids), column index order.
    pub unaligned_target: Vec<NodeId>,
    row_of: FxHashMap<NodeId, usize>,
    col_of: FxHashMap<NodeId, usize>,
    /// Base-partition colors per combined-graph node.
    base_colors: Vec<u32>,
    /// Row-major matrix of distances between unaligned pairs.
    matrix: Vec<f64>,
    /// Iterations executed until convergence.
    pub iterations: usize,
}

impl SigmaEdit {
    /// Compute `σ_Edit` over a combined graph, refining the base
    /// partition given as one color per combined-graph node (typically
    /// the hybrid partition).
    pub fn compute(
        combined: &CombinedGraph,
        vocab: &Vocab,
        base_colors: &[u32],
        config: SigmaEditConfig,
    ) -> Self {
        let g = combined.graph();
        assert_eq!(base_colors.len(), g.node_count());

        // Side occupancy per color to find unaligned nodes.
        let num_colors = base_colors.iter().copied().max().map_or(0, |c| c + 1);
        let mut src = vec![0u32; num_colors as usize];
        let mut tgt = vec![0u32; num_colors as usize];
        for n in g.nodes() {
            match combined.side(n) {
                rdf_model::Side::Source => src[base_colors[n.index()] as usize] += 1,
                rdf_model::Side::Target => tgt[base_colors[n.index()] as usize] += 1,
            }
        }
        let unaligned_source: Vec<NodeId> = combined
            .source_nodes()
            .filter(|n| tgt[base_colors[n.index()] as usize] == 0)
            .collect();
        let unaligned_target: Vec<NodeId> = combined
            .target_nodes()
            .filter(|n| src[base_colors[n.index()] as usize] == 0)
            .collect();

        let row_of: FxHashMap<NodeId, usize> = unaligned_source
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let col_of: FxHashMap<NodeId, usize> = unaligned_target
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();

        let rows = unaligned_source.len();
        let cols = unaligned_target.len();
        let mut matrix = vec![0.0f64; rows * cols];

        // Literal × literal: string edit distance; mixed kinds: 1.
        // Non-literal pairs start optimistic at 0 and only grow, which
        // guarantees monotone convergence.
        for (i, &n) in unaligned_source.iter().enumerate() {
            for (j, &m) in unaligned_target.iter().enumerate() {
                let v = match (g.is_literal(n), g.is_literal(m)) {
                    (true, true) => normalized_levenshtein(
                        vocab.text(g.label(n)),
                        vocab.text(g.label(m)),
                    ),
                    (true, false) | (false, true) => 1.0,
                    (false, false) => 0.0,
                };
                matrix[i * cols + j] = v;
            }
        }

        let mut this = SigmaEdit {
            unaligned_source,
            unaligned_target,
            row_of,
            col_of,
            base_colors: base_colors.to_vec(),
            matrix,
            iterations: 0,
        };

        // Fixpoint iteration on the non-literal × non-literal block.
        let nl_rows: Vec<usize> = (0..rows)
            .filter(|&i| !g.is_literal(this.unaligned_source[i]))
            .collect();
        let nl_cols: Vec<usize> = (0..cols)
            .filter(|&j| !g.is_literal(this.unaligned_target[j]))
            .collect();
        for iter in 0..config.max_iterations {
            let mut delta: f64 = 0.0;
            let mut next = this.matrix.clone();
            for &i in &nl_rows {
                let n = this.unaligned_source[i];
                for &j in &nl_cols {
                    let m = this.unaligned_target[j];
                    let v = this.structural_distance(combined, n, m);
                    let idx = i * cols + j;
                    delta = delta.max((v - this.matrix[idx]).abs());
                    next[idx] = v;
                }
            }
            this.matrix = next;
            this.iterations = iter + 1;
            if delta < config.epsilon {
                break;
            }
        }
        this
    }

    /// Distance between two unaligned non-literal nodes: optimal matching
    /// of out-edges (Hungarian), `min(1, (match_cost + R) / f)`.
    fn structural_distance(
        &self,
        combined: &CombinedGraph,
        n: NodeId,
        m: NodeId,
    ) -> f64 {
        let g = combined.graph();
        let out_n = g.out(n);
        let out_m = g.out(m);
        let (k1, k2) = (out_n.len(), out_m.len());
        let f = k1.max(k2);
        if f == 0 {
            return 0.0; // both contentless: structurally identical
        }
        if k1 == 0 || k2 == 0 {
            return 1.0; // all edges unmatched: R / f = 1
        }
        let cost: Vec<Vec<f64>> = out_n
            .iter()
            .map(|&(p1, o1)| {
                out_m
                    .iter()
                    .map(|&(p2, o2)| {
                        oplus(self.distance(p1, p2), self.distance(o1, o2))
                    })
                    .collect()
            })
            .collect();
        let (_, match_cost) = hungarian_rect(&cost);
        let r = (k1.max(k2) - k1.min(k2)) as f64;
        ((match_cost + r) / f as f64).min(1.0)
    }

    /// `σ_Edit(n, m)` for combined-graph node ids (`n` source side, `m`
    /// target side).
    pub fn distance(&self, n: NodeId, m: NodeId) -> f64 {
        if self.base_colors[n.index()] == self.base_colors[m.index()] {
            return 0.0;
        }
        match (self.row_of.get(&n), self.col_of.get(&m)) {
            (Some(&i), Some(&j)) => {
                self.matrix[i * self.unaligned_target.len() + j]
            }
            _ => 1.0,
        }
    }

    /// `Align_θ(σ_Edit)`: unaligned pairs within the threshold, plus all
    /// base-aligned pairs implicitly (distance 0). Returns only the
    /// newly-identified unaligned pairs with their distances.
    pub fn align_threshold(&self, theta: f64) -> Vec<(NodeId, NodeId, f64)> {
        let cols = self.unaligned_target.len();
        let mut out = Vec::new();
        for (i, &n) in self.unaligned_source.iter().enumerate() {
            for (j, &m) in self.unaligned_target.iter().enumerate() {
                let d = self.matrix[i * cols + j];
                if d <= theta {
                    out.push((n, m, d));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{RdfGraphBuilder, Vocab};

    /// The graphs of Figure 7, reconstructed from Example 5's stated
    /// distances:
    /// G1: w -r-> u, w -q-> v, u -p-> "a"|"b"|"c", v -p-> "c",
    ///     v -q-> "abc"
    /// G2: w' -r-> u', w' -q-> v', u' -p-> "a"|"c", v' -p-> "c",
    ///     v' -q-> "ac"
    fn figure7() -> (Vocab, CombinedGraph) {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("w", "r", "u");
            b.uuu("w", "q", "v");
            b.uul("u", "p", "a");
            b.uul("u", "p", "b");
            b.uul("u", "p", "c");
            b.uul("v", "p", "c");
            b.uul("v", "q", "abc");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("w2", "r", "u2");
            b.uuu("w2", "q", "v2");
            b.uul("u2", "p", "a");
            b.uul("u2", "p", "c");
            b.uul("v2", "p", "c");
            b.uul("v2", "q", "ac");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        (v, c)
    }

    fn hybrid_colors(c: &CombinedGraph) -> Vec<u32> {
        // Reuse the label-equality trivial partition as the base here:
        // the unaligned sets coincide with Hybrid for this example
        // because the renamed URIs w/u/v have no shared structure that
        // hybrid could exploit beyond what the test verifies.
        let g = c.graph();
        let mut colors = Vec::with_capacity(g.node_count());
        for n in g.nodes() {
            colors.push(g.label(n).0);
        }
        colors
    }

    fn node_by_label(
        v: &Vocab,
        c: &CombinedGraph,
        text: &str,
    ) -> NodeId {
        c.graph()
            .nodes()
            .find(|&n| v.text(c.graph().label(n)) == text)
            .unwrap_or_else(|| panic!("no node {text}"))
    }

    #[test]
    fn example5_distances() {
        let (v, c) = figure7();
        let colors = hybrid_colors(&c);
        let s = SigmaEdit::compute(&c, &v, &colors, SigmaEditConfig::default());

        let abc = node_by_label(&v, &c, "abc");
        let ac = node_by_label(&v, &c, "ac");
        let u = node_by_label(&v, &c, "u");
        let u2 = node_by_label(&v, &c, "u2");
        let vv = node_by_label(&v, &c, "v");
        let v2 = node_by_label(&v, &c, "v2");
        let w = node_by_label(&v, &c, "w");
        let w2 = node_by_label(&v, &c, "w2");

        // String edit distance between "abc" and "ac" is 1/3.
        assert!((s.distance(abc, ac) - 1.0 / 3.0).abs() < 1e-9);
        // σEdit(u, u') = 1/3 (one unmatched edge out of 3).
        assert!((s.distance(u, u2) - 1.0 / 3.0).abs() < 1e-9, "{}", s.distance(u, u2));
        // σEdit(v, v') = 1/6 (average of 0 and 1/3 over 2 edges).
        assert!((s.distance(vv, v2) - 1.0 / 6.0).abs() < 1e-9, "{}", s.distance(vv, v2));
        // σEdit(w, w') = 1/4 (average of 1/3 and 1/6 over 2 edges).
        assert!((s.distance(w, w2) - 0.25).abs() < 1e-9, "{}", s.distance(w, w2));
    }

    #[test]
    fn aligned_pairs_are_zero_and_mixed_pairs_one() {
        let (v, c) = figure7();
        let colors = hybrid_colors(&c);
        let s = SigmaEdit::compute(&c, &v, &colors, SigmaEditConfig::default());
        // "c" is trivially aligned to itself: distance 0 across sides.
        let c_lit = node_by_label(&v, &c, "c");
        assert_eq!(s.distance(c_lit, c_lit), 0.0);
        // "a" aligned vs "ac" unaligned: distance 1 (Example 5 notes the
        // normalised edit distance 1/2 is NOT used for aligned nodes).
        let a = node_by_label(&v, &c, "a");
        let ac = node_by_label(&v, &c, "ac");
        assert_eq!(s.distance(a, ac), 1.0);
    }

    #[test]
    fn threshold_alignment_extracts_close_pairs() {
        let (v, c) = figure7();
        let colors = hybrid_colors(&c);
        let s = SigmaEdit::compute(&c, &v, &colors, SigmaEditConfig::default());
        let pairs = s.align_threshold(0.35);
        // u~u2 (1/3), v~v2 (1/6), w~w2 (1/4), abc~ac (1/3) all within.
        assert_eq!(pairs.len(), 4);
        let pairs_high = s.align_threshold(0.2);
        // Only v~v2 (1/6) within 0.2.
        assert_eq!(pairs_high.len(), 1);
    }

    #[test]
    fn contentless_unaligned_nodes_at_distance_zero() {
        let mut v = Vocab::new();
        let g1 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("x", "p", "dead-end1");
            b.finish()
        };
        let g2 = {
            let mut b = RdfGraphBuilder::new(&mut v);
            b.uuu("x", "p", "dead-end2");
            b.finish()
        };
        let c = CombinedGraph::union(&v, &g1, &g2);
        let colors: Vec<u32> =
            c.graph().nodes().map(|n| c.graph().label(n).0).collect();
        let s = SigmaEdit::compute(&c, &v, &colors, SigmaEditConfig::default());
        let d1 = node_by_label(&v, &c, "dead-end1");
        let d2 = node_by_label(&v, &c, "dead-end2");
        assert_eq!(s.distance(d1, d2), 0.0);
    }

    #[test]
    fn monotone_iterations_converge() {
        let (v, c) = figure7();
        let colors = hybrid_colors(&c);
        let s = SigmaEdit::compute(&c, &v, &colors, SigmaEditConfig::default());
        assert!(s.iterations < 64, "converged before cap: {}", s.iterations);
    }
}
