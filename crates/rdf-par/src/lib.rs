//! Zero-dependency scoped-thread work splitting.
//!
//! The container building this workspace is offline, so there is no
//! rayon; the vendored shims stay `rand`/`proptest`/`criterion` only.
//! This crate provides the minimal substrate the parallel refinement
//! engine (and future sharded-store work) needs on plain
//! [`std::thread::scope`]:
//!
//! * [`Threads`] — a thread-count configuration: explicit `N`, or an
//!   automatic default from [`std::thread::available_parallelism`] with
//!   an `RDF_THREADS` environment override;
//! * [`chunk_ranges`] — split an index space into near-even contiguous
//!   ranges;
//! * [`scoped_map`] — run one closure per task on scoped threads and
//!   collect the results in task order;
//! * [`WorkerPool`] — a small persistent gang for long-running
//!   processes (the `rdf serve` daemon) that must not pay a spawn per
//!   request.
//!
//! Threads are spawned per call (a few tens of microseconds each); the
//! intended callers amortise that over work measured in milliseconds
//! per round and keep all *allocations* (scratch buffers, interning
//! maps) in long-lived engine state instead. [`WorkerPool`] is the
//! exception, for callers whose unit of work is a whole request.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier, BarrierWaitResult, Mutex};
use std::time::Instant;

use rdf_obs::Recorder;

/// Environment variable consulted by [`Threads::Auto`]: set
/// `RDF_THREADS=N` to cap the automatic thread count without touching
/// any call site.
pub const THREADS_ENV: &str = "RDF_THREADS";

/// Thread-count configuration for parallel helpers.
///
/// `Auto` (the default) resolves to the `RDF_THREADS` environment
/// variable when it holds a positive integer, and otherwise to
/// [`std::thread::available_parallelism`]. `Fixed(n)` always resolves
/// to `max(n, 1)` — an explicit request (e.g. a `--threads` flag) wins
/// over the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// `RDF_THREADS` if set and valid, else `available_parallelism()`.
    #[default]
    Auto,
    /// Exactly this many threads (clamped to at least 1).
    Fixed(usize),
}

impl Threads {
    /// Resolve to a concrete thread count (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(available),
        }
    }

    /// Parse a command-line value: `"auto"` or a positive integer.
    pub fn parse(s: &str) -> Result<Threads, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("auto") {
            return Ok(Threads::Auto);
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Threads::Fixed(n)),
            _ => Err(format!(
                "invalid thread count {s:?} (expected \"auto\" or a \
                 positive integer)"
            )),
        }
    }
}

/// `available_parallelism()` with a safe fallback of 1.
fn available() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `0..len` into at most `parts` contiguous, non-empty,
/// near-even ranges covering the whole index space in order.
///
/// Returns fewer than `parts` ranges when `len < parts`, and an empty
/// vector when `len == 0`.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len);
    if parts == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// A [`std::sync::Barrier`] whose waits can be attributed, per worker,
/// to an observability counter.
///
/// SPMD gangs (the parallel refinement engine) synchronise with a few
/// barrier waits per round; how long each worker idles at them is the
/// load-imbalance signal the bench binaries could never see. When the
/// recorder is enabled, [`TimedBarrier::wait_timed`] accumulates each
/// worker's wait microseconds into the counter
/// `par.barrier_wait_us.w<worker>`; when disabled it is exactly a plain
/// barrier wait (one branch, no clock reads, no formatting).
///
/// Counters aggregate in the final run report only — no per-wait event
/// is emitted, so trace event counts stay deterministic across thread
/// counts.
#[derive(Debug)]
pub struct TimedBarrier {
    inner: Barrier,
}

impl TimedBarrier {
    /// A barrier for `n` workers.
    pub fn new(n: usize) -> TimedBarrier {
        TimedBarrier {
            inner: Barrier::new(n),
        }
    }

    /// Plain untimed wait.
    pub fn wait(&self) -> BarrierWaitResult {
        self.inner.wait()
    }

    /// Wait, attributing the time spent blocked to
    /// `par.barrier_wait_us.w<worker>` on `rec` (no-op attribution when
    /// the recorder is disabled).
    pub fn wait_timed(
        &self,
        rec: &Recorder,
        worker: usize,
    ) -> BarrierWaitResult {
        if !rec.enabled() {
            return self.inner.wait();
        }
        let start = Instant::now();
        let result = self.inner.wait();
        let us = start.elapsed().as_micros() as u64;
        rec.counter(&format!("par.barrier_wait_us.w{worker}")).add(us);
        result
    }
}

/// Run `f(index, task)` for every task, on scoped threads, and return
/// the results in task order.
///
/// Task 0 runs on the calling thread; each remaining task gets its own
/// scoped thread, so a call with `n` tasks uses `n` threads total.
/// With zero or one task nothing is spawned. A panic in any task
/// propagates to the caller when the scope joins.
///
/// Tasks own their state (`T: Send`), which is how callers hand each
/// worker a disjoint `&mut` slice of shared output plus its private
/// scratch without any synchronisation.
pub fn scoped_map<T, R, F>(tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    match tasks.len() {
        0 => return Vec::new(),
        1 => {
            let task = tasks.into_iter().next().expect("one task");
            return vec![f(0, task)];
        }
        _ => {}
    }
    let mut results: Vec<Option<R>> =
        (0..tasks.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let mut slots = tasks.into_iter().zip(results.iter_mut()).enumerate();
        let (i0, (t0, slot0)) = slots.next().expect("at least two tasks");
        for (i, (task, slot)) in slots {
            scope.spawn(move || *slot = Some(f(i, task)));
        }
        *slot0 = Some(f(i0, t0));
    });
    results
        .into_iter()
        .map(|r| r.expect("every task ran to completion"))
        .collect()
}

/// Fallible [`scoped_map`]: run `f(index, task)` for every task on
/// scoped threads, then return all results in task order — or the error
/// of the **lowest-indexed** failing task.
///
/// Every task runs to completion even when an earlier one fails (the
/// scope joins all threads regardless), so which error surfaces is
/// deterministic: it depends only on task order, never on thread
/// scheduling. The sharded-store loader and the streaming refinement
/// engine's signature phase both lean on this to report the same
/// corrupt shard at every thread count.
pub fn scoped_try_map<T, R, E, F>(tasks: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(tasks.len());
    for r in scoped_map(tasks, f) {
        out.push(r?);
    }
    Ok(out)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker gang: `n` named OS threads pulling jobs off one
/// shared queue, living for the lifetime of the pool.
///
/// [`scoped_map`] spawns per call, which is right for the CLI (one
/// burst of work per process). A long-running server wants the
/// opposite: spawn once at startup, then run every request on the same
/// gang so steady-state request handling never touches
/// `thread::spawn`. Jobs are executed in submission order by whichever
/// worker frees up first.
///
/// A panicking job is caught on the worker ([`WorkerPool::submit`]) or
/// reported back to the caller ([`WorkerPool::run`]) — it never kills
/// the worker thread, so one poisoned request cannot degrade the gang.
///
/// Dropping the pool (or calling [`WorkerPool::shutdown`]) closes the
/// queue, lets queued jobs drain, and joins every worker.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    completed: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawn a pool of `threads.resolve()` workers (named
    /// `rdf-worker-<k>` for debuggers and `/proc`).
    pub fn new(threads: Threads) -> WorkerPool {
        let n = threads.resolve();
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let completed = Arc::new(AtomicU64::new(0));
        let workers = (0..n)
            .map(|k| {
                let rx = Arc::clone(&rx);
                let completed = Arc::clone(&completed);
                std::thread::Builder::new()
                    .name(format!("rdf-worker-{k}"))
                    .spawn(move || loop {
                        // Hold the lock only while *receiving*: a slow
                        // job must not serialise the whole gang.
                        let job = {
                            let guard = rx
                                .lock()
                                .unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                // A panic inside one request must not
                                // take the worker down with it.
                                let _ = catch_unwind(
                                    AssertUnwindSafe(job),
                                );
                                completed
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            // Channel closed: pool is shutting down.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            completed,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Total jobs executed so far (including panicked ones) — a cheap
    /// liveness/stats signal for `stats` endpoints.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Enqueue a fire-and-forget job. Panics in the job are swallowed
    /// (the worker survives); use [`WorkerPool::run`] when the caller
    /// needs the result or the panic.
    ///
    /// # Panics
    /// Panics if called after [`WorkerPool::shutdown`].
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is shut down")
            .send(Box::new(job))
            .expect("pool workers alive while sender is held");
    }

    /// Run `f` on the gang and block until it finishes, returning its
    /// result — or `Err` with the panic payload if it panicked.
    pub fn run<R: Send + 'static>(
        &self,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> std::thread::Result<R> {
        let (tx, rx) = mpsc::channel();
        self.submit(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(f)));
        });
        rx.recv().expect("pool worker dropped the result channel")
    }

    /// Close the queue, drain queued jobs, and join every worker.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test that reads *or* writes `RDF_THREADS` holds this lock:
    /// libtest runs tests on multiple threads, and a concurrent
    /// `set_var` while another thread walks the environment via
    /// `env::var` is undefined behavior on glibc.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 65, 1000] {
            for parts in [1usize, 2, 3, 4, 8, 17] {
                let ranges = chunk_ranges(len, parts);
                assert!(ranges.len() <= parts);
                assert_eq!(
                    ranges.iter().map(|r| r.len()).sum::<usize>(),
                    len
                );
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous at {len}/{parts}");
                    assert!(!r.is_empty(), "no empty chunk at {len}/{parts}");
                    next = r.end;
                }
                // Near-even: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn scoped_map_returns_in_task_order() {
        let tasks: Vec<usize> = (0..13).collect();
        let out = scoped_map(tasks, |i, t| {
            assert_eq!(i, t);
            t * t
        });
        assert_eq!(out, (0..13).map(|t| t * t).collect::<Vec<_>>());
        // Degenerate sizes.
        assert!(scoped_map(Vec::<usize>::new(), |_, t| t).is_empty());
        assert_eq!(scoped_map(vec![41usize], |_, t| t + 1), vec![42]);
    }

    #[test]
    fn scoped_map_disjoint_mut_slices() {
        let mut data = vec![0u32; 100];
        let ranges = chunk_ranges(data.len(), 4);
        let mut tasks = Vec::new();
        let mut rest: &mut [u32] = &mut data;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            rest = tail;
            tasks.push((r.clone(), head));
        }
        scoped_map(tasks, |_, (range, out)| {
            for (slot, i) in out.iter_mut().zip(range) {
                *slot = i as u32 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn scoped_try_map_collects_or_reports_first_error() {
        let ok: Result<Vec<u32>, String> =
            scoped_try_map((0u32..9).collect(), |_, t| Ok(t * 2));
        assert_eq!(ok.unwrap(), (0..9).map(|t| t * 2).collect::<Vec<_>>());
        // Two failing tasks: the lowest-indexed error wins regardless of
        // which thread finished first.
        let err: Result<Vec<u32>, String> =
            scoped_try_map((0u32..9).collect(), |i, t| {
                if i == 3 || i == 7 {
                    Err(format!("task {t} failed"))
                } else {
                    Ok(t)
                }
            });
        assert_eq!(err.unwrap_err(), "task 3 failed");
        let empty: Result<Vec<u32>, String> =
            scoped_try_map(Vec::<u32>::new(), |_, t| Ok(t));
        assert!(empty.unwrap().is_empty());
    }

    #[test]
    fn timed_barrier_synchronises_and_attributes_waits() {
        use rdf_obs::JsonlRecorder;
        let workers = 4usize;
        let barrier = TimedBarrier::new(workers);
        let rec = Recorder::Jsonl(JsonlRecorder::to_writer(Box::new(
            std::io::sink(),
        )));
        let null = Recorder::disabled();
        let hits = Mutex::new(0usize);
        std::thread::scope(|scope| {
            for w in 1..workers {
                let barrier = &barrier;
                let rec = &rec;
                let null = &null;
                let hits = &hits;
                scope.spawn(move || {
                    barrier.wait_timed(rec, w);
                    *hits.lock().unwrap() += 1;
                    barrier.wait_timed(null, w);
                });
            }
            barrier.wait_timed(&rec, 0);
            *hits.lock().unwrap() += 1;
            barrier.wait_timed(&null, 0);
        });
        assert_eq!(*hits.lock().unwrap(), workers);
        let report = rec.finish().unwrap().expect("jsonl report");
        // Every worker's timed wait left a counter entry (possibly 0µs,
        // but the entry itself must exist).
        for w in 0..workers {
            assert!(
                report
                    .counter(&format!("par.barrier_wait_us.w{w}"))
                    .is_some(),
                "missing barrier counter for worker {w}"
            );
        }
    }

    #[test]
    fn worker_pool_runs_jobs_and_returns_results() {
        let pool = WorkerPool::new(Threads::Fixed(4));
        assert_eq!(pool.size(), 4);
        let results: Vec<u64> =
            (0..32u64).map(|i| pool.run(move || i * i).unwrap()).collect();
        assert_eq!(results, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.completed(), 32);
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(Threads::Fixed(2));
        // One panic per worker: both must survive it.
        for _ in 0..2 {
            let err = pool.run(|| panic!("request poisoned")).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("poisoned"), "got {msg:?}");
        }
        // The gang still serves work afterwards.
        assert_eq!(pool.run(|| 7u32).unwrap(), 7);
    }

    #[test]
    fn worker_pool_shutdown_drains_queued_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = WorkerPool::new(Threads::Fixed(2));
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn threads_parse_and_resolve() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(Threads::parse("auto").unwrap(), Threads::Auto);
        assert_eq!(Threads::parse("AUTO").unwrap(), Threads::Auto);
        assert_eq!(Threads::parse("3").unwrap(), Threads::Fixed(3));
        assert!(Threads::parse("0").is_err());
        assert!(Threads::parse("-2").is_err());
        assert!(Threads::parse("lots").is_err());
        assert_eq!(Threads::Fixed(4).resolve(), 4);
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert!(Threads::Auto.resolve() >= 1);
    }

    /// The one test that *writes* the process environment; the lock
    /// keeps any env reader (`Threads::Auto.resolve()` in other tests)
    /// off other threads while the variable is mutated.
    #[test]
    fn auto_honours_env_override() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Threads::Auto.resolve(), 3);
        // An explicit count still wins over the environment.
        assert_eq!(Threads::Fixed(2).resolve(), 2);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Threads::Auto.resolve() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Threads::Auto.resolve() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(Threads::Auto.resolve() >= 1);
    }
}
